//! Arena-backed EIG engine: shared, iterative evaluation of BYZ(m, u)
//! receive trees.
//!
//! The reference evaluator ([`crate::reference_eval`], i.e.
//! [`crate::eig::run_eig_full`]) folds one [`crate::EigView`] per
//! receiver: every view re-derives the overlapping subtree votes of the
//! shared EIG unfolding, paying `O(n)` `BTreeMap` lookups and a `Path`
//! allocation per visited label. This module replaces that per-receiver
//! recursion with a single flat arena shared by *all* receivers:
//!
//! * [`PathArena`] interns every relay label σ (a repetition-free path
//!   rooted at the sender) exactly once into a breadth-first `Vec`,
//!   indexed by compact `u32` [`PathId`]s. Children of a node are
//!   contiguous, so interning a path is a walk of popcount ranks and
//!   resolving an id back to its [`Path`] is a parent-chain walk.
//! * [`EigStore`] is the dense slot table `store[σ][receiver]` filled
//!   breadth-first from relay envelopes (first write wins, duplicates
//!   fold idempotently — exactly the [`crate::EigView::record`]
//!   semantics).
//! * [`EigEngine::resolve`] runs one bottom-up pass computing a
//!   `Summary` per arena node covering **all receivers at once**.
//!   Subtrees that look identical to every receiver collapse to a
//!   single memoized `VOTE(n-ℓ-m, n-ℓ)` application instead of one per
//!   receiver; the fan-out within a level is parallelized with
//!   `std::thread::scope` behind a `workers` knob mirroring the harness
//!   `SweepRunner`.
//!
//! # Memoization soundness
//!
//! At a label σ of length ℓ the reference evaluator hands receiver `r`
//! the multiset `{store[σ][r]} ∪ {resolve(σ·j, r) : j ∉ σ, j ≠ r}`.
//! The multisets of two receivers differ in two ways only: the *own*
//! slot `store[σ][r]`, and the one child `σ·r` that `r` itself relayed
//! (excluded from its own gather). Therefore, if every off-path slot of
//! σ holds the same effective value `a` (absent slots read as `V_d`)
//! and every child subtree resolved to the same value `v` **for every
//! receiver**, then every receiver's multiset is `{a} ∪ {v × (n-ℓ-1)}`
//! — identical — and one `VOTE` stands in for all `n-ℓ` of them. The
//! collapse is re-checked per node from the actual stored values, which
//! is why memoization can never leak across fault-set or
//! adversary-table boundaries: a different fault set or lie table
//! changes the stored values, the uniformity test fails, and the engine
//! falls back to exact per-receiver votes (see DESIGN.md §5c).
//!
//! Decisions are **bit-identical** to the reference evaluator by
//! construction: the slow path gathers exactly the reference multiset
//! and calls the same [`VoteRule::combine`], and the fast path calls it
//! once on the shared multiset. `tests/engine_equivalence.rs` checks
//! this differentially over the full E10 certification space.

use crate::eig::{Fabricate, VoteRule};
use crate::path::{path_count, Path};
use crate::value::AgreementValue;
use obs::{Obs, SpanRecord};
use simnet::{EigPerf, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;
use std::time::Instant;

/// Typed construction errors for the arena-backed engine.
///
/// The engine packs per-path membership and fault sets into `u64`
/// bitmasks (`ArenaNode::members`, the early-stop mask), which bounds
/// every arena to `n <= 64` nodes. The panicking constructors
/// ([`PathArena::new`], [`EigEngine::new`]) keep their historical
/// assert-style contract for internal callers that already validated
/// their shape; callers handling external configuration should use the
/// `try_*` variants and get one of these values instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `n` exceeds the 64-node ceiling of the `u64` fault/membership
    /// masks (or is zero).
    TooManyNodes {
        /// The rejected system size.
        n: usize,
    },
    /// `sender` is not a node of the `n`-node system.
    SenderOutOfRange {
        /// The rejected sender.
        sender: NodeId,
        /// System size the sender was checked against.
        n: usize,
    },
    /// `depth` was zero — at least the sender round is required.
    ZeroDepth,
    /// The interned label count would overflow the `u32` [`PathId`]
    /// space.
    ArenaOverflow {
        /// Labels the requested shape would intern.
        labels: u128,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::TooManyNodes { n } => {
                write!(f, "arena supports 1 <= n <= 64, got n = {n}")
            }
            EngineError::SenderOutOfRange { sender, n } => {
                write!(f, "sender {sender} out of range for {n} nodes")
            }
            EngineError::ZeroDepth => write!(f, "at least the sender round is required"),
            EngineError::ArenaOverflow { labels } => {
                write!(f, "arena would overflow u32 ids ({labels} labels)")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Compact index of an interned relay label in a [`PathArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(u32);

impl PathId {
    /// The root label (the bare sender path).
    pub const ROOT: PathId = PathId(0);

    /// Dense index into the arena's node vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned EIG node. Children are contiguous, ordered by ascending
/// relayer id — the same lexicographic breadth-first order as
/// [`crate::paths_of_length`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArenaNode {
    /// Last node on the path (the relayer that appended this label).
    pub(crate) last: NodeId,
    /// Parent arena index; `u32::MAX` for the root.
    pub(crate) parent: u32,
    /// First child arena index (children are contiguous; 0 when none).
    pub(crate) first_child: u32,
    /// Number of children (0 at the deepest level).
    pub(crate) child_count: u32,
    /// Bitmask of the nodes on the path (`n <= 64` is asserted).
    pub(crate) members: u64,
    /// Path length (1 for the root).
    pub(crate) len: u8,
}

/// The arena form of [`crate::eig::prunable_path`]: every bit of the
/// certified fault mask lies on the node's path, and the node's own
/// relayer is fault-free. Downward-closed over the arena's child edges.
pub(crate) fn prunable_node(node: &ArenaNode, faulty_mask: u64) -> bool {
    faulty_mask & !node.members == 0 && faulty_mask >> node.last.index() & 1 == 0
}

/// Flat breadth-first arena of every repetition-free relay label of
/// length `1..=depth` rooted at `sender`, interned once per instance
/// shape and shared by every receiver (and every run of that shape).
#[derive(Debug, Clone)]
pub struct PathArena {
    n: usize,
    sender: NodeId,
    depth: usize,
    mask: u64,
    nodes: Vec<ArenaNode>,
    /// `levels[l]` is the id range of nodes with path length `l + 1`.
    levels: Vec<Range<u32>>,
}

impl PathArena {
    /// Builds the arena for an `n`-node system, the given sender and
    /// tree depth (`depth = m + 1` rounds for BYZ). A `depth` beyond
    /// `n` is harmless: repetition-free paths cannot be longer than
    /// `n`, so deeper levels are simply empty (`path_count` is zero
    /// there too).
    ///
    /// # Panics
    ///
    /// If `n` is not in `1..=64`, `sender` is out of range, or `depth`
    /// is zero. Use [`PathArena::try_new`] to get a typed
    /// [`EngineError`] instead.
    pub fn new(n: usize, sender: NodeId, depth: usize) -> Self {
        Self::try_new(n, sender, depth).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`PathArena::new`]: rejects the shapes the
    /// panicking constructor asserts on. In particular the `u64`
    /// membership masks (`u64::MAX >> (64 - n)`, `1 << j`) silently
    /// assume `n <= 64`; wider configurations come back as
    /// [`EngineError::TooManyNodes`] instead of a shift panic.
    pub fn try_new(n: usize, sender: NodeId, depth: usize) -> Result<Self, EngineError> {
        if !(1..=64).contains(&n) {
            return Err(EngineError::TooManyNodes { n });
        }
        if sender.index() >= n {
            return Err(EngineError::SenderOutOfRange { sender, n });
        }
        if depth == 0 {
            return Err(EngineError::ZeroDepth);
        }
        let expected: u128 = (1..=depth).map(|l| path_count(n, l)).sum();
        if expected >= u32::MAX as u128 {
            return Err(EngineError::ArenaOverflow { labels: expected });
        }

        let mask = u64::MAX >> (64 - n);
        let mut nodes = vec![ArenaNode {
            last: sender,
            parent: u32::MAX,
            first_child: 0,
            child_count: 0,
            members: 1u64 << sender.index(),
            len: 1,
        }];
        let mut levels = Vec::new();
        levels.push(0u32..1u32);
        for len in 2..=depth.min(n) {
            let prev = levels[len - 2].clone();
            let start = nodes.len() as u32;
            for pid in prev {
                let parent = nodes[pid as usize];
                let first_child = nodes.len() as u32;
                for j in 0..n {
                    if parent.members >> j & 1 == 1 {
                        continue;
                    }
                    nodes.push(ArenaNode {
                        last: NodeId::new(j),
                        parent: pid,
                        first_child: 0,
                        child_count: 0,
                        members: parent.members | 1u64 << j,
                        len: len as u8,
                    });
                }
                nodes[pid as usize].first_child = first_child;
                nodes[pid as usize].child_count = nodes.len() as u32 - first_child;
            }
            levels.push(start..nodes.len() as u32);
        }
        debug_assert_eq!(nodes.len() as u128, expected);
        Ok(PathArena {
            n,
            sender,
            depth,
            mask,
            nodes,
            levels,
        })
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The sender every interned label is rooted at.
    pub fn sender(&self) -> NodeId {
        self.sender
    }

    /// Maximum interned path length.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total interned labels — matches Σ_{l=1}^{depth} `path_count(n, l)`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Interns `path`, returning its id, or `None` if the path is not a
    /// valid relay label of this arena (wrong sender, out-of-range or
    /// repeated node, or longer than `depth`).
    pub fn intern(&self, path: &Path) -> Option<PathId> {
        let slice = path.as_slice();
        let (&first, rest) = slice.split_first()?;
        if first != self.sender {
            return None;
        }
        let mut id = 0u32;
        for &nid in rest {
            let node = &self.nodes[id as usize];
            if node.child_count == 0 {
                return None;
            }
            let j = nid.index();
            if j >= self.n {
                return None;
            }
            let avail = !node.members & self.mask;
            if avail >> j & 1 == 0 {
                return None;
            }
            let rank = (avail & ((1u64 << j) - 1)).count_ones();
            id = node.first_child + rank;
        }
        Some(PathId(id))
    }

    /// Reconstructs the [`Path`] an id was interned from (the inverse
    /// of [`PathArena::intern`] — a parent-chain walk).
    pub fn resolve_path(&self, id: PathId) -> Path {
        let mut rev = Vec::new();
        let mut cur = id.0;
        while cur != u32::MAX {
            let node = &self.nodes[cur as usize];
            rev.push(node.last);
            cur = node.parent;
        }
        let mut it = rev.into_iter().rev();
        let first = it.next().expect("arena nodes are non-empty paths");
        debug_assert_eq!(first, self.sender);
        let mut path = Path::root(self.sender);
        for nid in it {
            path = path.child(nid);
        }
        path
    }

    /// Whether `node` lies on the path `id` was interned from.
    pub fn on_path(&self, id: PathId, node: NodeId) -> bool {
        node.index() < 64 && self.nodes[id.index()].members >> node.index() & 1 == 1
    }

    /// All interned ids, in breadth-first (level, then lexicographic)
    /// order.
    pub fn ids(&self) -> impl Iterator<Item = PathId> + '_ {
        (0..self.nodes.len() as u32).map(PathId)
    }

    /// The flat node table (crate-internal: the packed resolver walks
    /// it directly).
    pub(crate) fn nodes_raw(&self) -> &[ArenaNode] {
        &self.nodes
    }

    /// The per-level id ranges (crate-internal).
    pub(crate) fn levels_raw(&self) -> &[Range<u32>] {
        &self.levels
    }
}

/// Dense slot table `store[σ][receiver]` over a [`PathArena`].
///
/// `None` denotes an absent message and reads as `V_d` at resolution
/// time, mirroring [`crate::EigView::seen`]. The first write to a slot
/// wins; duplicates fold idempotently and are not counted as
/// materialized.
#[derive(Debug, Clone)]
pub struct EigStore<V> {
    n: usize,
    slots: Vec<Option<AgreementValue<V>>>,
    materialized: u64,
}

impl<V> EigStore<V> {
    /// An empty store shaped for `arena`.
    pub fn new(arena: &PathArena) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(arena.node_count() * arena.n(), || None);
        EigStore {
            n: arena.n(),
            slots,
            materialized: 0,
        }
    }

    /// Records the value `receiver` holds for the label `id`. Returns
    /// `true` iff this was the first write to the slot (the caller
    /// should relay exactly then, mirroring [`crate::EigView::record`]).
    ///
    /// # Panics
    ///
    /// If `receiver` lies on the label's path — a node never attributes
    /// a value to a path it relayed itself.
    pub fn record(
        &mut self,
        arena: &PathArena,
        id: PathId,
        receiver: NodeId,
        value: AgreementValue<V>,
    ) -> bool {
        assert!(
            !arena.on_path(id, receiver),
            "receiver must not lie on the recorded path"
        );
        let slot = &mut self.slots[id.index() * self.n + receiver.index()];
        if slot.is_none() {
            *slot = Some(value);
            self.materialized += 1;
            true
        } else {
            false
        }
    }

    /// The value `receiver` holds for `id`, if any was recorded.
    pub fn get(&self, id: PathId, receiver: NodeId) -> Option<&AgreementValue<V>> {
        self.slots[id.index() * self.n + receiver.index()].as_ref()
    }

    /// Iterator over the slots `receiver` holds — its *column* of the
    /// table, in arena (BFS) order. This is the bridge back to the
    /// per-receiver [`crate::EigView`] world: differential tests
    /// materialize a view from a column and re-resolve the exact same
    /// observations through the reference fold.
    pub fn column(
        &self,
        receiver: NodeId,
    ) -> impl Iterator<Item = (PathId, &AgreementValue<V>)> + '_ {
        let n = self.n;
        let r = receiver.index();
        self.slots
            .chunks(n)
            .enumerate()
            .filter_map(move |(i, row)| row[r].as_ref().map(|v| (PathId(i as u32), v)))
    }

    /// Slots materialized so far (first writes only).
    pub fn materialized(&self) -> u64 {
        self.materialized
    }

    /// Resets every slot to absent without releasing the allocation, so
    /// a pooled store can be refilled for the next instance of the same
    /// arena shape. After `clear` the store is indistinguishable from a
    /// fresh [`EigStore::new`] over the same arena — first-write-wins
    /// semantics restart from scratch — but the slot table is reused
    /// instead of rebuilt (the point of [`crate::service::ServiceState`]
    /// pooling).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.materialized = 0;
    }
}

/// Per-node resolution result covering all receivers at once.
///
/// `Uniform(v)` means *every* off-path receiver resolves this subtree
/// to `v` — the memoized case. `PerReceiver` keeps one resolution per
/// receiver (slots of on-path nodes hold `V_d` placeholders and are
/// never read).
#[derive(Debug, Clone)]
enum Summary<V> {
    Uniform(AgreementValue<V>),
    PerReceiver(Box<[AgreementValue<V>]>),
}

impl<V> Summary<V> {
    fn value_for(&self, receiver: usize) -> &AgreementValue<V> {
        match self {
            Summary::Uniform(v) => v,
            Summary::PerReceiver(vals) => &vals[receiver],
        }
    }
}

/// Decisions plus perf counters of one engine evaluation.
#[derive(Debug, Clone)]
pub struct EngineRun<V> {
    /// Per-receiver decisions (every node except the sender), exactly
    /// the map the reference evaluator produces.
    pub decisions: BTreeMap<NodeId, AgreementValue<V>>,
    /// Work counters and phase wall times (see [`EigPerf`]).
    pub perf: EigPerf,
}

/// The arena-backed EIG engine: an interned [`PathArena`] plus a
/// `workers` knob for the resolution fan-out.
///
/// Build once per instance shape and reuse across runs — the arena
/// depends only on `(n, sender, depth)`, never on values, fault sets or
/// adversary tables.
///
/// ```
/// use degradable::engine::EigEngine;
/// use degradable::{reference_eval, Val, VoteRule};
/// use simnet::NodeId;
/// use std::collections::BTreeSet;
///
/// let (n, sender, depth) = (4, NodeId::new(0), 2);
/// let faulty: BTreeSet<NodeId> = [NodeId::new(3)].into();
/// let rule = VoteRule::Degradable { m: 1 };
/// let mut lie = |_: &degradable::Path, r: NodeId, _: &Val| Val::Value(r.index() as u64);
/// let engine = EigEngine::new(n, sender, depth);
/// let run = engine.run(rule, &Val::Value(7), &faulty, &mut lie);
/// let mut lie = |_: &degradable::Path, r: NodeId, _: &Val| Val::Value(r.index() as u64);
/// let reference = reference_eval(n, sender, depth, rule, &Val::Value(7), &faulty, &mut lie);
/// assert_eq!(run.decisions, reference.decisions);
/// ```
#[derive(Debug, Clone)]
pub struct EigEngine {
    arena: PathArena,
    workers: usize,
    worker_spans: bool,
    /// Certified fault mask for early stopping; `None` disables it.
    early_stop: Option<u64>,
    /// Route resolution through the bitpacked VOTE evaluator when the
    /// value palette fits (falls back to the scalar path otherwise).
    packed_vote: bool,
}

impl EigEngine {
    /// Single-threaded engine for an `n`-node system with the given
    /// sender and tree depth.
    ///
    /// # Panics
    ///
    /// On the shapes [`PathArena::new`] rejects (`n` outside `1..=64`,
    /// sender out of range, zero depth). Use [`EigEngine::try_new`] for
    /// a typed [`EngineError`] instead.
    pub fn new(n: usize, sender: NodeId, depth: usize) -> Self {
        Self::try_new(n, sender, depth).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`EigEngine::new`]: invalid shapes — most
    /// notably `n > 64`, which the `u64` fault masks cannot represent —
    /// come back as an [`EngineError`] instead of a panic.
    pub fn try_new(n: usize, sender: NodeId, depth: usize) -> Result<Self, EngineError> {
        Ok(EigEngine {
            arena: PathArena::try_new(n, sender, depth)?,
            workers: 1,
            worker_spans: false,
            early_stop: None,
            packed_vote: false,
        })
    }

    /// Sets the resolution worker count (0 is clamped to 1). Results
    /// and deterministic counters are independent of this knob; only
    /// wall time changes.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Also records one `eig.resolve_chunk` span per worker chunk in
    /// observed runs. Chunking depends on the worker count, so these
    /// spans are **not** worker-count-independent — leave this off
    /// (the default) for golden traces and cross-worker diffing, turn
    /// it on when profiling the fan-out itself.
    pub fn with_worker_spans(mut self) -> Self {
        self.worker_spans = true;
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enables protocol-level early stopping for runs whose certified
    /// fault set is `faulty`: the fill skips every subtree strictly
    /// below a [`crate::eig::prunable_path`] frontier node and the
    /// resolution treats frontier nodes as leaves. Decisions stay
    /// bit-identical to the unpruned fold for any adversary drawn from
    /// `faulty` (DESIGN.md §5h); [`EigPerf::subtrees_pruned`] and
    /// [`EigPerf::messages_saved`] report the saving.
    ///
    /// The mask is per-run state: re-derive the engine (or call this
    /// again) when the fault set changes.
    ///
    /// # Panics
    ///
    /// If any certified id is >= 64 (the `u64` mask ceiling). Use
    /// [`EigEngine::try_with_early_stop`] for a typed error.
    pub fn with_early_stop(self, faulty: &BTreeSet<NodeId>) -> Self {
        self.try_with_early_stop(faulty)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`EigEngine::with_early_stop`]: a certified id
    /// the `u64` mask cannot hold (index >= 64) is rejected as
    /// [`EngineError::TooManyNodes`] instead of a shift panic.
    pub fn try_with_early_stop(mut self, faulty: &BTreeSet<NodeId>) -> Result<Self, EngineError> {
        let mut mask = 0u64;
        for f in faulty {
            if f.index() >= 64 {
                return Err(EngineError::TooManyNodes { n: f.index() + 1 });
            }
            mask |= 1u64 << f.index();
        }
        self.early_stop = Some(mask);
        Ok(self)
    }

    /// Whether early stopping is armed (and with which fault mask).
    pub(crate) fn early_stop_mask(&self) -> Option<u64> {
        self.early_stop
    }

    /// Whether early stopping is armed.
    pub fn early_stop_enabled(&self) -> bool {
        self.early_stop.is_some()
    }

    /// Routes resolution through the bitpacked VOTE evaluator: store
    /// values are interned into a `u8` palette (`0` = `V_d`/absent) and
    /// votes are counted over packed `u64` words. Falls back to the
    /// scalar resolver — bit-identically, it is the oracle — when the
    /// palette overflows 255 distinct values or the rule is not
    /// [`VoteRule::Degradable`].
    pub fn with_packed_vote(mut self) -> Self {
        self.packed_vote = true;
        self
    }

    /// Whether the bitpacked VOTE path is armed.
    pub fn packed_vote_enabled(&self) -> bool {
        self.packed_vote
    }

    /// Whether per-chunk spans are recorded (crate-internal).
    pub(crate) fn worker_spans_enabled(&self) -> bool {
        self.worker_spans
    }

    /// The shared arena.
    pub fn arena(&self) -> &PathArena {
        &self.arena
    }

    /// The early-stopping counters of one run, derived purely from the
    /// arena shape and the armed fault mask: the number of frontier
    /// subtrees cut, and the relay envelopes (one per off-path
    /// receiver of each skipped label) that were never sent.
    pub(crate) fn prune_counters(&self) -> (u64, u64) {
        let Some(mask) = self.early_stop else {
            return (0, 0);
        };
        let mut subtrees_pruned = 0u64;
        let mut messages_saved = 0u64;
        for node in &self.arena.nodes {
            if node.parent != u32::MAX
                && prunable_node(&self.arena.nodes[node.parent as usize], mask)
            {
                // Strictly below the frontier: the whole label is cut.
                messages_saved += (self.arena.n - node.len as usize) as u64;
            } else if prunable_node(node, mask) && node.child_count > 0 {
                subtrees_pruned += 1;
            }
        }
        (subtrees_pruned, messages_saved)
    }

    /// Breadth-first fill from a fabricate closure — the synchronous
    /// omniscient execution of [`crate::eig::run_eig_full`], writing
    /// into `store` instead of a `BTreeMap` keyed by [`Path`].
    /// `fabricate` is invoked in the same (label, receiver) order as
    /// the reference executor.
    pub fn fill<V: Clone + Ord>(
        &self,
        store: &mut EigStore<V>,
        sender_value: &AgreementValue<V>,
        faulty: &BTreeSet<NodeId>,
        fabricate: Fabricate<'_, V>,
    ) {
        let arena = &self.arena;
        let n = arena.n;

        // Level 1: the sender distributes its value.
        let root_path = Path::root(arena.sender);
        let sender_faulty = faulty.contains(&arena.sender);
        for r in NodeId::all(n) {
            if r == arena.sender {
                continue;
            }
            let v = if sender_faulty {
                fabricate(&root_path, r, sender_value)
            } else {
                sender_value.clone()
            };
            store.record(arena, PathId::ROOT, r, v);
        }

        // Levels 2..=depth: receivers relay what they received one
        // level up. With early stopping armed, labels strictly below a
        // prunable frontier node are never relayed: their parent's
        // subtree vote is already certain to collapse to the parent
        // value, so the whole broadcast is skipped (the cut predicate
        // is downward-closed, so a skipped parent was itself never
        // read).
        for level in 1..arena.levels.len() {
            for id in arena.levels[level].clone() {
                let node = arena.nodes[id as usize];
                if let Some(mask) = self.early_stop {
                    if prunable_node(&arena.nodes[node.parent as usize], mask) {
                        continue;
                    }
                }
                let relayer = node.last;
                let truthful = store
                    .get(PathId(node.parent), relayer)
                    .cloned()
                    .expect("relayer must have received the parent value");
                let lie_path = if faulty.contains(&relayer) {
                    Some(arena.resolve_path(PathId(id)))
                } else {
                    None
                };
                for r in NodeId::all(n) {
                    if node.members >> r.index() & 1 == 1 {
                        continue;
                    }
                    let v = match &lie_path {
                        Some(path) => fabricate(path, r, &truthful),
                        None => truthful.clone(),
                    };
                    store.record(arena, PathId(id), r, v);
                }
            }
        }
    }

    /// Fills a fresh store via [`EigEngine::fill`] and resolves it —
    /// the engine counterpart of [`crate::reference_eval`].
    pub fn run<V: Clone + Ord + Send + Sync>(
        &self,
        rule: VoteRule,
        sender_value: &AgreementValue<V>,
        faulty: &BTreeSet<NodeId>,
        fabricate: Fabricate<'_, V>,
    ) -> EngineRun<V> {
        self.run_observed(rule, sender_value, faulty, fabricate, &mut Obs::disabled())
    }

    /// [`EigEngine::run`] with observability: records an `eig.fill`
    /// span (logical cost = slots materialized), the per-level resolve
    /// spans of [`EigEngine::resolve_observed`], and the `eig.*`
    /// registry counters. With a disabled recorder this is exactly
    /// `run` — no clock reads beyond the `EigPerf` phase timings.
    pub fn run_observed<V: Clone + Ord + Send + Sync>(
        &self,
        rule: VoteRule,
        sender_value: &AgreementValue<V>,
        faulty: &BTreeSet<NodeId>,
        fabricate: Fabricate<'_, V>,
        obs: &mut Obs,
    ) -> EngineRun<V> {
        let fill_timer = obs.span(
            "eig.fill",
            vec![
                ("n", self.arena.n as u64),
                ("depth", self.arena.depth as u64),
            ],
        );
        let fill_start = Instant::now();
        let mut store = EigStore::new(&self.arena);
        self.fill(&mut store, sender_value, faulty, fabricate);
        let fill_nanos = fill_start.elapsed().as_nanos() as u64;
        obs.finish(fill_timer, store.materialized());
        let mut run = self.resolve_observed(rule, &store, obs);
        run.perf.fill_nanos = fill_nanos;
        run
    }

    /// Bottom-up resolution of a filled store: one `Summary` per
    /// arena node, deepest level first, with the fan-out within each
    /// level split across `workers` scoped threads. Decisions and the
    /// deterministic counters are identical for every worker count.
    pub fn resolve<V: Clone + Ord + Send + Sync>(
        &self,
        rule: VoteRule,
        store: &EigStore<V>,
    ) -> EngineRun<V> {
        self.resolve_observed(rule, store, &mut Obs::disabled())
    }

    /// [`EigEngine::resolve`] with observability: one
    /// `eig.resolve_level` span per level (logical cost = votes
    /// settled, i.e. evaluated + memo-hit — worker-count-independent),
    /// optional per-chunk spans (see [`EigEngine::with_worker_spans`]),
    /// and the run's [`EigPerf`] counters folded into the registry
    /// under `eig.*` names.
    pub fn resolve_observed<V: Clone + Ord + Send + Sync>(
        &self,
        rule: VoteRule,
        store: &EigStore<V>,
        obs: &mut Obs,
    ) -> EngineRun<V> {
        if self.packed_vote {
            if let Some(run) = crate::packed::resolve_packed(self, rule, store, obs) {
                return run;
            }
        }
        let resolve_start = Instant::now();
        // Chunk wall times are only sampled when someone will read them.
        let timed_chunks = obs.is_enabled() && self.worker_spans;
        let arena = &self.arena;
        let mut summaries: Vec<Option<Summary<V>>> = Vec::new();
        summaries.resize_with(arena.node_count(), || None);
        let mut votes_evaluated = 0u64;
        let mut votes_memo_hit = 0u64;

        for level in (0..arena.levels.len()).rev() {
            let range = arena.levels[level].clone();
            let count = (range.end - range.start) as usize;
            let level_timer = obs.span(
                "eig.resolve_level",
                vec![("level", level as u64), ("width", count as u64)],
            );
            let (head, deeper) = summaries.split_at_mut(range.end as usize);
            let level_slice = &mut head[range.start as usize..];
            let deeper_offset = range.end;
            let chunk_len = count.div_ceil(self.workers).max(1);
            let chunk_stats: Vec<(u64, u64, u64)> = if self.workers <= 1 || count <= chunk_len {
                vec![resolve_chunk(
                    arena,
                    store,
                    rule,
                    range.start,
                    level_slice,
                    &*deeper,
                    deeper_offset,
                    self.early_stop,
                    timed_chunks,
                )]
            } else {
                let deeper_ref: &[Option<Summary<V>>] = deeper;
                let early = self.early_stop;
                std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for (i, chunk) in level_slice.chunks_mut(chunk_len).enumerate() {
                        let first_id = range.start + (i * chunk_len) as u32;
                        handles.push(scope.spawn(move || {
                            resolve_chunk(
                                arena,
                                store,
                                rule,
                                first_id,
                                chunk,
                                deeper_ref,
                                deeper_offset,
                                early,
                                timed_chunks,
                            )
                        }));
                    }
                    // Joining in spawn order keeps chunk-span recording
                    // deterministic for a fixed worker count.
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("resolver thread panicked"))
                        .collect::<Vec<_>>()
                })
            };
            let mut level_votes = 0u64;
            for (chunk, &(e, h, wall_nanos)) in chunk_stats.iter().enumerate() {
                votes_evaluated += e;
                votes_memo_hit += h;
                level_votes += e + h;
                if timed_chunks {
                    obs.record_span(SpanRecord {
                        name: "eig.resolve_chunk".to_string(),
                        args: vec![
                            ("level".to_string(), level as u64),
                            ("chunk".to_string(), chunk as u64),
                        ],
                        logical: e + h,
                        wall_nanos,
                    });
                }
            }
            obs.finish(level_timer, level_votes);
        }

        let root = summaries[0]
            .as_ref()
            .expect("root summary resolved by the last pass");
        let mut decisions = BTreeMap::new();
        for r in NodeId::all(arena.n) {
            if r == arena.sender {
                continue;
            }
            decisions.insert(r, root.value_for(r.index()).clone());
        }

        let (subtrees_pruned, messages_saved) = self.prune_counters();
        let perf = EigPerf {
            arena_nodes: arena.node_count() as u64,
            votes_evaluated,
            votes_memo_hit,
            messages_materialized: store.materialized(),
            subtrees_pruned,
            messages_saved,
            fill_nanos: 0,
            resolve_nanos: resolve_start.elapsed().as_nanos() as u64,
        };
        if let Some(registry) = obs.registry_mut() {
            perf.fold_into(registry);
        }
        EngineRun { decisions, perf }
    }
}

/// Resolves the contiguous id range starting at `first_id` into `out`,
/// reading already-resolved deeper summaries from `deeper` (which
/// starts at global id `deeper_offset`). Returns `(votes_evaluated,
/// votes_memo_hit, wall_nanos)` for the chunk; the wall time is only
/// sampled when `timed` (zero otherwise), so untimed runs pay no clock
/// reads in the fan-out hot path.
#[allow(clippy::too_many_arguments)]
fn resolve_chunk<V: Clone + Ord>(
    arena: &PathArena,
    store: &EigStore<V>,
    rule: VoteRule,
    first_id: u32,
    out: &mut [Option<Summary<V>>],
    deeper: &[Option<Summary<V>>],
    deeper_offset: u32,
    early_stop: Option<u64>,
    timed: bool,
) -> (u64, u64, u64) {
    let chunk_start = if timed { Some(Instant::now()) } else { None };
    let n = arena.n;
    let mut votes_evaluated = 0u64;
    let mut votes_memo_hit = 0u64;
    let mut scratch: Vec<AgreementValue<V>> = Vec::with_capacity(n);

    for (slot, id) in out.iter_mut().zip(first_id..) {
        let node = &arena.nodes[id as usize];
        let len = node.len as usize;
        let id = PathId(id);

        // Strictly below the early-stop frontier nothing was filled and
        // no ancestor reads the summary (the cut is downward-closed and
        // frontier nodes resolve as leaves): skip the node entirely.
        if node.parent != u32::MAX {
            if let Some(mask) = early_stop {
                if prunable_node(&arena.nodes[node.parent as usize], mask) {
                    continue;
                }
            }
        }

        // Effective own values (absent reads as V_d), plus uniformity.
        let mut own: Vec<AgreementValue<V>> = Vec::new();
        own.resize_with(n, AgreementValue::default);
        let mut first_receiver: Option<usize> = None;
        let mut uniform = true;
        for r in 0..n {
            if node.members >> r & 1 == 1 {
                continue;
            }
            if let Some(v) = store.get(id, NodeId::new(r)) {
                own[r] = v.clone();
            }
            match first_receiver {
                None => first_receiver = Some(r),
                Some(f) => uniform = uniform && own[f] == own[r],
            }
        }

        let frontier = early_stop.is_some_and(|mask| prunable_node(node, mask));
        if node.child_count == 0 || frontier {
            // Leaf: the resolution *is* the stored value; no vote. A
            // leaf whose path covers all n nodes has no receivers at
            // all (depth >= n); nothing ever reads its summary, so any
            // uniform value serves. Prunable nodes resolve as leaves
            // too: their subtree vote is certain to collapse to the
            // stored value (and the fill skipped the subtree), and cut
            // nodes below the frontier — themselves prunable by
            // downward closure — get an all-absent row summarizing to
            // V_d that no ancestor ever reads.
            debug_assert!(frontier || len == arena.levels.len());
            *slot = Some(match first_receiver {
                Some(r) if uniform => Summary::Uniform(own[r].clone()),
                Some(_) => Summary::PerReceiver(own.into_boxed_slice()),
                None => Summary::Uniform(AgreementValue::default()),
            });
            continue;
        }

        let children = node.first_child..node.first_child + node.child_count;
        let receivers = n - len;

        // Fast path: own slots uniform and every child subtree uniform
        // with one shared value. Each receiver's gather is then the
        // same multiset {own} ∪ {v × (receivers-1)} — one VOTE serves
        // all of them (see module docs for the exclusion argument).
        let child_uniform = if uniform {
            let mut shared: Option<&AgreementValue<V>> = None;
            let mut all = true;
            for c in children.clone() {
                match &deeper[(c - deeper_offset) as usize] {
                    Some(Summary::Uniform(v)) => match shared {
                        None => shared = Some(v),
                        Some(s) => all = all && s == v,
                    },
                    _ => {
                        all = false;
                        break;
                    }
                }
            }
            if all {
                shared.cloned()
            } else {
                None
            }
        } else {
            None
        };

        if let Some(v) = child_uniform {
            let a = own[first_receiver.expect("internal nodes have receivers")].clone();
            scratch.clear();
            scratch.push(a);
            scratch.resize(receivers, v);
            let combined = rule.combine(n, len, &scratch);
            votes_evaluated += 1;
            votes_memo_hit += receivers as u64 - 1;
            *slot = Some(Summary::Uniform(combined));
            continue;
        }

        // Slow path: exact per-receiver votes — the reference gather.
        let mut per: Vec<AgreementValue<V>> = Vec::new();
        per.resize_with(n, AgreementValue::default);
        let mut first: Option<usize> = None;
        let mut collapsed = true;
        for r in 0..n {
            if node.members >> r & 1 == 1 {
                continue;
            }
            scratch.clear();
            scratch.push(own[r].clone());
            for c in children.clone() {
                if arena.nodes[c as usize].last.index() == r {
                    continue;
                }
                let child = deeper[(c - deeper_offset) as usize]
                    .as_ref()
                    .expect("deeper levels resolved first");
                scratch.push(child.value_for(r).clone());
            }
            debug_assert_eq!(scratch.len(), receivers);
            per[r] = rule.combine(n, len, &scratch);
            votes_evaluated += 1;
            match first {
                None => first = Some(r),
                Some(f) => collapsed = collapsed && per[f] == per[r],
            }
        }
        // Opportunistic collapse: if every receiver resolved to the
        // same value anyway, store it uniformly so ancestors can take
        // the fast path (the votes were still individually evaluated,
        // so no memo hit is counted here).
        *slot = Some(if collapsed {
            Summary::Uniform(per[first.expect("internal nodes have receivers")].clone())
        } else {
            Summary::PerReceiver(per.into_boxed_slice())
        });
    }

    let wall_nanos = chunk_start
        .map(|s| s.elapsed().as_nanos() as u64)
        .unwrap_or(0);
    (votes_evaluated, votes_memo_hit, wall_nanos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Strategy;
    use crate::eig::run_eig_full;
    use crate::paths_of_length;
    use crate::value::Val;
    use simnet::SimRng;

    fn arena_4_2() -> PathArena {
        PathArena::new(4, NodeId::new(0), 2)
    }

    #[test]
    fn arena_counts_match_closed_form() {
        for (n, depth) in [(4usize, 2usize), (5, 3), (7, 3), (10, 3), (13, 3)] {
            let arena = PathArena::new(n, NodeId::new(0), depth);
            let expected: u128 = (1..=depth).map(|l| path_count(n, l)).sum();
            assert_eq!(arena.node_count() as u128, expected);
        }
    }

    #[test]
    fn intern_accepts_exactly_the_enumerated_paths() {
        let arena = PathArena::new(5, NodeId::new(1), 3);
        let mut seen = std::collections::BTreeSet::new();
        for len in 1..=3 {
            for path in paths_of_length(NodeId::new(1), 5, len) {
                let id = arena.intern(&path).expect("valid label interns");
                assert!(seen.insert(id), "ids are unique");
                assert_eq!(arena.resolve_path(id), path, "round trip");
            }
        }
        assert_eq!(seen.len(), arena.node_count());
    }

    #[test]
    fn intern_rejects_foreign_paths() {
        let arena = arena_4_2();
        // Wrong sender.
        assert_eq!(arena.intern(&Path::root(NodeId::new(1))), None);
        // Too deep.
        let deep = Path::root(NodeId::new(0))
            .child(NodeId::new(1))
            .child(NodeId::new(2));
        assert_eq!(arena.intern(&deep), None);
        // Out-of-range node.
        let foreign = Path::root(NodeId::new(0)).child(NodeId::new(9));
        assert_eq!(arena.intern(&foreign), None);
    }

    #[test]
    fn mask_width_boundary_is_typed_not_a_shift_panic() {
        // n = 64 is the widest shape the u64 masks represent: the full
        // mask is `u64::MAX >> 0` and the highest member bit is
        // `1 << 63` — both legal shifts.
        let arena = PathArena::try_new(64, NodeId::new(63), 2).expect("n = 64 is supported");
        assert_eq!(arena.node_count() as u128, 1 + path_count(64, 2));
        assert!(EigEngine::try_new(64, NodeId::new(0), 2).is_ok());
        // n = 65 would need `u64::MAX >> (64 - 65)` — a typed error now,
        // not a shift overflow.
        assert_eq!(
            PathArena::try_new(65, NodeId::new(0), 2).err(),
            Some(EngineError::TooManyNodes { n: 65 })
        );
        assert!(matches!(
            EigEngine::try_new(65, NodeId::new(0), 2),
            Err(EngineError::TooManyNodes { n: 65 })
        ));
        assert_eq!(
            PathArena::try_new(0, NodeId::new(0), 2).err(),
            Some(EngineError::TooManyNodes { n: 0 })
        );
        assert_eq!(
            PathArena::try_new(4, NodeId::new(4), 2).err(),
            Some(EngineError::SenderOutOfRange {
                sender: NodeId::new(4),
                n: 4
            })
        );
        assert_eq!(
            PathArena::try_new(4, NodeId::new(0), 0).err(),
            Some(EngineError::ZeroDepth)
        );
    }

    #[test]
    fn early_stop_mask_boundary_is_typed() {
        // Id 63 is the last representable bit; id 64 would be
        // `1u64 << 64`.
        let ok: BTreeSet<NodeId> = [NodeId::new(63)].into();
        assert!(EigEngine::try_new(64, NodeId::new(0), 2)
            .unwrap()
            .try_with_early_stop(&ok)
            .is_ok());
        let wide: BTreeSet<NodeId> = [NodeId::new(64)].into();
        assert!(matches!(
            EigEngine::try_new(64, NodeId::new(0), 2)
                .unwrap()
                .try_with_early_stop(&wide),
            Err(EngineError::TooManyNodes { n: 65 })
        ));
    }

    #[test]
    fn cleared_store_matches_a_fresh_one() {
        let arena = arena_4_2();
        let mut store: EigStore<u64> = EigStore::new(&arena);
        let r = NodeId::new(2);
        store.record(&arena, PathId::ROOT, r, Val::Value(7));
        assert_eq!(store.materialized(), 1);
        store.clear();
        assert_eq!(store.materialized(), 0);
        assert_eq!(store.get(PathId::ROOT, r), None);
        assert_eq!(store.column(r).count(), 0);
        // First-write-wins restarts from scratch after the clear.
        assert!(store.record(&arena, PathId::ROOT, r, Val::Value(9)));
        assert_eq!(store.get(PathId::ROOT, r), Some(&Val::Value(9)));
    }

    #[test]
    fn store_is_first_write_wins() {
        let arena = arena_4_2();
        let mut store: EigStore<u64> = EigStore::new(&arena);
        let r = NodeId::new(2);
        assert!(store.record(&arena, PathId::ROOT, r, Val::Value(7)));
        assert!(!store.record(&arena, PathId::ROOT, r, Val::Value(9)));
        assert_eq!(store.get(PathId::ROOT, r), Some(&Val::Value(7)));
        assert_eq!(store.materialized(), 1);
    }

    #[test]
    fn store_column_lists_one_receivers_slots_in_bfs_order() {
        let arena = arena_4_2();
        let mut store: EigStore<u64> = EigStore::new(&arena);
        let r = NodeId::new(2);
        let level2 = Path::root(NodeId::new(0)).child(NodeId::new(1));
        let id2 = arena.intern(&level2).unwrap();
        // Record out of BFS order; the column still comes back sorted.
        store.record(&arena, id2, r, Val::Value(9));
        store.record(&arena, PathId::ROOT, r, Val::Value(7));
        store.record(&arena, PathId::ROOT, NodeId::new(1), Val::Value(5));
        let column: Vec<(PathId, Val)> = store.column(r).map(|(id, v)| (id, *v)).collect();
        assert_eq!(
            column,
            vec![(PathId::ROOT, Val::Value(7)), (id2, Val::Value(9))]
        );
        assert_eq!(store.column(NodeId::new(3)).count(), 0);
    }

    #[test]
    #[should_panic(expected = "receiver must not lie on the recorded path")]
    fn store_rejects_on_path_receiver() {
        let arena = arena_4_2();
        let mut store: EigStore<u64> = EigStore::new(&arena);
        store.record(&arena, PathId::ROOT, NodeId::new(0), Val::Value(7));
    }

    /// Differential micro-check: engine vs reference on a randomized
    /// adversary, all worker counts, plus the vote-count invariant
    /// evaluated + memo_hit == Σ_{l=1}^{depth-1} path_count(n, l)·(n-l).
    #[test]
    fn engine_matches_reference_and_counts_votes() {
        let mut rng = SimRng::seed(0xE16E);
        for &(n, depth, m) in &[(4usize, 2usize, 1usize), (5, 2, 1), (7, 3, 2)] {
            let sender = NodeId::new(rng.below(n as u64) as usize);
            let rule = VoteRule::Degradable { m };
            for trial in 0..8 {
                let f = (trial % (m + 2)).min(n - 1);
                let faulty: BTreeSet<NodeId> = rng
                    .choose_indices(n, f)
                    .into_iter()
                    .map(NodeId::new)
                    .collect();
                let battery = Strategy::battery(1, 2, rng.below(u64::MAX));
                let strategies: BTreeMap<NodeId, Strategy<u64>> = faulty
                    .iter()
                    .map(|&f| {
                        let (_, s) = battery[rng.below(battery.len() as u64) as usize].clone();
                        (f, s)
                    })
                    .collect();
                let mut fab = |path: &Path, r: NodeId, truthful: &Val| {
                    strategies
                        .get(&path.last())
                        .map(|s| s.claim(path, r, truthful))
                        .unwrap_or(*truthful)
                };
                let reference =
                    run_eig_full(n, sender, depth, rule, &Val::Value(7), &faulty, &mut fab);
                for workers in [1usize, 2, 8] {
                    let engine = EigEngine::new(n, sender, depth).with_workers(workers);
                    let mut fab = |path: &Path, r: NodeId, truthful: &Val| {
                        strategies
                            .get(&path.last())
                            .map(|s| s.claim(path, r, truthful))
                            .unwrap_or(*truthful)
                    };
                    let run = engine.run(rule, &Val::Value(7), &faulty, &mut fab);
                    assert_eq!(run.decisions, reference.decisions, "n={n} depth={depth}");
                    let total_votes: u128 =
                        (1..depth).map(|l| path_count(n, l) * (n - l) as u128).sum();
                    assert_eq!(
                        (run.perf.votes_evaluated + run.perf.votes_memo_hit) as u128,
                        total_votes,
                        "vote accounting at n={n} depth={depth}"
                    );
                    let slots: u128 = (1..=depth)
                        .map(|l| path_count(n, l) * (n - l) as u128)
                        .sum();
                    assert_eq!(run.perf.messages_materialized as u128, slots);
                    assert_eq!(run.perf.arena_nodes, engine.arena().node_count() as u64);
                }
            }
        }
    }

    #[test]
    fn fault_free_run_memoizes_everything() {
        let engine = EigEngine::new(7, NodeId::new(0), 3);
        let mut fab = |_: &Path, _: NodeId, v: &Val| *v;
        let run = engine.run(
            VoteRule::Degradable { m: 2 },
            &Val::Value(5),
            &BTreeSet::new(),
            &mut fab,
        );
        assert!(run.decisions.values().all(|d| *d == Val::Value(5)));
        // Every internal node collapses: exactly one vote per node.
        let internal: u128 = (1..3).map(|l| path_count(7, l)).sum();
        assert_eq!(run.perf.votes_evaluated as u128, internal);
        assert!(run.perf.votes_memo_hit > 0);
    }

    fn observed_run(workers: usize, worker_spans: bool) -> Obs {
        let mut engine = EigEngine::new(5, NodeId::new(0), 3).with_workers(workers);
        if worker_spans {
            engine = engine.with_worker_spans();
        }
        let faulty: BTreeSet<NodeId> = [NodeId::new(2)].into();
        let mut fab = |_: &Path, r: NodeId, _: &Val| Val::Value(r.index() as u64);
        let mut obs = Obs::enabled();
        engine.run_observed(
            VoteRule::Degradable { m: 1 },
            &Val::Value(7),
            &faulty,
            &mut fab,
            &mut obs,
        );
        obs
    }

    #[test]
    fn observed_run_records_fill_and_level_spans_and_counters() {
        let obs = observed_run(1, false);
        let names: Vec<&str> = obs.spans().iter().map(|s| s.name.as_str()).collect();
        // One fill span, then one resolve span per level, deepest first.
        assert_eq!(
            names,
            vec![
                "eig.fill",
                "eig.resolve_level",
                "eig.resolve_level",
                "eig.resolve_level"
            ]
        );
        let fill = &obs.spans()[0];
        let slots: u128 = (1..=3).map(|l| path_count(5, l) * (5 - l) as u128).sum();
        assert_eq!(fill.logical as u128, slots, "fill logical = materialized");
        // Level spans settle every vote exactly once.
        let settled: u64 = obs.spans()[1..].iter().map(|s| s.logical).sum();
        let total_votes: u128 = (1..3).map(|l| path_count(5, l) * (5 - l) as u128).sum();
        assert_eq!(settled as u128, total_votes);
        // Registry counters mirror EigPerf's deterministic counters.
        let reg = obs.registry();
        assert_eq!(
            reg.counter("eig.votes_evaluated") + reg.counter("eig.votes_memo_hit"),
            settled
        );
        assert_eq!(reg.counter("eig.messages_materialized") as u128, slots);
        assert!(reg.counter("eig.arena_nodes") > 0);
    }

    #[test]
    fn observed_output_is_worker_count_independent() {
        let mut base = observed_run(1, false);
        obs::scrub_timing(&mut base);
        for workers in [2usize, 8] {
            let mut other = observed_run(workers, false);
            obs::scrub_timing(&mut other);
            assert_eq!(base, other, "workers={workers}");
        }
    }

    #[test]
    fn worker_spans_are_opt_in_chunk_detail() {
        let without = observed_run(2, false);
        assert!(without
            .spans()
            .iter()
            .all(|s| s.name != "eig.resolve_chunk"));
        let with = observed_run(2, true);
        let chunks: Vec<&SpanRecord> = with
            .spans()
            .iter()
            .filter(|s| s.name == "eig.resolve_chunk")
            .collect();
        assert!(!chunks.is_empty());
        // Chunk logical costs partition the owning level's span.
        let level1_total: u64 = chunks
            .iter()
            .filter(|s| s.args.contains(&("level".to_string(), 1)))
            .map(|s| s.logical)
            .sum();
        let level1_span = with
            .spans()
            .iter()
            .find(|s| s.name == "eig.resolve_level" && s.args.contains(&("level".to_string(), 1)))
            .unwrap();
        assert_eq!(level1_total, level1_span.logical);
    }

    #[test]
    fn workers_knob_is_observable_but_inert() {
        let engine = EigEngine::new(4, NodeId::new(0), 2).with_workers(0);
        assert_eq!(engine.workers(), 1, "zero clamps to one");
        assert_eq!(
            EigEngine::new(4, NodeId::new(0), 2)
                .with_workers(8)
                .workers(),
            8
        );
    }

    /// Random adversaries per shape: fault set, per-node strategies and
    /// a fabricate closure over them.
    fn random_adversary(
        rng: &mut SimRng,
        n: usize,
        m: usize,
    ) -> (BTreeSet<NodeId>, BTreeMap<NodeId, Strategy<u64>>) {
        let f = rng.below(m as u64 + 1) as usize;
        let faulty: BTreeSet<NodeId> = rng
            .choose_indices(n, f)
            .into_iter()
            .map(NodeId::new)
            .collect();
        let battery = Strategy::battery(1, 2, rng.below(u64::MAX));
        let strategies = faulty
            .iter()
            .map(|&f| {
                let (_, s) = battery[rng.below(battery.len() as u64) as usize].clone();
                (f, s)
            })
            .collect();
        (faulty, strategies)
    }

    /// Early stopping: decisions bit-identical to the reference for
    /// every adversary, and the prune counters satisfy the census
    /// invariant `materialized + saved == full slot count`.
    #[test]
    fn early_stop_matches_reference_and_keeps_the_slot_census() {
        let mut rng = SimRng::seed(0xE5E5);
        for &(n, depth, m) in &[(4usize, 2usize, 1usize), (5, 2, 1), (7, 3, 2), (9, 3, 2)] {
            let sender = NodeId::new(rng.below(n as u64) as usize);
            let rule = VoteRule::Degradable { m };
            let full_slots: u128 = (1..=depth)
                .map(|l| path_count(n, l) * (n - l) as u128)
                .sum();
            for _ in 0..12 {
                let (faulty, strategies) = random_adversary(&mut rng, n, m);
                let mut fab = |path: &Path, r: NodeId, truthful: &Val| {
                    strategies
                        .get(&path.last())
                        .map(|s| s.claim(path, r, truthful))
                        .unwrap_or(*truthful)
                };
                let reference =
                    run_eig_full(n, sender, depth, rule, &Val::Value(7), &faulty, &mut fab);
                let engine = EigEngine::new(n, sender, depth).with_early_stop(&faulty);
                let mut fab = |path: &Path, r: NodeId, truthful: &Val| {
                    strategies
                        .get(&path.last())
                        .map(|s| s.claim(path, r, truthful))
                        .unwrap_or(*truthful)
                };
                let run = engine.run(rule, &Val::Value(7), &faulty, &mut fab);
                assert_eq!(
                    run.decisions, reference.decisions,
                    "n={n} faulty={faulty:?}"
                );
                assert_eq!(
                    (run.perf.messages_materialized + run.perf.messages_saved) as u128,
                    full_slots,
                    "census at n={n} faulty={faulty:?}"
                );
                if faulty.is_empty() {
                    assert!(run.perf.subtrees_pruned > 0, "fault-free prunes at n={n}");
                    assert!(run.perf.messages_saved > 0, "fault-free saves at n={n}");
                }
            }
        }
    }

    /// A fault-free early-stopped run at depth 3 collapses to the root
    /// broadcast plus one relay level: everything below level 1 is cut.
    #[test]
    fn fault_free_early_stop_cuts_below_the_first_relay_level() {
        let n = 7;
        let engine = EigEngine::new(n, NodeId::new(0), 3).with_early_stop(&BTreeSet::new());
        let mut fab = |_: &Path, _: NodeId, v: &Val| *v;
        let run = engine.run(
            VoteRule::Degradable { m: 2 },
            &Val::Value(5),
            &BTreeSet::new(),
            &mut fab,
        );
        assert!(run.decisions.values().all(|d| *d == Val::Value(5)));
        // With F = ∅ the root itself is prunable, so only its own
        // broadcast materializes.
        assert_eq!(run.perf.messages_materialized as u128, (n - 1) as u128);
        assert_eq!(run.perf.subtrees_pruned, 1, "the root subtree");
        let full_slots: u128 = (1..=3).map(|l| path_count(n, l) * (n - l) as u128).sum();
        assert_eq!(
            run.perf.messages_saved as u128,
            full_slots - (n - 1) as u128
        );
    }

    /// The knob is off by default and a disarmed engine reports zero
    /// prune counters.
    #[test]
    fn prune_counters_are_zero_without_the_knob() {
        let engine = EigEngine::new(5, NodeId::new(0), 2);
        assert!(!engine.early_stop_enabled());
        let mut fab = |_: &Path, _: NodeId, v: &Val| *v;
        let run = engine.run(
            VoteRule::Degradable { m: 1 },
            &Val::Value(5),
            &BTreeSet::new(),
            &mut fab,
        );
        assert_eq!(run.perf.subtrees_pruned, 0);
        assert_eq!(run.perf.messages_saved, 0);
    }

    /// Packed VOTE: decisions *and* deterministic counters bit-identical
    /// to the scalar resolver over random adversaries, with and without
    /// early stopping, across worker counts.
    #[test]
    fn packed_vote_is_bit_identical_to_scalar() {
        let mut rng = SimRng::seed(0xB17B);
        for &(n, depth, m) in &[(4usize, 2usize, 1usize), (7, 3, 2), (9, 3, 2)] {
            let sender = NodeId::new(rng.below(n as u64) as usize);
            let rule = VoteRule::Degradable { m };
            for early in [false, true] {
                for _ in 0..8 {
                    let (faulty, strategies) = random_adversary(&mut rng, n, m);
                    let run_with = |packed: bool, workers: usize| {
                        let mut engine = EigEngine::new(n, sender, depth).with_workers(workers);
                        if early {
                            engine = engine.with_early_stop(&faulty);
                        }
                        if packed {
                            engine = engine.with_packed_vote();
                        }
                        let mut fab = |path: &Path, r: NodeId, truthful: &Val| {
                            strategies
                                .get(&path.last())
                                .map(|s| s.claim(path, r, truthful))
                                .unwrap_or(*truthful)
                        };
                        engine.run(rule, &Val::Value(7), &faulty, &mut fab)
                    };
                    let scalar = run_with(false, 1);
                    for workers in [1usize, 3] {
                        let packed = run_with(true, workers);
                        assert_eq!(
                            packed.decisions, scalar.decisions,
                            "n={n} early={early} workers={workers} faulty={faulty:?}"
                        );
                        assert_eq!(
                            packed.perf.deterministic_counters(),
                            scalar.perf.deterministic_counters(),
                            "n={n} early={early} workers={workers} faulty={faulty:?}"
                        );
                    }
                }
            }
        }
    }

    /// Non-`Degradable` rules fall back to the scalar resolver: the
    /// packed knob must be behaviour-preserving there too.
    #[test]
    fn packed_vote_falls_back_on_majority_rule() {
        let faulty: BTreeSet<NodeId> = [NodeId::new(3)].into();
        let run_with = |packed: bool| {
            let mut engine = EigEngine::new(5, NodeId::new(0), 2);
            if packed {
                engine = engine.with_packed_vote();
            }
            let mut fab = |_: &Path, r: NodeId, _: &Val| Val::Value(r.index() as u64);
            engine.run(VoteRule::Majority, &Val::Value(7), &faulty, &mut fab)
        };
        let scalar = run_with(false);
        let packed = run_with(true);
        assert_eq!(packed.decisions, scalar.decisions);
        assert_eq!(
            packed.perf.deterministic_counters(),
            scalar.perf.deterministic_counters()
        );
    }

    /// The packed resolver emits the same spans (names, args, logical
    /// costs) and registry counters as the scalar one: observability
    /// output is knob-independent after timing scrub.
    #[test]
    fn packed_observed_output_matches_scalar() {
        let run_obs = |packed: bool, early: bool| {
            let faulty: BTreeSet<NodeId> = [NodeId::new(2)].into();
            let mut engine = EigEngine::new(5, NodeId::new(0), 3);
            if early {
                engine = engine.with_early_stop(&faulty);
            }
            if packed {
                engine = engine.with_packed_vote();
            }
            let mut fab = |_: &Path, r: NodeId, _: &Val| Val::Value(r.index() as u64);
            let mut obs = Obs::enabled();
            engine.run_observed(
                VoteRule::Degradable { m: 1 },
                &Val::Value(7),
                &faulty,
                &mut fab,
                &mut obs,
            );
            obs::scrub_timing(&mut obs);
            obs
        };
        for early in [false, true] {
            assert_eq!(run_obs(true, early), run_obs(false, early), "early={early}");
        }
    }
}
