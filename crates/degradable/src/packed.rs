//! Bitpacked VOTE evaluation for the arena engine.
//!
//! The scalar resolver ([`crate::engine::EigEngine::resolve_observed`])
//! gathers `AgreementValue<V>` clones into a scratch vector and counts
//! them through a `BTreeMap` per vote. For the value domains BYZ
//! actually runs over — `V_d` plus a handful of small integers — that
//! is wildly general. This module interns every store slot into a `u8`
//! *palette code* (`0` is reserved for `V_d`/absent, codes `1..=255`
//! name the distinct proper values in first-seen order) and evaluates
//! `VOTE(α, β)` over codes packed eight-to-a-`u64`, counting a
//! candidate's occurrences with a carry-free SWAR zero-byte detector
//! and a popcount per word.
//!
//! The resolver mirrors the scalar control flow *exactly* — the same
//! per-node uniformity test, the same fast/slow path split, the same
//! opportunistic collapse, the same early-stop frontier handling, the
//! same `eig.resolve_level`/`eig.resolve_chunk` spans and the same
//! counter increments — so a packed run is bit-identical to a scalar
//! run in decisions *and* deterministic [`EigPerf`] counters. Palette
//! coding is injective, `VOTE` depends only on the equality pattern of
//! its inputs, and a tie or no-winner maps to code `0` = `V_d`, so
//! voting over codes and decoding the winner is the same function as
//! voting over values (proptested against the scalar vote in
//! `crates/degradable/tests/arena_props.rs`).
//!
//! [`resolve_packed`] returns `None` — caller falls back to the scalar
//! oracle — when the rule is not [`VoteRule::Degradable`] or the store
//! holds more than 255 distinct proper values.

use crate::eig::VoteRule;
use crate::engine::{prunable_node, ArenaNode, EigEngine, EigStore, EngineRun, PathId};
use crate::value::AgreementValue;
use obs::{Obs, SpanRecord};
use simnet::{EigPerf, NodeId};
use std::collections::BTreeMap;
use std::time::Instant;

/// Per-node packed resolution covering all receivers: the `u8` twin of
/// the scalar resolver's `Summary`.
#[derive(Debug, Clone)]
enum PackedSummary {
    Uniform(u8),
    Per(Box<[u8]>),
}

impl PackedSummary {
    fn value_for(&self, receiver: usize) -> u8 {
        match self {
            PackedSummary::Uniform(c) => *c,
            PackedSummary::Per(codes) => codes[receiver],
        }
    }
}

/// The distinct proper values of one store, in first-seen (BFS slot)
/// order. Code `i + 1` names `values[i]`; code `0` is `V_d`/absent.
struct Palette<V> {
    values: Vec<AgreementValue<V>>,
}

impl<V: Clone + Ord> Palette<V> {
    /// Interns every slot of `store` (arena order), returning the
    /// palette and one `n`-byte code row per arena node, or `None` if
    /// more than 255 distinct proper values appear.
    fn build(engine: &EigEngine, store: &EigStore<V>) -> Option<(Self, Vec<u8>)> {
        let arena = engine.arena();
        let n = arena.n();
        let mut values: Vec<AgreementValue<V>> = Vec::new();
        let mut rows = vec![0u8; arena.node_count() * n];
        for id in arena.ids() {
            for r in 0..n {
                // Absent and V_d both read as code 0 — exactly the
                // scalar resolver's effective-value semantics.
                let Some(v) = store.get(id, NodeId::new(r)) else {
                    continue;
                };
                if *v == AgreementValue::Default {
                    continue;
                }
                // Linear probe: BYZ palettes hold a handful of values,
                // so a scan beats any map here.
                let code = match values.iter().position(|known| known == v) {
                    Some(i) => i + 1,
                    None => {
                        if values.len() >= 255 {
                            return None;
                        }
                        values.push(v.clone());
                        values.len()
                    }
                };
                rows[id.index() * n + r] = code as u8;
            }
        }
        Some((Palette { values }, rows))
    }

    fn decode(&self, code: u8) -> AgreementValue<V> {
        if code == 0 {
            AgreementValue::Default
        } else {
            self.values[code as usize - 1].clone()
        }
    }
}

/// Counts the lanes of `words` (the first `lanes` bytes) equal to
/// `code`: XOR with the splatted code turns matches into zero bytes,
/// and a carry-free SWAR detector marks bit 7 of exactly the zero
/// lanes. The textbook `(x - 0x01..01) & !x & 0x80..80` haszero trick
/// is *not* used because it overcounts — a borrow propagating out of a
/// zero byte marks a following `0x01` byte as zero too.
fn count_eq(words: &[u64], lanes: usize, code: u8) -> u32 {
    const LO7: u64 = 0x7F7F_7F7F_7F7F_7F7F;
    const HI: u64 = 0x8080_8080_8080_8080;
    let splat = u64::from(code) * 0x0101_0101_0101_0101;
    let mut total = 0u32;
    let mut remaining = lanes;
    for &w in words {
        let x = w ^ splat;
        // Bit 7 of `y`'s lane is set iff the low 7 bits of that lane of
        // `x` are nonzero; lanes never carry into each other because
        // both addends have bit 7 clear.
        let y = (x & LO7) + LO7;
        let zero = !(y | x) & HI;
        let live = remaining.min(8);
        let tail = if live == 8 {
            u64::MAX
        } else {
            (1u64 << (live * 8)) - 1
        };
        total += (zero & tail).count_ones();
        remaining -= live;
    }
    total
}

/// Exact `VOTE(alpha, codes.len())` over palette codes: the unique code
/// occurring at least `alpha` times, else `0` (`V_d`), ties `0`.
fn vote_codes(codes: &[u8], alpha: usize) -> u8 {
    debug_assert!(alpha > 0, "vote threshold must be positive");
    let beta = codes.len();
    let mut words = [0u64; 8];
    for (i, &c) in codes.iter().enumerate() {
        words[i / 8] |= u64::from(c) << ((i % 8) * 8);
    }
    let words = &words[..beta.div_ceil(8)];
    if 2 * alpha > beta {
        // `VOTE(n-ℓ-m, n-ℓ)` with `n ≥ 2m + u + 1` always lands here:
        // α = β - m > β/2, so at most one code can reach the threshold
        // — a Boyer–Moore majority scan plus one exact verification
        // count is the whole vote.
        let (mut cand, mut lead) = (0u8, 0usize);
        for &c in codes {
            if lead == 0 {
                (cand, lead) = (c, 1);
            } else if c == cand {
                lead += 1;
            } else {
                lead -= 1;
            }
        }
        if count_eq(words, beta, cand) as usize >= alpha {
            cand
        } else {
            0
        }
    } else {
        // General threshold (kept exact for completeness): count every
        // distinct code, enforcing uniqueness of the winner.
        let mut winner: Option<u8> = None;
        let mut counted = [false; 256];
        for &c in codes {
            if std::mem::replace(&mut counted[c as usize], true) {
                continue;
            }
            if count_eq(words, beta, c) as usize >= alpha {
                if winner.is_some() {
                    return 0;
                }
                winner = Some(c);
            }
        }
        winner.unwrap_or(0)
    }
}

/// `VOTE` over the fast-path multiset `{a} ∪ {v × (receivers - 1)}`:
/// two candidate codes, pure arithmetic, no scan.
fn vote_two(a: u8, v: u8, receivers: usize, alpha: usize) -> u8 {
    if a == v {
        // One distinct code with `receivers ≥ alpha` occurrences.
        return v;
    }
    let v_wins = receivers > alpha;
    let a_wins = alpha <= 1;
    match (v_wins, a_wins) {
        (true, false) => v,
        (false, true) => a,
        // Both reaching the threshold is a tie; neither is no winner.
        _ => 0,
    }
}

/// The packed twin of the scalar `resolve_chunk`: resolves the
/// contiguous id range starting at `first_id` into `out`, reading
/// deeper summaries from `deeper` (global id offset `deeper_offset`).
/// Returns `(votes_evaluated, votes_memo_hit, wall_nanos)`.
#[allow(clippy::too_many_arguments)]
fn resolve_chunk_packed(
    nodes: &[ArenaNode],
    rows: &[u8],
    n: usize,
    m: usize,
    levels_len: usize,
    first_id: u32,
    out: &mut [Option<PackedSummary>],
    deeper: &[Option<PackedSummary>],
    deeper_offset: u32,
    early_stop: Option<u64>,
    timed: bool,
) -> (u64, u64, u64) {
    let chunk_start = if timed { Some(Instant::now()) } else { None };
    let mut votes_evaluated = 0u64;
    let mut votes_memo_hit = 0u64;
    let mut scratch: Vec<u8> = Vec::with_capacity(n);

    for (slot, id) in out.iter_mut().zip(first_id..) {
        let node = &nodes[id as usize];
        let len = node.len as usize;

        // Below the early-stop frontier the row is all-absent and no
        // ancestor reads the summary (downward-closed cut; frontier
        // nodes resolve as leaves): skip the node entirely.
        if node.parent != u32::MAX {
            if let Some(mask) = early_stop {
                if prunable_node(&nodes[node.parent as usize], mask) {
                    continue;
                }
            }
        }

        let row = &rows[id as usize * n..(id as usize + 1) * n];

        let mut first_receiver: Option<usize> = None;
        let mut uniform = true;
        for r in 0..n {
            if node.members >> r & 1 == 1 {
                continue;
            }
            match first_receiver {
                None => first_receiver = Some(r),
                Some(f) => uniform = uniform && row[f] == row[r],
            }
        }

        let frontier = early_stop.is_some_and(|mask| prunable_node(node, mask));
        if node.child_count == 0 || frontier {
            debug_assert!(frontier || len == levels_len);
            *slot = Some(match first_receiver {
                Some(r) if uniform => PackedSummary::Uniform(row[r]),
                Some(_) => PackedSummary::Per(row.to_vec().into_boxed_slice()),
                None => PackedSummary::Uniform(0),
            });
            continue;
        }

        let children = node.first_child..node.first_child + node.child_count;
        let receivers = n - len;
        let alpha = n
            .checked_sub(len + m)
            .expect("BYZ invariant n > path_len + m violated");

        let child_uniform = if uniform {
            let mut shared: Option<u8> = None;
            let mut all = true;
            for c in children.clone() {
                match &deeper[(c - deeper_offset) as usize] {
                    Some(PackedSummary::Uniform(v)) => match shared {
                        None => shared = Some(*v),
                        Some(s) => all = all && s == *v,
                    },
                    _ => {
                        all = false;
                        break;
                    }
                }
            }
            if all {
                shared
            } else {
                None
            }
        } else {
            None
        };

        if let Some(v) = child_uniform {
            let a = row[first_receiver.expect("internal nodes have receivers")];
            let combined = vote_two(a, v, receivers, alpha);
            votes_evaluated += 1;
            votes_memo_hit += receivers as u64 - 1;
            *slot = Some(PackedSummary::Uniform(combined));
            continue;
        }

        let mut per = vec![0u8; n];
        let mut first: Option<usize> = None;
        let mut collapsed = true;
        for r in 0..n {
            if node.members >> r & 1 == 1 {
                continue;
            }
            scratch.clear();
            scratch.push(row[r]);
            for c in children.clone() {
                if nodes[c as usize].last.index() == r {
                    continue;
                }
                let child = deeper[(c - deeper_offset) as usize]
                    .as_ref()
                    .expect("deeper levels resolved first");
                scratch.push(child.value_for(r));
            }
            debug_assert_eq!(scratch.len(), receivers);
            per[r] = vote_codes(&scratch, alpha);
            votes_evaluated += 1;
            match first {
                None => first = Some(r),
                Some(f) => collapsed = collapsed && per[f] == per[r],
            }
        }
        *slot = Some(if collapsed {
            PackedSummary::Uniform(per[first.expect("internal nodes have receivers")])
        } else {
            PackedSummary::Per(per.into_boxed_slice())
        });
    }

    let wall_nanos = chunk_start
        .map(|s| s.elapsed().as_nanos() as u64)
        .unwrap_or(0);
    (votes_evaluated, votes_memo_hit, wall_nanos)
}

/// Packed resolution of a filled store. Returns `None` (no spans
/// recorded, no work observable) when the packed path cannot represent
/// the input — the caller then runs the scalar resolver, which is the
/// semantic oracle.
pub(crate) fn resolve_packed<V: Clone + Ord>(
    engine: &EigEngine,
    rule: VoteRule,
    store: &EigStore<V>,
    obs: &mut Obs,
) -> Option<EngineRun<V>> {
    let VoteRule::Degradable { m } = rule else {
        return None;
    };
    let resolve_start = Instant::now();
    let (palette, rows) = Palette::build(engine, store)?;

    let arena = engine.arena();
    let nodes = arena.nodes_raw();
    let levels = arena.levels_raw();
    let n = arena.n();
    let workers = engine.workers();
    let timed_chunks = obs.is_enabled() && engine.worker_spans_enabled();
    let early = engine.early_stop_mask();

    let mut summaries: Vec<Option<PackedSummary>> = vec![None; arena.node_count()];
    let mut votes_evaluated = 0u64;
    let mut votes_memo_hit = 0u64;

    for level in (0..levels.len()).rev() {
        let range = levels[level].clone();
        let count = (range.end - range.start) as usize;
        let level_timer = obs.span(
            "eig.resolve_level",
            vec![("level", level as u64), ("width", count as u64)],
        );
        let (head, deeper) = summaries.split_at_mut(range.end as usize);
        let level_slice = &mut head[range.start as usize..];
        let deeper_offset = range.end;
        let chunk_len = count.div_ceil(workers).max(1);
        let chunk_stats: Vec<(u64, u64, u64)> = if workers <= 1 || count <= chunk_len {
            vec![resolve_chunk_packed(
                nodes,
                &rows,
                n,
                m,
                levels.len(),
                range.start,
                level_slice,
                &*deeper,
                deeper_offset,
                early,
                timed_chunks,
            )]
        } else {
            let deeper_ref: &[Option<PackedSummary>] = deeper;
            let rows_ref: &[u8] = &rows;
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (i, chunk) in level_slice.chunks_mut(chunk_len).enumerate() {
                    let first_id = range.start + (i * chunk_len) as u32;
                    handles.push(scope.spawn(move || {
                        resolve_chunk_packed(
                            nodes,
                            rows_ref,
                            n,
                            m,
                            levels.len(),
                            first_id,
                            chunk,
                            deeper_ref,
                            deeper_offset,
                            early,
                            timed_chunks,
                        )
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("packed resolver thread panicked"))
                    .collect::<Vec<_>>()
            })
        };
        let mut level_votes = 0u64;
        for (chunk, &(e, h, wall_nanos)) in chunk_stats.iter().enumerate() {
            votes_evaluated += e;
            votes_memo_hit += h;
            level_votes += e + h;
            if timed_chunks {
                obs.record_span(SpanRecord {
                    name: "eig.resolve_chunk".to_string(),
                    args: vec![
                        ("level".to_string(), level as u64),
                        ("chunk".to_string(), chunk as u64),
                    ],
                    logical: e + h,
                    wall_nanos,
                });
            }
        }
        obs.finish(level_timer, level_votes);
    }

    let root = summaries[0]
        .as_ref()
        .expect("root summary resolved by the last pass");
    let mut decisions = BTreeMap::new();
    for r in NodeId::all(n) {
        if r == arena.sender() {
            continue;
        }
        decisions.insert(r, palette.decode(root.value_for(r.index())));
    }

    let (subtrees_pruned, messages_saved) = engine.prune_counters();
    let perf = EigPerf {
        arena_nodes: arena.node_count() as u64,
        votes_evaluated,
        votes_memo_hit,
        messages_materialized: store.materialized(),
        subtrees_pruned,
        messages_saved,
        fill_nanos: 0,
        resolve_nanos: resolve_start.elapsed().as_nanos() as u64,
    };
    if let Some(registry) = obs.registry_mut() {
        perf.fold_into(registry);
    }
    Some(EngineRun { decisions, perf })
}

/// `PathId` is unused here only under `--no-default-features` shapes;
/// keep the import honest.
#[allow(unused)]
fn _assert_types(p: PathId) -> usize {
    p.index()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Val;

    fn codes_to_vals(codes: &[u8]) -> Vec<Val> {
        codes
            .iter()
            .map(|&c| {
                if c == 0 {
                    Val::Default
                } else {
                    Val::Value(u64::from(c))
                }
            })
            .collect()
    }

    /// `vote_codes` against the scalar `vote` over directed corner
    /// cases; the broad randomized sweep lives in
    /// `crates/degradable/tests/arena_props.rs`.
    #[test]
    fn vote_codes_matches_scalar_vote() {
        let cases: Vec<(Vec<u8>, usize)> = vec![
            (vec![1, 2, 2, 3], 2),
            (vec![1, 2, 0, 3], 2),
            (vec![1, 2, 2, 1], 2),
            (vec![0, 0, 1], 2),
            (vec![0; 17], 9),
            (vec![5; 8], 8),
            (vec![5; 9], 9),
            (vec![1], 1),
            (vec![0], 1),
        ];
        for (codes, alpha) in cases {
            let scalar = crate::vote::vote(alpha, &codes_to_vals(&codes));
            let packed = vote_codes(&codes, alpha);
            let packed_val = if packed == 0 {
                Val::Default
            } else {
                Val::Value(u64::from(packed))
            };
            assert_eq!(packed_val, scalar, "codes={codes:?} alpha={alpha}");
        }
    }

    /// The borrow-propagation case the textbook haszero trick gets
    /// wrong: a `0x01` byte right after a zero byte must not count.
    #[test]
    fn count_eq_is_borrow_safe() {
        // Lanes [0x00, 0x01, ...] with code 0: exactly one zero byte.
        let word = 0x0000_0000_0000_0100u64;
        assert_eq!(count_eq(&[word], 8, 0), 7);
        assert_eq!(count_eq(&[word], 2, 0), 1);
        assert_eq!(count_eq(&[word], 2, 1), 1);
        // Full-width and tail-masked counts of a repeated code.
        let word = 0x0707_0707_0707_0707u64;
        assert_eq!(count_eq(&[word], 8, 7), 8);
        assert_eq!(count_eq(&[word], 3, 7), 3);
        assert_eq!(count_eq(&[word, word], 11, 7), 11);
    }

    #[test]
    fn vote_two_covers_the_fast_path_table() {
        // a == v: unanimous.
        assert_eq!(vote_two(4, 4, 6, 4), 4);
        // v reaches alpha, a does not.
        assert_eq!(vote_two(1, 4, 6, 4), 4);
        // Neither reaches alpha.
        assert_eq!(vote_two(1, 4, 3, 3), 0);
        // alpha == 1 and two distinct codes: tie.
        assert_eq!(vote_two(1, 4, 6, 1), 0);
    }
}
