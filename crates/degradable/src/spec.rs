//! Executable abstract specification of algorithm BYZ(m, u).
//!
//! The implementation in [`crate::node`] and [`crate::protocol`] is
//! optimized machinery — buffered inboxes, arena-interned paths, memoized
//! folds. This module is the *referee*: a compact state machine written
//! straight from the paper's text, deliberately sharing no code with the
//! executors it judges. [`SpecChecker`] replays one execution —
//! delivery by delivery, round close by round close, decision by
//! decision — and reports every place the observed behaviour departs from
//! what BYZ permits:
//!
//! * **per-node phase** — rounds close in order `0..=m+1`, never skipped
//!   or repeated, with the paper's absence detection closing each one;
//! * **expected relay sets** — an honest node that records an on-time
//!   envelope for path `p` in round `r < depth` must, at the close of
//!   round `r`, relay `p·me` to *exactly* the receivers not on `p·me`,
//!   with the recorded value unchanged; the sender must open the run by
//!   broadcasting the root claim; nothing else may be sent;
//! * **the legal decision function** — at the final close each honest
//!   receiver must decide the recursive `VOTE(n−ℓ−m, n−ℓ)` fold of its
//!   recorded observations (re-derived here with an independent recursive
//!   fold over a plain map — no arena, no memoization).
//!
//! Faulty nodes are unconstrained (their sends are ignored and their
//! decisions unchecked); honest nodes are held to the letter of the
//! algorithm. The conformance fuzzer (`harness::fuzz`) drives randomized
//! executions through [`crate::NodeStateMachine`] with this checker
//! attached and shrinks any violation to a minimal repro.

use crate::path::Path;
use crate::protocol::ByzMsg;
use crate::value::AgreementValue;
use crate::vote::vote;
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::hash::Hash;

/// Static shape of the execution being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecInstance {
    /// Total number of nodes.
    pub n: usize,
    /// Strong fault threshold `m` (the fold subtracts it at every level).
    pub m: usize,
    /// The designated sender.
    pub sender: NodeId,
    /// EIG tree depth (`m + 1` rounds of relaying).
    pub depth: usize,
}

impl SpecInstance {
    /// The spec shape of a [`crate::ByzInstance`].
    pub fn of(instance: &crate::byz::ByzInstance) -> Self {
        SpecInstance {
            n: instance.n(),
            m: instance.params().m(),
            sender: instance.sender(),
            depth: instance.depth(),
        }
    }
}

/// How the spec classifies one delivered envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryClass {
    /// Level matches the closing round: record, and (below the final
    /// round) the receiver owes a relay at this close.
    OnTime,
    /// Level below the closing round: the relay slot has passed, but the
    /// direct observation still folds in. Never relayed.
    Late,
    /// Malformed (impersonated, self-referential, future-levelled, not
    /// sender-rooted, repetitive, or past the tree depth): reads as
    /// absent.
    Malformed,
    /// A repeat of an already-recorded path: discarded by the idempotent
    /// first-write-wins fold.
    Duplicate,
}

/// One conformance violation: a place the implementation departed from
/// the abstract machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecViolation {
    /// An honest node sent an envelope the spec did not expect at this
    /// close (wrong path, wrong value, wrong receiver, or no relay owed).
    UnexpectedRelay {
        /// The offending node.
        node: NodeId,
        /// The round whose close emitted it.
        round: usize,
        /// The addressee.
        to: NodeId,
        /// The relay path sent.
        path: Path,
    },
    /// An honest node failed to send a relay the spec requires.
    MissingRelay {
        /// The silent node.
        node: NodeId,
        /// The round whose close owed it.
        round: usize,
        /// The addressee that never heard it.
        to: NodeId,
        /// The owed relay path.
        path: Path,
    },
    /// An honest receiver's final decision differs from the legal
    /// decision function over its recorded observations.
    WrongDecision {
        /// The deciding node.
        node: NodeId,
        /// What the implementation decided (`None` = never decided).
        got: Option<String>,
        /// What the spec fold requires.
        expected: String,
    },
    /// An honest node's final view differs from the spec's record of what
    /// was legally delivered to it.
    ViewDivergence {
        /// The node whose views differ.
        node: NodeId,
        /// The first path attributed differently.
        path: Path,
        /// The implementation's attribution (`None` = absent).
        got: Option<String>,
        /// The spec's attribution (`None` = absent).
        expected: Option<String>,
    },
    /// A round closed out of order (skipped or repeated).
    PhaseSkew {
        /// The node whose phase is off.
        node: NodeId,
        /// The round the close claimed.
        got: usize,
        /// The round the spec expected to close next.
        expected: usize,
    },
}

impl fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecViolation::UnexpectedRelay {
                node,
                round,
                to,
                path,
            } => write!(
                f,
                "node {node} sent an unexpected relay {path} to {to} at the close of round {round}"
            ),
            SpecViolation::MissingRelay {
                node,
                round,
                to,
                path,
            } => write!(
                f,
                "node {node} failed to relay {path} to {to} at the close of round {round}"
            ),
            SpecViolation::WrongDecision {
                node,
                got,
                expected,
            } => write!(
                f,
                "node {node} decided {} but the spec fold requires {expected}",
                got.as_deref().unwrap_or("nothing")
            ),
            SpecViolation::ViewDivergence {
                node,
                path,
                got,
                expected,
            } => write!(
                f,
                "node {node} attributes {} to path {path}, spec says {}",
                got.as_deref().unwrap_or("absent"),
                expected.as_deref().unwrap_or("absent")
            ),
            SpecViolation::PhaseSkew {
                node,
                got,
                expected,
            } => write!(
                f,
                "node {node} closed round {got} but the spec expects round {expected}"
            ),
        }
    }
}

/// Per-node abstract state: phase, recorded observations, and the relays
/// owed at the current close.
#[derive(Debug, Clone)]
struct SpecNode<V> {
    /// Next round this node's close must claim.
    phase: usize,
    /// Recorded observations: first write per path wins.
    view: BTreeMap<Path, AgreementValue<V>>,
    /// Relays owed at the close of the *current* phase: fresh on-time
    /// paths recorded this round, with their recorded values.
    owed: Vec<(Path, AgreementValue<V>)>,
}

/// The conformance checker: `n` abstract node states advanced in lockstep
/// with the implementation under test.
///
/// Call [`SpecChecker::deliver`] for every envelope handed to an honest
/// node, [`SpecChecker::close_round`] with the sends each close actually
/// emitted, [`SpecChecker::decide`] for each decision, and finally
/// [`SpecChecker::check_view`] against each honest node's materialized
/// view. Violations accumulate in [`SpecChecker::violations`].
#[derive(Debug, Clone)]
pub struct SpecChecker<V> {
    inst: SpecInstance,
    faulty: BTreeSet<NodeId>,
    nodes: Vec<SpecNode<V>>,
    sender_value: AgreementValue<V>,
    violations: Vec<SpecViolation>,
    early_stop: bool,
}

impl<V: Clone + Ord + Hash + fmt::Display> SpecChecker<V> {
    /// A fresh checker for `inst` where `faulty` nodes are unconstrained
    /// and the sender (if honest) must open with `sender_value`.
    pub fn new(
        inst: SpecInstance,
        sender_value: AgreementValue<V>,
        faulty: BTreeSet<NodeId>,
    ) -> Self {
        SpecChecker {
            inst,
            faulty,
            nodes: (0..inst.n)
                .map(|_| SpecNode {
                    phase: 0,
                    view: BTreeMap::new(),
                    owed: Vec::new(),
                })
                .collect(),
            sender_value,
            violations: Vec::new(),
            early_stop: false,
        }
    }

    /// Judges an execution whose honest nodes run certified-fault-set
    /// early stopping (DESIGN.md §5h): a relay below a *prunable* path —
    /// `last(p)` outside the checker's fault set and every fault already
    /// on `p` — is legally omitted rather than owed, and the legal
    /// decision function stops its recursion at exactly those paths,
    /// reading the direct observation. The checker's fault set must be
    /// the one the implementation was armed with.
    pub fn with_early_stop(mut self) -> Self {
        self.early_stop = true;
        self
    }

    /// The prune criterion, restated from DESIGN.md §5h independently of
    /// `crate::eig` (this module shares no code with the machinery it
    /// judges).
    fn prunable(&self, path: &Path) -> bool {
        !self.faulty.contains(&path.last()) && self.faulty.iter().all(|f| path.contains(*f))
    }

    /// Whether `node` is held to the spec.
    pub fn is_honest(&self, node: NodeId) -> bool {
        !self.faulty.contains(&node)
    }

    /// All violations recorded so far, in discovery order.
    pub fn violations(&self) -> &[SpecViolation] {
        &self.violations
    }

    /// The first violation, if any — the fuzzer's divergence point.
    pub fn first_violation(&self) -> Option<&SpecViolation> {
        self.violations.first()
    }

    /// The spec's classification of an envelope delivered to `to` that
    /// will fold at the close of round `round` — exactly the paper's
    /// validation, restated (compare `crate::node::NodeStateMachine`).
    pub fn classify(
        &self,
        to: NodeId,
        src: NodeId,
        msg: &ByzMsg<V>,
        round: usize,
    ) -> DeliveryClass {
        let path = &msg.path;
        let well_formed = !path.is_empty()
            && path.len() <= round
            && path.len() <= self.inst.depth
            && path.last() == src
            && !path.contains(to)
            && path.sender() == self.inst.sender
            && repetition_free(path);
        if !well_formed {
            return DeliveryClass::Malformed;
        }
        if self.nodes[to.index()].view.contains_key(path) {
            return DeliveryClass::Duplicate;
        }
        if path.len() == round {
            DeliveryClass::OnTime
        } else {
            DeliveryClass::Late
        }
    }

    /// Feeds one delivery to honest node `to`, folding at the close of
    /// `round`, and returns its classification. Faulty recipients are
    /// ignored (returns the classification without recording).
    pub fn deliver(
        &mut self,
        to: NodeId,
        src: NodeId,
        msg: &ByzMsg<V>,
        round: usize,
    ) -> DeliveryClass {
        let class = self.classify(to, src, msg, round);
        if !self.is_honest(to) {
            return class;
        }
        match class {
            DeliveryClass::Malformed | DeliveryClass::Duplicate => {}
            DeliveryClass::OnTime => {
                // Under early stopping, a fresh on-time envelope for a
                // prunable path is recorded but owes no relay: the
                // subtree below it fills uniformly by construction, so
                // the spec permits (indeed requires) its omission.
                let owes =
                    round < self.inst.depth && !(self.early_stop && self.prunable(&msg.path));
                let node = &mut self.nodes[to.index()];
                node.view.insert(msg.path.clone(), msg.value.clone());
                if owes {
                    node.owed.push((msg.path.clone(), msg.value.clone()));
                }
            }
            DeliveryClass::Late => {
                let node = &mut self.nodes[to.index()];
                node.view.insert(msg.path.clone(), msg.value.clone());
            }
        }
        class
    }

    /// The exact set of envelopes honest `node` must emit at the close of
    /// `round`: the root broadcast (round 0, sender only) or one child
    /// relay per owed path per eligible receiver.
    fn expected_sends(&self, node: NodeId, round: usize) -> Vec<(NodeId, ByzMsg<V>)> {
        let mut out = Vec::new();
        if round == 0 {
            if node == self.inst.sender {
                let root = Path::root(node);
                for r in NodeId::all(self.inst.n) {
                    if r != node {
                        out.push((
                            r,
                            ByzMsg {
                                path: root.clone(),
                                value: self.sender_value.clone(),
                            },
                        ));
                    }
                }
            }
            return out;
        }
        for (path, value) in &self.nodes[node.index()].owed {
            let child = path.child(node);
            for r in NodeId::all(self.inst.n) {
                if child.contains(r) {
                    continue;
                }
                out.push((
                    r,
                    ByzMsg {
                        path: child.clone(),
                        value: value.clone(),
                    },
                ));
            }
        }
        out
    }

    /// Checks the close of `round` on `node` against the spec: the sends
    /// actually emitted must equal the expected relay set exactly. Advances
    /// the node's phase. Faulty nodes advance without checks.
    pub fn close_round(&mut self, node: NodeId, round: usize, sends: &[(NodeId, ByzMsg<V>)]) {
        let expected_phase = self.nodes[node.index()].phase;
        if round != expected_phase {
            self.violations.push(SpecViolation::PhaseSkew {
                node,
                got: round,
                expected: expected_phase,
            });
        }
        self.nodes[node.index()].phase = round + 1;
        if !self.is_honest(node) {
            self.nodes[node.index()].owed.clear();
            return;
        }
        let expected = self.expected_sends(node, round);
        // Multiset diff: every expected send must appear, nothing extra.
        let mut unmatched: Vec<&(NodeId, ByzMsg<V>)> = expected.iter().collect();
        for actual in sends {
            if let Some(pos) = unmatched.iter().position(|e| *e == actual) {
                unmatched.swap_remove(pos);
            } else {
                self.violations.push(SpecViolation::UnexpectedRelay {
                    node,
                    round,
                    to: actual.0,
                    path: actual.1.path.clone(),
                });
            }
        }
        for (to, msg) in unmatched {
            self.violations.push(SpecViolation::MissingRelay {
                node,
                round,
                to: *to,
                path: msg.path.clone(),
            });
        }
        self.nodes[node.index()].owed.clear();
    }

    /// The legal decision for honest receiver `node`: the recursive
    /// `VOTE(n−ℓ−m, n−ℓ)` fold of its recorded observations, re-derived
    /// independently of `crate::eig`.
    pub fn legal_decision(&self, node: NodeId) -> AgreementValue<V> {
        self.fold(node, &Path::root(self.inst.sender))
    }

    fn fold(&self, node: NodeId, path: &Path) -> AgreementValue<V> {
        let seen = self.nodes[node.index()]
            .view
            .get(path)
            .cloned()
            .unwrap_or_default();
        if path.len() >= self.inst.depth || (self.early_stop && self.prunable(path)) {
            return seen;
        }
        let mut gathered = vec![seen];
        for next in NodeId::all(self.inst.n) {
            if next != node && !path.contains(next) {
                gathered.push(self.fold(node, &path.child(next)));
            }
        }
        let alpha = self.inst.n - path.len() - self.inst.m;
        vote(alpha, &gathered)
    }

    /// Checks honest receiver `node`'s final decision against the legal
    /// decision function. The sender never decides; faulty nodes are
    /// unchecked.
    pub fn decide(&mut self, node: NodeId, decided: Option<&AgreementValue<V>>) {
        if !self.is_honest(node) || node == self.inst.sender {
            return;
        }
        let expected = self.legal_decision(node);
        if decided != Some(&expected) {
            self.violations.push(SpecViolation::WrongDecision {
                node,
                got: decided.map(|v| v.to_string()),
                expected: expected.to_string(),
            });
        }
    }

    /// Compares honest `node`'s materialized view (path → value entries)
    /// against the spec's record, flagging the first divergent path.
    pub fn check_view<'a>(
        &mut self,
        node: NodeId,
        entries: impl Iterator<Item = (&'a Path, &'a AgreementValue<V>)>,
    ) where
        V: 'a,
    {
        if !self.is_honest(node) {
            return;
        }
        let got: BTreeMap<&Path, &AgreementValue<V>> = entries.collect();
        let spec = &self.nodes[node.index()].view;
        for (path, expected) in spec {
            match got.get(path) {
                Some(v) if **v == *expected => {}
                other => {
                    self.violations.push(SpecViolation::ViewDivergence {
                        node,
                        path: path.clone(),
                        got: other.map(|v| v.to_string()),
                        expected: Some(expected.to_string()),
                    });
                    return;
                }
            }
        }
        for (path, v) in got {
            if !spec.contains_key(path) {
                self.violations.push(SpecViolation::ViewDivergence {
                    node,
                    path: path.clone(),
                    got: Some(v.to_string()),
                    expected: None,
                });
                return;
            }
        }
    }
}

/// Whether no node appears twice on `path` (restated from the paper's
/// repetition-free relay labels; deliberately not shared with
/// `crate::node`).
fn repetition_free(path: &Path) -> bool {
    let s = path.as_slice();
    s.iter()
        .enumerate()
        .all(|(i, a)| s[i + 1..].iter().all(|b| a != b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byz::ByzInstance;
    use crate::node::{Action, Event, NodeStateMachine};
    use crate::params::Params;
    use crate::value::Val;

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn spec_inst(n: usize, m: usize, u: usize) -> (ByzInstance, SpecInstance) {
        let inst = ByzInstance::new(n, Params::new(m, u).unwrap(), nid(0)).unwrap();
        let spec = SpecInstance::of(&inst);
        (inst, spec)
    }

    /// Drives honest machines in lockstep with the checker attached; the
    /// extraction must be violation-free.
    fn drive_checked(
        n: usize,
        m: usize,
        u: usize,
        value: u64,
        mutate: impl Fn(NodeId, usize, &mut Vec<(NodeId, ByzMsg<u64>)>),
    ) -> SpecChecker<u64> {
        drive_checked_with(n, m, u, value, false, false, mutate)
    }

    /// `drive_checked` with independent early-stop knobs for the
    /// machines and the checker (conformance needs both or neither).
    fn drive_checked_with(
        n: usize,
        m: usize,
        u: usize,
        value: u64,
        machines_early: bool,
        checker_early: bool,
        mutate: impl Fn(NodeId, usize, &mut Vec<(NodeId, ByzMsg<u64>)>),
    ) -> SpecChecker<u64> {
        let (inst, spec) = spec_inst(n, m, u);
        let mut checker = SpecChecker::new(spec, Val::Value(value), BTreeSet::new());
        if checker_early {
            checker = checker.with_early_stop();
        }
        let mut machines: Vec<NodeStateMachine<u64>> = (0..n)
            .map(|i| {
                let machine = NodeStateMachine::new(&inst, nid(i), Val::Value(value), None);
                if machines_early {
                    machine.with_early_stop(&BTreeSet::new())
                } else {
                    machine
                }
            })
            .collect();
        let mut mailboxes: Vec<Vec<(NodeId, ByzMsg<u64>)>> = vec![Vec::new(); n];
        for round in 0..=inst.depth() {
            for i in 0..n {
                for (src, msg) in std::mem::take(&mut mailboxes[i]) {
                    checker.deliver(nid(i), src, &msg, round);
                    machines[i].on_event(Event::Deliver { src, msg });
                }
            }
            let mut outgoing: Vec<(NodeId, NodeId, ByzMsg<u64>)> = Vec::new();
            for (i, machine) in machines.iter_mut().enumerate() {
                let mut sends = Vec::new();
                let mut decided = None;
                for action in machine.on_event(Event::Timeout { round }) {
                    match action {
                        Action::Send { to, msg } => sends.push((to, msg)),
                        Action::Decide { value } => decided = Some(value),
                    }
                }
                mutate(nid(i), round, &mut sends);
                checker.close_round(nid(i), round, &sends);
                for (to, msg) in sends {
                    outgoing.push((nid(i), to, msg));
                }
                if round == inst.depth() {
                    checker.decide(nid(i), decided.as_ref());
                }
            }
            for (src, to, msg) in outgoing {
                mailboxes[to.index()].push((src, msg));
            }
        }
        for (i, machine) in machines.iter().enumerate() {
            checker.check_view(nid(i), machine.view().entries());
        }
        checker
    }

    #[test]
    fn honest_execution_is_conformant() {
        for (n, m, u) in [(4, 1, 1), (5, 1, 2), (7, 2, 2)] {
            let checker = drive_checked(n, m, u, 42, |_, _, _| {});
            assert_eq!(checker.violations(), &[], "N={n} m={m} u={u}");
        }
    }

    #[test]
    fn early_stopped_execution_is_conformant_under_armed_checker() {
        // Machines that legally prune relays pass an early-stop-aware
        // checker with zero violations.
        for (n, m, u) in [(4, 1, 1), (5, 1, 2), (7, 2, 2)] {
            let checker = drive_checked_with(n, m, u, 42, true, true, |_, _, _| {});
            assert_eq!(checker.violations(), &[], "N={n} m={m} u={u}");
        }
    }

    #[test]
    fn pruned_relays_violate_the_strict_spec() {
        // Sanity for the gate above: the same pruned execution judged by
        // a strict (non-early-stop) checker is flagged as missing relays
        // — the armed checker genuinely relaxes the relay obligation,
        // not the whole check.
        let checker = drive_checked_with(5, 1, 2, 42, true, false, |_, _, _| {});
        assert!(
            checker
                .violations()
                .iter()
                .any(|v| matches!(v, SpecViolation::MissingRelay { .. })),
            "{:?}",
            checker.violations()
        );
    }

    #[test]
    fn armed_checker_still_requires_the_frontier_relays() {
        // Early stopping only excuses relays *below* prunable paths;
        // dropping a frontier relay is still a violation.
        let checker = drive_checked_with(5, 1, 2, 42, false, true, |node, round, sends| {
            if node == nid(0) && round == 0 {
                sends.clear();
            }
        });
        assert!(
            checker
                .violations()
                .iter()
                .any(|v| matches!(v, SpecViolation::MissingRelay { node, .. } if *node == nid(0))),
            "{:?}",
            checker.violations()
        );
    }

    #[test]
    fn suppressed_relay_is_caught() {
        // Node 2 drops all its round-1 relays: the spec must flag every
        // missing send, and downstream decisions stay legal (the fold is
        // over what was actually recorded).
        let checker = drive_checked(5, 1, 2, 7, |node, round, sends| {
            if node == nid(2) && round == 1 {
                sends.clear();
            }
        });
        assert!(
            checker
                .violations()
                .iter()
                .any(|v| matches!(v, SpecViolation::MissingRelay { node, .. } if *node == nid(2))),
            "{:?}",
            checker.violations()
        );
    }

    #[test]
    fn corrupted_relay_value_is_caught() {
        // An "honest" node whose relays garble the value is out of spec.
        let checker = drive_checked(5, 1, 2, 7, |node, round, sends| {
            if node == nid(3) && round == 1 {
                for (_, msg) in sends.iter_mut() {
                    msg.value = Val::Value(99);
                }
            }
        });
        assert!(
            checker.violations().iter().any(
                |v| matches!(v, SpecViolation::UnexpectedRelay { node, .. } if *node == nid(3))
            ),
            "{:?}",
            checker.violations()
        );
    }

    #[test]
    fn legal_decision_matches_reference_fold() {
        // The spec's independent fold and EigView::resolve must agree on
        // every receiver of a fault-free run.
        let (inst, spec) = spec_inst(5, 1, 2);
        let checker = drive_checked(5, 1, 2, 42, |_, _, _| {});
        let run = crate::protocol::run_protocol(&inst, &Val::Value(42), &BTreeMap::new(), 1);
        for (r, d) in &run.decisions {
            assert_eq!(checker.legal_decision(*r), *d, "receiver {r}");
        }
        assert_eq!(spec.depth, inst.depth());
    }

    #[test]
    fn faulty_nodes_are_unconstrained() {
        // Declare node 2 faulty and let it garble everything: no
        // violations may be attributed to it, and honest nodes stay clean
        // (their folds legally absorb the garbage).
        let (inst, spec) = spec_inst(5, 1, 2);
        let mut checker = SpecChecker::new(spec, Val::Value(7), [nid(2)].into_iter().collect());
        let mut machines: Vec<NodeStateMachine<u64>> = (0..5)
            .map(|i| {
                let strategy =
                    (i == 2).then_some(crate::adversary::Strategy::ConstantLie(Val::Value(9)));
                NodeStateMachine::new(&inst, nid(i), Val::Value(7), strategy)
            })
            .collect();
        let mut mailboxes: Vec<Vec<(NodeId, ByzMsg<u64>)>> = vec![Vec::new(); 5];
        for round in 0..=inst.depth() {
            for i in 0..5 {
                for (src, msg) in std::mem::take(&mut mailboxes[i]) {
                    checker.deliver(nid(i), src, &msg, round);
                    machines[i].on_event(Event::Deliver { src, msg });
                }
            }
            let mut outgoing = Vec::new();
            for (i, machine) in machines.iter_mut().enumerate() {
                let mut sends = Vec::new();
                let mut decided = None;
                for action in machine.on_event(Event::Timeout { round }) {
                    match action {
                        Action::Send { to, msg } => sends.push((to, msg)),
                        Action::Decide { value } => decided = Some(value),
                    }
                }
                checker.close_round(nid(i), round, &sends);
                for (to, msg) in sends {
                    outgoing.push((nid(i), to, msg));
                }
                if round == inst.depth() {
                    checker.decide(nid(i), decided.as_ref());
                }
            }
            for (src, to, msg) in outgoing {
                mailboxes[to.index()].push((src, msg));
            }
        }
        assert_eq!(checker.violations(), &[]);
    }

    #[test]
    fn malformed_and_duplicate_classification() {
        let (_, spec) = spec_inst(5, 1, 2);
        let mut checker: SpecChecker<u64> = SpecChecker::new(spec, Val::Value(7), BTreeSet::new());
        let root = Path::root(nid(0));
        let msg = ByzMsg {
            path: root.clone(),
            value: Val::Value(7),
        };
        // Impersonation: src ≠ path.last().
        assert_eq!(
            checker.deliver(nid(1), nid(2), &msg, 1),
            DeliveryClass::Malformed
        );
        // Future level: level-1 path at round 0.
        assert_eq!(
            checker.deliver(nid(1), nid(0), &msg, 0),
            DeliveryClass::Malformed
        );
        assert_eq!(
            checker.deliver(nid(1), nid(0), &msg, 1),
            DeliveryClass::OnTime
        );
        assert_eq!(
            checker.deliver(nid(1), nid(0), &msg, 1),
            DeliveryClass::Duplicate
        );
        // Level-1 path folding at round 2: late.
        let mut other: SpecChecker<u64> = SpecChecker::new(spec, Val::Value(7), BTreeSet::new());
        assert_eq!(other.deliver(nid(1), nid(0), &msg, 2), DeliveryClass::Late);
    }
}
