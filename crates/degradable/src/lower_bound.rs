//! The Figure 2 lower-bound scenarios (Theorem 2).
//!
//! Theorem 2: `m/u`-degradable agreement is impossible with `N <= 2m + u`
//! nodes. The proof (Part I, for 1/2-degradable agreement on 4 nodes
//! S, A, B, C) builds three fault scenarios and chains two
//! indistinguishability arguments:
//!
//! * **(a)** A faulty; sender fault-free with value β; A pretends the
//!   sender said α.  D.1 forces B and C to decide β.
//! * **(b)** S faulty; sends α to A and β to B and C.  B's view is
//!   identical to its view in (a), so B decides β; D.2 then forces A and C
//!   to decide β as well.
//! * **(c)** B and C faulty; sender fault-free with value α; B and C
//!   pretend the sender said β.  A's view is identical to its view in (b),
//!   so A decides β — but D.3 allows only α or `V_d`. Contradiction.
//!
//! An impossibility cannot be "executed", but its *mechanism* can: this
//! module runs the three scenarios against algorithm BYZ at `N = 4` and
//! checks programmatically that (i) the claimed views coincide
//! ([`crate::eig::EigView::same_observations`]) and (ii) scenario (c) violates
//! D.3 — the contradiction the proof derives. Part II (general `m`, `u`)
//! is covered by [`violation_below_bound`], which exhibits a concrete
//! adversary breaking BYZ at `N = 2m + u` for any valid `(m, u)`.

use crate::adversary::{AdversaryRun, Strategy};
use crate::byz::ByzInstance;
use crate::conditions::{check_degradable, Verdict};
use crate::eig::EigOutcome;
use crate::params::Params;
use crate::value::Val;
use simnet::NodeId;
use std::collections::BTreeMap;

/// Node names of the 4-node argument.
const S: NodeId = NodeId::new(0);
/// Node A.
const A: NodeId = NodeId::new(1);
/// Node B.
const B: NodeId = NodeId::new(2);
/// Node C.
const C: NodeId = NodeId::new(3);

/// The two distinct non-default values of the argument.
pub const ALPHA: Val = Val::Value(1);
/// See [`ALPHA`].
pub const BETA: Val = Val::Value(2);

/// One of the three Figure 2 scenarios, executed.
#[derive(Debug, Clone)]
pub struct Fig2Run {
    /// "(a)", "(b)" or "(c)".
    pub label: &'static str,
    /// Human-readable description of the fault configuration.
    pub description: String,
    /// The executed scenario's record + views.
    pub outcome: EigOutcome<u64>,
    /// The verdict of the applicable degradable condition.
    pub verdict: Verdict<u64>,
}

/// Runs the three scenarios of Figure 2 on the 4-node system with
/// 1/2-degradable parameters (below the `2m+u+1 = 5` bound).
pub fn figure2_runs() -> Vec<Fig2Run> {
    let params = Params::new(1, 2).expect("1 <= 2");
    let inst = ByzInstance::new_below_bound(4, params, S).expect("sender in range");

    let run = |label: &'static str,
               description: String,
               sender_value: Val,
               strategies: BTreeMap<NodeId, Strategy<u64>>| {
        let sc = AdversaryRun {
            instance: inst,
            sender_value,
            strategies,
        };
        let (record, outcome) = sc.run_full();
        Fig2Run {
            label,
            description,
            outcome,
            verdict: check_degradable(&record),
        }
    };

    let a = run(
        "(a)",
        format!("A faulty; sender sends {BETA}; A pretends it received {ALPHA}"),
        BETA,
        [(A, Strategy::PretendSenderSaid(ALPHA))]
            .into_iter()
            .collect(),
    );
    let b = run(
        "(b)",
        format!("S faulty; sends {ALPHA} to A and {BETA} to B, C"),
        BETA, // nominal; the strategy overrides per receiver
        [(
            S,
            Strategy::TargetedSplit {
                group: [A].into_iter().collect(),
                in_value: ALPHA,
                out_value: BETA,
            },
        )]
        .into_iter()
        .collect(),
    );
    let c = run(
        "(c)",
        format!("B, C faulty; sender sends {ALPHA}; B and C pretend they received {BETA}"),
        ALPHA,
        [
            (B, Strategy::PretendSenderSaid(BETA)),
            (C, Strategy::PretendSenderSaid(BETA)),
        ]
        .into_iter()
        .collect(),
    );
    vec![a, b, c]
}

/// The full Figure 2 demonstration, with the two indistinguishability
/// checks and the final contradiction, as booleans experiments can assert
/// on and print.
#[derive(Debug, Clone)]
pub struct Fig2Demonstration {
    /// The three executed scenarios.
    pub runs: Vec<Fig2Run>,
    /// B's view in (a) equals B's view in (b).
    pub b_cannot_distinguish_a_b: bool,
    /// A's view in (b) equals A's view in (c).
    pub a_cannot_distinguish_b_c: bool,
    /// A's decision in scenario (c).
    pub a_decision_in_c: Val,
    /// Scenario (c) violates D.3 (the contradiction).
    pub c_violates_d3: bool,
}

/// Executes and audits the complete Figure 2 argument.
pub fn demonstrate_figure2() -> Fig2Demonstration {
    let runs = figure2_runs();
    let b_views = (
        runs[0].outcome.views.get(&B).expect("B is a receiver"),
        runs[1].outcome.views.get(&B).expect("B is a receiver"),
    );
    let a_views = (
        runs[1].outcome.views.get(&A).expect("A is a receiver"),
        runs[2].outcome.views.get(&A).expect("A is a receiver"),
    );
    let b_cannot_distinguish_a_b = b_views.0.same_observations(b_views.1);
    let a_cannot_distinguish_b_c = a_views.0.same_observations(a_views.1);
    let a_decision_in_c = runs[2].outcome.decisions[&A];
    let c_violates_d3 = runs[2].verdict.is_violated();
    Fig2Demonstration {
        runs,
        b_cannot_distinguish_a_b,
        a_cannot_distinguish_b_c,
        a_decision_in_c,
        c_violates_d3,
    }
}

/// For any valid `(m, u)` with `u >= m >= 1`, exhibits a concrete adversary
/// that makes BYZ violate degradable agreement on `N = 2m + u` nodes (one
/// node below the Theorem 2 bound): `u` colluding receivers that lie `BETA`
/// everywhere while the fault-free sender sends `ALPHA`.
///
/// Returns the verdict of that run — violated for every valid `(m, u)` with
/// `m >= 1` (the experiments assert this).
///
/// **The `m = 0` edge case.** The paper's Part II proof simulates the
/// 4-node argument with groups of sizes `m, m, m, u-m`; for `m = 0` the
/// first three groups are empty and the argument degenerates. Indeed our
/// reconstructed `m = 0` protocol (echo + unanimity vote) satisfies
/// D.1–D.4 at any `N >= 2`: a fault-free receiver decides a non-default
/// value only when its entire view is unanimous, which pins that value to
/// every fault-free node's sender-receipt. The Theorem 2 bound is
/// therefore only exercised for `m >= 1`, matching the paper's table
/// (whose rows start at `m = 1`).
pub fn violation_below_bound(m: usize, u: usize) -> Verdict<u64> {
    let params = Params::new(m, u).expect("u >= m required");
    let n = 2 * m + u; // one below the bound
    let inst = ByzInstance::new_below_bound(n, params, S).expect("sender in range");
    // The u highest-numbered receivers collude.
    let strategies: BTreeMap<NodeId, Strategy<u64>> = (n - u..n)
        .map(|i| (NodeId::new(i), Strategy::ConstantLie(BETA)))
        .collect();
    AdversaryRun {
        instance: inst,
        sender_value: ALPHA,
        strategies,
    }
    .verdict()
}

/// Control for [`violation_below_bound`]: the same adversary at
/// `N = 2m + u + 1` (exactly the bound) must be harmless.
pub fn same_adversary_at_bound(m: usize, u: usize) -> Verdict<u64> {
    let params = Params::new(m, u).expect("u >= m required");
    let n = params.min_nodes();
    let inst = ByzInstance::new(n, params, S).expect("at the bound");
    let strategies: BTreeMap<NodeId, Strategy<u64>> = (n - u..n)
        .map(|i| (NodeId::new(i), Strategy::ConstantLie(BETA)))
        .collect();
    AdversaryRun {
        instance: inst,
        sender_value: ALPHA,
        strategies,
    }
    .verdict()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::{Condition, Satisfaction};

    #[test]
    fn scenario_a_satisfies_d1() {
        let runs = figure2_runs();
        match &runs[0].verdict {
            Verdict::Satisfied(Satisfaction { condition, .. }) => {
                assert_eq!(*condition, Condition::D1);
            }
            other => panic!("scenario (a) should satisfy D.1 even at N=4: {other:?}"),
        }
        // B and C decide the sender's value BETA.
        assert_eq!(runs[0].outcome.decisions[&B], BETA);
        assert_eq!(runs[0].outcome.decisions[&C], BETA);
    }

    #[test]
    fn scenario_b_all_agree_beta() {
        let runs = figure2_runs();
        for r in [A, B, C] {
            assert_eq!(runs[1].outcome.decisions[&r], BETA, "receiver {r}");
        }
        assert!(runs[1].verdict.is_satisfied());
    }

    #[test]
    fn indistinguishability_holds() {
        let demo = demonstrate_figure2();
        assert!(
            demo.b_cannot_distinguish_a_b,
            "B must not distinguish (a)/(b)"
        );
        assert!(
            demo.a_cannot_distinguish_b_c,
            "A must not distinguish (b)/(c)"
        );
    }

    #[test]
    fn scenario_c_contradiction() {
        let demo = demonstrate_figure2();
        assert_eq!(demo.a_decision_in_c, BETA, "A is forced to BETA");
        assert!(demo.c_violates_d3, "BETA is neither ALPHA nor V_d");
    }

    #[test]
    fn below_bound_violations_for_many_params() {
        for (m, u) in [(1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (3, 3)] {
            let v = violation_below_bound(m, u);
            assert!(
                v.is_violated(),
                "expected violation at N=2m+u for (m,u)=({m},{u}); got {v:?}"
            );
        }
    }

    #[test]
    fn same_adversary_harmless_at_bound() {
        for (m, u) in [(1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (0, 2), (0, 4)] {
            let v = same_adversary_at_bound(m, u);
            assert!(
                v.is_satisfied(),
                "Theorem 1 guarantees satisfaction at N=2m+u+1 for ({m},{u}): {v:?}"
            );
        }
    }

    #[test]
    fn m0_reconstruction_survives_below_bound() {
        // Documented anomaly: the Part II group simulation needs m >= 1,
        // and the echo-unanimity m = 0 protocol satisfies the conditions
        // even below 2m+u+1 (see module docs). Verify non-vacuously on
        // N = u = 3 with one lying receiver (receiver 2 stays fault-free).
        let inst =
            ByzInstance::new_below_bound(3, Params::new(0, 3).expect("valid"), S).expect("ok");
        let sc = AdversaryRun {
            instance: inst,
            sender_value: ALPHA,
            strategies: [(NodeId::new(1), Strategy::ConstantLie(BETA))]
                .into_iter()
                .collect(),
        };
        let v = sc.verdict();
        assert!(
            v.is_satisfied(),
            "m = 0 echo protocol unexpectedly violated below the bound: {v:?}"
        );
    }
}
