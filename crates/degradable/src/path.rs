//! Relay paths of the exponential-information-gathering (EIG) unfolding of
//! algorithm BYZ.
//!
//! The recursive algorithm BYZ(t, m) is executed in message-passing form by
//! tagging every message with the chain of nodes that relayed it: the value
//! the sender `s` sent is tagged `[s]`; the copy receiver `i` relays in the
//! next round is tagged `[s, i]`, and so on. A tag is called a [`Path`];
//! all elements are distinct (a node never relays a value it already
//! relayed) and the first element is always the original sender.
//!
//! A path of length `ℓ` identifies the sub-instance BYZ(t, m) with
//! `t = m - ℓ + 1` running on the `n - ℓ + 1` nodes not in the path's
//! interior, whose "sender" is the path's last element.

use serde::{Deserialize, Serialize};
use simnet::NodeId;
use std::fmt;

/// A relay path: a non-empty sequence of distinct node ids starting with
/// the original sender.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Path(Vec<NodeId>);

impl Path {
    /// The root path `[sender]`.
    pub fn root(sender: NodeId) -> Self {
        Path(vec![sender])
    }

    /// Extends the path with relayer `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` already occurs in the path (a node never re-relays).
    #[must_use]
    pub fn child(&self, j: NodeId) -> Self {
        assert!(!self.contains(j), "node {j} already on path {self}");
        let mut v = self.0.clone();
        v.push(j);
        Path(v)
    }

    /// Number of nodes on the path (`>= 1`).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Paths are never empty; provided for clippy-compliant API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The original sender (first element).
    pub fn sender(&self) -> NodeId {
        self.0[0]
    }

    /// The most recent relayer (last element) — the "sender" of the
    /// sub-instance this path identifies.
    pub fn last(&self) -> NodeId {
        *self.0.last().expect("paths are non-empty")
    }

    /// Whether `node` occurs anywhere on the path.
    pub fn contains(&self, node: NodeId) -> bool {
        self.0.contains(&node)
    }

    /// The node ids on the path, in relay order.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.0
    }

    /// All extensions of this path by one relayer, drawn from a system of
    /// `n` nodes (every node not already on the path).
    pub fn children(&self, n: usize) -> Vec<Path> {
        NodeId::all(n)
            .filter(|j| !self.contains(*j))
            .map(|j| self.child(j))
            .collect()
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Enumerates all paths of exactly `len` nodes rooted at `sender` in a
/// system of `n` nodes, in lexicographic order.
pub fn paths_of_length(sender: NodeId, n: usize, len: usize) -> Vec<Path> {
    assert!(len >= 1, "paths have at least the sender on them");
    let mut level = vec![Path::root(sender)];
    for _ in 1..len {
        let mut next = Vec::new();
        for p in &level {
            next.extend(p.children(n));
        }
        level = next;
    }
    level
}

/// Number of paths of exactly `len` nodes in a system of `n` nodes:
/// `(n-1)(n-2)…(n-len+1)`, and zero once `len > n` (paths never repeat a
/// node, so the falling factorial bottoms out rather than underflowing —
/// BYZ depths of `m + 1 > n` arise legitimately at tiny `n`).
pub fn path_count(n: usize, len: usize) -> u128 {
    assert!(len >= 1);
    let mut count: u128 = 1;
    for j in 1..len {
        count *= n.saturating_sub(j) as u128;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn root_and_child() {
        let p = Path::root(n(0)).child(n(2));
        assert_eq!(p.len(), 2);
        assert_eq!(p.sender(), n(0));
        assert_eq!(p.last(), n(2));
        assert!(p.contains(n(0)) && p.contains(n(2)) && !p.contains(n(1)));
    }

    #[test]
    #[should_panic(expected = "already on path")]
    fn no_repeat_relayers() {
        let _ = Path::root(n(0)).child(n(1)).child(n(1));
    }

    #[test]
    fn children_excludes_path_members() {
        let p = Path::root(n(0)).child(n(1));
        let kids = p.children(4);
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0].last(), n(2));
        assert_eq!(kids[1].last(), n(3));
    }

    #[test]
    fn enumeration_matches_count() {
        for nn in 2..7 {
            for len in 1..=3.min(nn) {
                let paths = paths_of_length(n(0), nn, len);
                assert_eq!(paths.len() as u128, path_count(nn, len), "n={nn} len={len}");
                // all distinct
                let set: std::collections::BTreeSet<_> = paths.iter().collect();
                assert_eq!(set.len(), paths.len());
            }
        }
    }

    #[test]
    fn count_formula() {
        assert_eq!(path_count(5, 1), 1);
        assert_eq!(path_count(5, 2), 4);
        assert_eq!(path_count(5, 3), 12);
        assert_eq!(path_count(7, 3), 30);
    }

    #[test]
    fn display_format() {
        let p = Path::root(n(0)).child(n(3));
        assert_eq!(p.to_string(), "[n0,n3]");
    }
}
