//! Byzantine adversary strategies and strategy search.
//!
//! The paper's fault model lets a faulty node behave arbitrarily. In the
//! oral-message setting, a deterministic adversary is fully described by a
//! table: for every relay path ending in a faulty node and every receiver,
//! the value claimed. This module provides:
//!
//! * a battery of named [`Strategy`] generators (lies constant, two-faced,
//!   path-dependent, pseudo-random, silent, …) used by the experiment
//!   sweeps;
//! * [`AdversaryRun`] — an instance + sender value + per-node strategies,
//!   runnable to a [`RunRecord`] for condition checking;
//! * [`ExhaustiveSearch`] — enumeration of **every** deterministic
//!   adversary over a finite value domain, feasible for small systems; this
//!   is what certifies the `2m+u+1` node threshold empirically (violations
//!   exist at `2m+u`, none at `2m+u+1` within the searched space);
//! * [`RandomizedSearch`] — seeded random adversaries for systems too large
//!   to enumerate.

use crate::byz::ByzInstance;
use crate::conditions::{check_degradable, RunRecord, Verdict, Violation};
use crate::eig::EigOutcome;
use crate::path::{paths_of_length, Path};
use crate::value::{AgreementValue, Val};
use simnet::{NodeId, SimRng};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

/// A named misbehaviour pattern for one faulty node.
///
/// Strategies are deterministic functions of `(path, receiver)` — even the
/// "random" one, which derives its choice from a seeded hash so that runs
/// are reproducible and a node's lie is stable if queried twice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy<V> {
    /// Behaves exactly like a fault-free node (a faulty node may do so).
    Truthful,
    /// Never sends; every receiver observes absence (`V_d`).
    Silent,
    /// Claims the same wrong value everywhere.
    ConstantLie(AgreementValue<V>),
    /// Claims `even` to even-indexed receivers and `odd` to the rest — the
    /// classic two-faced sender.
    TwoFaced {
        /// Value told to even-indexed receivers.
        even: AgreementValue<V>,
        /// Value told to odd-indexed receivers.
        odd: AgreementValue<V>,
    },
    /// Claims `in_value` to the given group and `out_value` to everyone
    /// else — the targeted split used by the Figure 2 scenario (b).
    TargetedSplit {
        /// Receivers told `in_value`.
        group: BTreeSet<NodeId>,
        /// Value told to the group.
        in_value: AgreementValue<V>,
        /// Value told to everyone else.
        out_value: AgreementValue<V>,
    },
    /// Honest everywhere except the direct relay of the sender's value
    /// (path `[s, me]`), where it claims `claim` — "pretends the sender
    /// said `claim`", as the faulty nodes of Figure 2 scenarios (a)/(c) do.
    PretendSenderSaid(AgreementValue<V>),
    /// Lies only on paths of even length, truthfully relays otherwise —
    /// probes the recursion's level structure.
    AlternatingDepth(AgreementValue<V>),
    /// Pseudo-random choice from `domain` per `(path, receiver)`, derived
    /// from `seed` (deterministic and reproducible).
    RandomLie {
        /// Candidate values (may include `V_d`).
        domain: Vec<AgreementValue<V>>,
        /// Hash seed.
        seed: u64,
    },
}

impl<V: Clone + Hash> Strategy<V> {
    /// The value this strategy claims for `path` addressed to `receiver`,
    /// given the value an honest node would have relayed.
    pub fn claim(
        &self,
        path: &Path,
        receiver: NodeId,
        truthful: &AgreementValue<V>,
    ) -> AgreementValue<V> {
        match self {
            Strategy::Truthful => truthful.clone(),
            Strategy::Silent => AgreementValue::Default,
            Strategy::ConstantLie(v) => v.clone(),
            Strategy::TwoFaced { even, odd } => {
                if receiver.index().is_multiple_of(2) {
                    even.clone()
                } else {
                    odd.clone()
                }
            }
            Strategy::TargetedSplit {
                group,
                in_value,
                out_value,
            } => {
                if group.contains(&receiver) {
                    in_value.clone()
                } else {
                    out_value.clone()
                }
            }
            Strategy::PretendSenderSaid(claim) => {
                if path.len() == 2 {
                    claim.clone()
                } else {
                    truthful.clone()
                }
            }
            Strategy::AlternatingDepth(lie) => {
                if path.len().is_multiple_of(2) {
                    lie.clone()
                } else {
                    truthful.clone()
                }
            }
            Strategy::RandomLie { domain, seed } => {
                if domain.is_empty() {
                    return AgreementValue::Default;
                }
                let mut h = DefaultHasher::new();
                seed.hash(&mut h);
                path.as_slice().hash(&mut h);
                receiver.hash(&mut h);
                domain[(h.finish() % domain.len() as u64) as usize].clone()
            }
        }
    }
}

impl Strategy<u64> {
    /// A representative battery of strategies over two wrong values, used
    /// by the experiment sweeps. `seed` parameterizes the random member.
    pub fn battery(alpha: u64, beta: u64, seed: u64) -> Vec<(&'static str, Strategy<u64>)> {
        vec![
            ("silent", Strategy::Silent),
            ("constant-lie", Strategy::ConstantLie(Val::Value(beta))),
            (
                "two-faced",
                Strategy::TwoFaced {
                    even: Val::Value(alpha),
                    odd: Val::Value(beta),
                },
            ),
            (
                "pretend-sender-said",
                Strategy::PretendSenderSaid(Val::Value(beta)),
            ),
            (
                "alternating-depth",
                Strategy::AlternatingDepth(Val::Value(beta)),
            ),
            (
                "random-lie",
                Strategy::RandomLie {
                    domain: vec![Val::Default, Val::Value(alpha), Val::Value(beta)],
                    seed,
                },
            ),
        ]
    }
}

/// One fully specified execution: instance, sender value, and the strategy
/// of every faulty node.
#[derive(Debug, Clone)]
pub struct AdversaryRun<V> {
    /// The protocol instance.
    pub instance: ByzInstance,
    /// The sender's (nominal) value.
    pub sender_value: AgreementValue<V>,
    /// Strategy per faulty node; the key set *is* the fault set.
    pub strategies: BTreeMap<NodeId, Strategy<V>>,
}

impl<V: Clone + Ord + Hash + Send + Sync> AdversaryRun<V> {
    /// The fault set.
    pub fn faulty(&self) -> BTreeSet<NodeId> {
        self.strategies.keys().copied().collect()
    }

    /// Runs the scenario through the arena-backed engine (decisions are
    /// bit-identical to the reference executor, without materializing
    /// per-receiver views) and packages the result for condition
    /// checking.
    pub fn run(&self) -> RunRecord<V> {
        self.run_on(&self.instance.engine())
    }

    /// Like [`AdversaryRun::run`] with a caller-provided engine, so
    /// sweeps over one instance shape reuse the interned arena.
    pub fn run_on(&self, engine: &crate::engine::EigEngine) -> RunRecord<V> {
        let faulty = self.faulty();
        let strategies = &self.strategies;
        let mut fabricate = |path: &Path, receiver: NodeId, truthful: &AgreementValue<V>| {
            let liar = path.last();
            strategies
                .get(&liar)
                .expect("fabricate only called for faulty relayers")
                .claim(path, receiver, truthful)
        };
        let run = engine.run(
            self.instance.rule(),
            &self.sender_value,
            &faulty,
            &mut fabricate,
        );
        RunRecord {
            params: self.instance.params(),
            n: self.instance.n(),
            sender: self.instance.sender(),
            sender_value: self.sender_value.clone(),
            faulty,
            decisions: run.decisions,
        }
    }

    /// Like [`AdversaryRun::run`] but also returns every receiver's full view
    /// (for indistinguishability experiments).
    pub fn run_full(&self) -> (RunRecord<V>, EigOutcome<V>) {
        let faulty = self.faulty();
        let strategies = self.strategies.clone();
        let mut fabricate = |path: &Path, receiver: NodeId, truthful: &AgreementValue<V>| {
            let liar = path.last();
            strategies
                .get(&liar)
                .expect("fabricate only called for faulty relayers")
                .claim(path, receiver, truthful)
        };
        let outcome = crate::eig::run_eig_full(
            self.instance.n(),
            self.instance.sender(),
            self.instance.depth(),
            self.instance.rule(),
            &self.sender_value,
            &faulty,
            &mut fabricate,
        );
        let record = RunRecord {
            params: self.instance.params(),
            n: self.instance.n(),
            sender: self.instance.sender(),
            sender_value: self.sender_value.clone(),
            faulty,
            decisions: outcome.decisions.clone(),
        };
        (record, outcome)
    }

    /// Convenience: run and check the applicable degradable condition.
    pub fn verdict(&self) -> Verdict<V> {
        check_degradable(&self.run())
    }
}

/// A found violation together with the adversary table that produced it.
#[derive(Debug, Clone)]
pub struct ViolationWitness {
    /// The adversary's claim table: value per (path, receiver).
    pub assignment: BTreeMap<(Path, NodeId), Val>,
    /// The offending execution.
    pub record: RunRecord<u64>,
    /// Which condition broke, and how.
    pub violation: Violation<u64>,
}

/// All (path, receiver) choice points available to an adversary controlling
/// `faulty` in the given instance — every `(σ, r)` pair where the last
/// node of σ is faulty and `r` is an off-path receiver. Public so
/// differential suites (`tests/engine_equivalence.rs`) can enumerate the
/// exact adversary space `certify` explores.
pub fn choice_points(instance: &ByzInstance, faulty: &BTreeSet<NodeId>) -> Vec<(Path, NodeId)> {
    let n = instance.n();
    let mut points = Vec::new();
    for level in 1..=instance.depth() {
        for path in paths_of_length(instance.sender(), n, level) {
            if !faulty.contains(&path.last()) {
                continue;
            }
            for r in NodeId::all(n) {
                if !path.contains(r) {
                    points.push((path.clone(), r));
                }
            }
        }
    }
    points
}

/// Exhaustive enumeration of every deterministic adversary over a finite
/// value domain, for one instance, sender value and fault set.
#[derive(Debug, Clone)]
pub struct ExhaustiveSearch {
    instance: ByzInstance,
    sender_value: Val,
    faulty: BTreeSet<NodeId>,
    domain: Vec<Val>,
    max_combinations: u128,
}

/// Error starting an exhaustive search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The space `domain^points` exceeds the configured budget.
    TooLarge {
        /// Number of adversary choice points.
        points: usize,
        /// Domain size.
        domain: usize,
        /// Configured budget.
        budget: u128,
    },
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SearchError::TooLarge {
                points,
                domain,
                budget,
            } => write!(
                f,
                "search space {domain}^{points} exceeds budget {budget}; use RandomizedSearch"
            ),
        }
    }
}

impl std::error::Error for SearchError {}

impl ExhaustiveSearch {
    /// Configures a search. `domain` should include `V_d` and at least two
    /// distinct proper values.
    pub fn new(
        instance: ByzInstance,
        sender_value: Val,
        faulty: BTreeSet<NodeId>,
        domain: Vec<Val>,
    ) -> Self {
        ExhaustiveSearch {
            instance,
            sender_value,
            faulty,
            domain,
            max_combinations: 20_000_000,
        }
    }

    /// Overrides the combination budget.
    #[must_use]
    pub fn with_budget(mut self, max_combinations: u128) -> Self {
        self.max_combinations = max_combinations;
        self
    }

    /// Number of adversary choice points for this configuration.
    pub fn point_count(&self) -> usize {
        choice_points(&self.instance, &self.faulty).len()
    }

    /// Size of the full search space (`domain ^ points`).
    pub fn combination_count(&self) -> u128 {
        (self.domain.len() as u128)
            .checked_pow(self.point_count() as u32)
            .unwrap_or(u128::MAX)
    }

    /// Runs the full enumeration; returns the first violating adversary, or
    /// `None` if every deterministic adversary over the domain satisfies
    /// the applicable condition.
    ///
    /// # Errors
    ///
    /// [`SearchError::TooLarge`] if the space exceeds the budget.
    pub fn find_violation(&self) -> Result<Option<ViolationWitness>, SearchError> {
        let points = choice_points(&self.instance, &self.faulty);
        let d = self.domain.len();
        let total = self.combination_count();
        if total > self.max_combinations {
            return Err(SearchError::TooLarge {
                points: points.len(),
                domain: d,
                budget: self.max_combinations,
            });
        }
        let engine = self.instance.engine();
        if d == 0 || points.is_empty() {
            // No adversary freedom: single honest-shaped run.
            let verdict = self.run_assignment(&engine, &points, &[])?;
            return Ok(verdict);
        }
        let mut odometer = vec![0usize; points.len()];
        loop {
            if let Some(w) = self.run_assignment(&engine, &points, &odometer)? {
                return Ok(Some(w));
            }
            // increment odometer
            let mut i = 0;
            loop {
                if i == odometer.len() {
                    return Ok(None);
                }
                odometer[i] += 1;
                if odometer[i] < d {
                    break;
                }
                odometer[i] = 0;
                i += 1;
            }
        }
    }

    fn run_assignment(
        &self,
        engine: &crate::engine::EigEngine,
        points: &[(Path, NodeId)],
        odometer: &[usize],
    ) -> Result<Option<ViolationWitness>, SearchError> {
        let table: BTreeMap<(Path, NodeId), Val> = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                (
                    p.clone(),
                    self.domain[odometer.get(i).copied().unwrap_or(0)],
                )
            })
            .collect();
        let mut fabricate = |path: &Path, r: NodeId, _t: &Val| {
            table
                .get(&(path.clone(), r))
                .copied()
                .unwrap_or(AgreementValue::Default)
        };
        let decisions = engine
            .run(
                self.instance.rule(),
                &self.sender_value,
                &self.faulty,
                &mut fabricate,
            )
            .decisions;
        let record = RunRecord {
            params: self.instance.params(),
            n: self.instance.n(),
            sender: self.instance.sender(),
            sender_value: self.sender_value,
            faulty: self.faulty.clone(),
            decisions,
        };
        match check_degradable(&record) {
            Verdict::Violated(violation) => Ok(Some(ViolationWitness {
                assignment: table,
                record,
                violation,
            })),
            _ => Ok(None),
        }
    }
}

/// Seeded random adversaries for instances too large to enumerate.
#[derive(Debug, Clone)]
pub struct RandomizedSearch {
    instance: ByzInstance,
    sender_value: Val,
    domain: Vec<Val>,
    trials: usize,
    seed: u64,
}

impl RandomizedSearch {
    /// Configures a randomized search over all fault sets of size
    /// `f` drawn at random each trial.
    pub fn new(instance: ByzInstance, sender_value: Val, domain: Vec<Val>) -> Self {
        RandomizedSearch {
            instance,
            sender_value,
            domain,
            trials: 1000,
            seed: 0xDE6_12AD,
        }
    }

    /// Sets the number of trials.
    #[must_use]
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs `trials` random adversaries with `f` faulty nodes each
    /// (random fault set, random claim table). Returns the first violation
    /// found, if any, and the number of trials executed.
    pub fn find_violation(&self, f: usize) -> (Option<ViolationWitness>, usize) {
        let n = self.instance.n();
        let engine = self.instance.engine();
        let rng = SimRng::seed(self.seed);
        for trial in 0..self.trials {
            let mut trial_rng = rng.fork(trial as u64);
            // Random fault set of size f (the sender participates randomly).
            let faulty: BTreeSet<NodeId> = trial_rng
                .choose_indices(n, f.min(n))
                .into_iter()
                .map(NodeId::new)
                .collect();
            let points = choice_points(&self.instance, &faulty);
            let table: BTreeMap<(Path, NodeId), Val> = points
                .into_iter()
                .map(|p| {
                    let v = *trial_rng
                        .pick(&self.domain)
                        .unwrap_or(&AgreementValue::Default);
                    (p, v)
                })
                .collect();
            let mut fabricate = |path: &Path, r: NodeId, _t: &Val| {
                table
                    .get(&(path.clone(), r))
                    .copied()
                    .unwrap_or(AgreementValue::Default)
            };
            let decisions = engine
                .run(
                    self.instance.rule(),
                    &self.sender_value,
                    &faulty,
                    &mut fabricate,
                )
                .decisions;
            let record = RunRecord {
                params: self.instance.params(),
                n,
                sender: self.instance.sender(),
                sender_value: self.sender_value,
                faulty: faulty.clone(),
                decisions,
            };
            if let Verdict::Violated(violation) = check_degradable(&record) {
                return (
                    Some(ViolationWitness {
                        assignment: table,
                        record,
                        violation,
                    }),
                    trial + 1,
                );
            }
        }
        (None, self.trials)
    }
}

/// Pressure toward a violation: `u64::MAX` for an actual violation,
/// otherwise a monotone score counting how far the fault-free receivers
/// have been pushed away from clean agreement (used by
/// [`HillClimbSearch`]).
fn violation_pressure(record: &RunRecord<u64>) -> u64 {
    match check_degradable(record) {
        Verdict::Violated(_) => return u64::MAX,
        Verdict::BeyondU { .. } => return 0,
        Verdict::Satisfied(_) => {}
    }
    let decisions = record.fault_free_decisions();
    let mut distinct: BTreeSet<&Val> = BTreeSet::new();
    let mut defaults = 0u64;
    let mut off_sender = 0u64;
    for v in decisions.values() {
        distinct.insert(v);
        if v.is_default() {
            defaults += 1;
        }
        if *v != record.sender_value {
            off_sender += 1;
        }
    }
    distinct.len() as u64 * 100 + off_sender * 10 + defaults
}

/// Coordinate-ascent adversary search: starts from random claim tables and
/// greedily flips single `(path, receiver)` entries toward higher
/// violation-pressure score (a monotone count of how far receivers were
/// pushed from clean agreement; violations score maximal), with sideways
/// moves. Finds structured breaks (e.g. the coordinated constant lie at
/// `N = 2m+u`) that blind randomization misses, at a fraction of the cost
/// of exhaustive enumeration.
#[derive(Debug, Clone)]
pub struct HillClimbSearch {
    instance: ByzInstance,
    sender_value: Val,
    faulty: BTreeSet<NodeId>,
    domain: Vec<Val>,
    restarts: usize,
    max_passes: usize,
    seed: u64,
}

impl HillClimbSearch {
    /// Configures a search for one instance, sender value and fault set.
    pub fn new(
        instance: ByzInstance,
        sender_value: Val,
        faulty: BTreeSet<NodeId>,
        domain: Vec<Val>,
    ) -> Self {
        HillClimbSearch {
            instance,
            sender_value,
            faulty,
            domain,
            restarts: 8,
            max_passes: 12,
            seed: 0xC11B,
        }
    }

    /// Sets the number of random restarts.
    #[must_use]
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn evaluate(
        &self,
        engine: &crate::engine::EigEngine,
        table: &BTreeMap<(Path, NodeId), Val>,
    ) -> (u64, RunRecord<u64>) {
        let mut fabricate = |path: &Path, r: NodeId, _t: &Val| {
            table
                .get(&(path.clone(), r))
                .copied()
                .unwrap_or(AgreementValue::Default)
        };
        let decisions = engine
            .run(
                self.instance.rule(),
                &self.sender_value,
                &self.faulty,
                &mut fabricate,
            )
            .decisions;
        let record = RunRecord {
            params: self.instance.params(),
            n: self.instance.n(),
            sender: self.instance.sender(),
            sender_value: self.sender_value,
            faulty: self.faulty.clone(),
            decisions,
        };
        (violation_pressure(&record), record)
    }

    /// Runs the search; returns the first violating adversary found.
    pub fn find_violation(&self) -> Option<ViolationWitness> {
        let points = choice_points(&self.instance, &self.faulty);
        if points.is_empty() || self.domain.is_empty() {
            return None;
        }
        let engine = self.instance.engine();
        let rng = SimRng::seed(self.seed);
        for restart in 0..self.restarts {
            let mut restart_rng = rng.fork(restart as u64);
            let mut table: BTreeMap<(Path, NodeId), Val> = points
                .iter()
                .map(|p| {
                    (
                        p.clone(),
                        *restart_rng.pick(&self.domain).expect("non-empty domain"),
                    )
                })
                .collect();
            let (mut best, record) = self.evaluate(&engine, &table);
            if best == u64::MAX {
                let violation = match check_degradable(&record) {
                    Verdict::Violated(v) => v,
                    _ => unreachable!("pressure MAX implies violation"),
                };
                return Some(ViolationWitness {
                    assignment: table,
                    record,
                    violation,
                });
            }
            for _pass in 0..self.max_passes {
                let mut improved = false;
                for point in &points {
                    let original = table[point];
                    let mut best_val = original;
                    for &candidate in &self.domain {
                        if candidate == original {
                            continue;
                        }
                        table.insert(point.clone(), candidate);
                        let (score, record) = self.evaluate(&engine, &table);
                        if score == u64::MAX {
                            let violation = match check_degradable(&record) {
                                Verdict::Violated(v) => v,
                                _ => unreachable!(),
                            };
                            return Some(ViolationWitness {
                                assignment: table,
                                record,
                                violation,
                            });
                        }
                        let sideways = score == best && restart_rng.chance(0.3);
                        if score > best || sideways {
                            best = score;
                            best_val = candidate;
                            if score > best {
                                improved = true;
                            }
                        }
                    }
                    if best_val != original {
                        improved = true;
                    }
                    table.insert(point.clone(), best_val);
                }
                if !improved {
                    break;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn instance(nodes: usize, m: usize, u: usize) -> ByzInstance {
        ByzInstance::new(nodes, Params::new(m, u).unwrap(), n(0)).unwrap()
    }

    #[test]
    fn strategy_claims() {
        let p = Path::root(n(0)).child(n(1));
        let truth = Val::Value(7);
        assert_eq!(Strategy::Truthful.claim(&p, n(2), &truth), truth);
        assert_eq!(Strategy::Silent.claim(&p, n(2), &truth), Val::Default);
        assert_eq!(
            Strategy::ConstantLie(Val::Value(9)).claim(&p, n(2), &truth),
            Val::Value(9)
        );
        let tf = Strategy::TwoFaced {
            even: Val::Value(1),
            odd: Val::Value(2),
        };
        assert_eq!(tf.claim(&p, n(2), &truth), Val::Value(1));
        assert_eq!(tf.claim(&p, n(3), &truth), Val::Value(2));
    }

    #[test]
    fn pretend_sender_said_only_lies_at_level_two() {
        let s = Strategy::PretendSenderSaid(Val::Value(9));
        let truth = Val::Value(7);
        let level2 = Path::root(n(0)).child(n(1));
        let level3 = level2.child(n(2));
        assert_eq!(s.claim(&level2, n(3), &truth), Val::Value(9));
        assert_eq!(s.claim(&level3, n(3), &truth), truth);
    }

    #[test]
    fn random_lie_is_deterministic() {
        let s = Strategy::RandomLie {
            domain: vec![Val::Value(1), Val::Value(2), Val::Default],
            seed: 5,
        };
        let p = Path::root(n(0)).child(n(1));
        let a = s.claim(&p, n(2), &Val::Value(0));
        let b = s.claim(&p, n(2), &Val::Value(0));
        assert_eq!(a, b);
    }

    #[test]
    fn scenario_verdict_satisfied_at_bound() {
        // 5 nodes, 1/2: two colluding constant liars cannot break D.3.
        let sc = AdversaryRun {
            instance: instance(5, 1, 2),
            sender_value: Val::Value(1),
            strategies: [
                (n(3), Strategy::ConstantLie(Val::Value(2))),
                (n(4), Strategy::ConstantLie(Val::Value(2))),
            ]
            .into_iter()
            .collect(),
        };
        assert!(sc.verdict().is_satisfied());
    }

    #[test]
    fn constant_lie_breaks_below_bound() {
        // 4 nodes, 1/2 (below the 2m+u+1 = 5 bound): the paper's Figure 2
        // scenario (c) — two liars force receiver 1 to a foreign value.
        let inst = ByzInstance::new_below_bound(4, Params::new(1, 2).unwrap(), n(0)).unwrap();
        let sc = AdversaryRun {
            instance: inst,
            sender_value: Val::Value(1),
            strategies: [
                (n(2), Strategy::ConstantLie(Val::Value(2))),
                (n(3), Strategy::ConstantLie(Val::Value(2))),
            ]
            .into_iter()
            .collect(),
        };
        assert!(sc.verdict().is_violated());
    }

    #[test]
    fn exhaustive_search_finds_violation_below_bound() {
        let inst = ByzInstance::new_below_bound(4, Params::new(1, 2).unwrap(), n(0)).unwrap();
        let search = ExhaustiveSearch::new(
            inst,
            Val::Value(1),
            [n(2), n(3)].into_iter().collect(),
            vec![Val::Default, Val::Value(1), Val::Value(2)],
        );
        let witness = search.find_violation().unwrap();
        assert!(witness.is_some(), "a violating adversary must exist at N=4");
    }

    #[test]
    fn exhaustive_search_clean_at_bound_small() {
        // 5 nodes, 1/2, faulty receivers {3,4}: no deterministic adversary
        // over {V_d, 1, 2} can violate D.3. 3^6 = 729 combos... points:
        // paths [0,3],[0,4] x 3 receivers each = 6 points.
        let search = ExhaustiveSearch::new(
            instance(5, 1, 2),
            Val::Value(1),
            [n(3), n(4)].into_iter().collect(),
            vec![Val::Default, Val::Value(1), Val::Value(2)],
        );
        assert_eq!(search.point_count(), 6);
        assert!(search.find_violation().unwrap().is_none());
    }

    #[test]
    fn search_budget_enforced() {
        let search = ExhaustiveSearch::new(
            instance(7, 2, 2),
            Val::Value(1),
            [n(5), n(6)].into_iter().collect(),
            vec![Val::Default, Val::Value(1), Val::Value(2)],
        )
        .with_budget(1000);
        assert!(matches!(
            search.find_violation(),
            Err(SearchError::TooLarge { .. })
        ));
    }

    #[test]
    fn randomized_search_clean_at_bound() {
        let rs = RandomizedSearch::new(
            instance(7, 2, 2),
            Val::Value(1),
            vec![Val::Default, Val::Value(1), Val::Value(2)],
        )
        .with_trials(150);
        let (witness, trials) = rs.find_violation(2);
        assert!(witness.is_none(), "Theorem 1 violated by random adversary");
        assert_eq!(trials, 150);
    }

    #[test]
    fn randomized_search_finds_violation_below_bound() {
        // 1/2-degradable needs 5 nodes; run on 4 — random adversaries
        // stumble on the Figure 2 break quickly. (For larger m the break is
        // structured and found by `lower_bound::violation_below_bound`,
        // not by blind randomization.)
        let inst = ByzInstance::new_below_bound(4, Params::new(1, 2).unwrap(), n(0)).unwrap();
        let rs = RandomizedSearch::new(
            inst,
            Val::Value(1),
            vec![Val::Default, Val::Value(1), Val::Value(2)],
        )
        .with_trials(500);
        let (witness, _) = rs.find_violation(2);
        assert!(
            witness.is_some(),
            "expected some random adversary to break BYZ below the node bound"
        );
    }

    #[test]
    fn hillclimb_finds_structured_break_below_bound() {
        // m=2, u=3 at N = 2m+u = 7: blind randomization (500 trials)
        // misses this break; coordinate ascent finds it.
        let inst = ByzInstance::new_below_bound(7, Params::new(2, 3).unwrap(), n(0)).unwrap();
        let faulty: BTreeSet<NodeId> = [n(4), n(5), n(6)].into_iter().collect();
        let search = HillClimbSearch::new(
            inst,
            Val::Value(1),
            faulty,
            vec![Val::Default, Val::Value(1), Val::Value(2)],
        );
        let witness = search.find_violation();
        assert!(witness.is_some(), "hill climb should find the N=2m+u break");
    }

    #[test]
    fn hillclimb_clean_at_bound() {
        let search = HillClimbSearch::new(
            instance(8, 2, 3),
            Val::Value(1),
            [n(5), n(6), n(7)].into_iter().collect(),
            vec![Val::Default, Val::Value(1), Val::Value(2)],
        )
        .with_restarts(4);
        assert!(
            search.find_violation().is_none(),
            "Theorem 1: no adversary violates at N = 2m+u+1"
        );
    }

    #[test]
    fn pressure_orders_runs_sensibly() {
        // A clean D.1 run scores below a degraded-but-satisfied run.
        let inst = instance(5, 1, 2);
        let clean = AdversaryRun {
            instance: inst,
            sender_value: Val::Value(1),
            strategies: BTreeMap::new(),
        }
        .run();
        let degraded = AdversaryRun {
            instance: inst,
            sender_value: Val::Value(1),
            strategies: [
                (n(3), Strategy::ConstantLie(Val::Value(2))),
                (n(4), Strategy::ConstantLie(Val::Value(2))),
            ]
            .into_iter()
            .collect(),
        }
        .run();
        assert!(violation_pressure(&clean) <= violation_pressure(&degraded));
    }

    #[test]
    fn battery_is_diverse() {
        let b = Strategy::battery(1, 2, 0);
        assert!(b.len() >= 5);
        let names: BTreeSet<_> = b.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), b.len(), "battery names must be unique");
    }
}
