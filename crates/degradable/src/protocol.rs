//! Message-passing execution of algorithm BYZ on the `simnet` round engine.
//!
//! The reference executor in [`crate::eig`] computes decisions directly
//! from the adversary's behaviour function; this module runs the *actual
//! protocol*: real envelopes tagged with relay paths, lock-step rounds,
//! absence detection, and per-node state. Integration tests assert that
//! the two executors produce identical decisions on identical scenarios —
//! the message-passing layer adds (and the tests exercise) the mechanics
//! the paper assumes away: authenticated sources, per-round delivery, and
//! detectable absence.
//!
//! Honest nodes validate incoming envelopes: the path must have the
//! claimed sender as its last element (the engine stamps true sources, so
//! a faulty node cannot impersonate — assumption (c) of the paper), must
//! not contain the receiver, and must match the current round's level.
//! Invalid envelopes are dropped, which maps any protocol-confused faulty
//! node onto the silent/absent case.

use crate::adversary::Strategy;
use crate::byz::ByzInstance;
use crate::conditions::RunRecord;
use crate::eig::EigView;
use crate::path::Path;
use crate::value::AgreementValue;
use simnet::{NodeId, RoundEngine, Topology};
use std::collections::BTreeMap;
use std::hash::Hash;

/// A protocol message: the relay path and the claimed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByzMsg<V> {
    /// Relay path; its last element must be the true sender of the
    /// envelope.
    pub path: Path,
    /// The claimed value for that path.
    pub value: AgreementValue<V>,
}

/// The canonical corruptor for BYZ envelopes under link-level chaos
/// ([`simnet::LinkFaultKind::Corrupt`]).
///
/// The paper's oral-message model assumes a damaged message is
/// *detectable* — the receiver can tell a garbled envelope from a valid
/// one (checksums in practice). A detected-garbled envelope carries no
/// usable claim, so it must read as **absent**, folding to `V_d` like any
/// other missing message. Mapping every corrupted envelope to `None`
/// implements exactly that; it matches the engine's default when no
/// corruptor is installed, but states the protocol's intent at the call
/// site.
pub fn corruption_as_absence<V>() -> impl FnMut(&ByzMsg<V>, &mut simnet::SimRng) -> Option<ByzMsg<V>>
{
    |_msg, _rng| None
}

/// Result of one message-passing execution.
#[derive(Debug, Clone)]
pub struct ProtocolRun<V: Ord> {
    /// Every receiver's decision.
    pub decisions: BTreeMap<NodeId, AgreementValue<V>>,
    /// Network statistics from the engine.
    pub net: simnet::Outcome,
}

impl<V: Clone + Ord> ProtocolRun<V> {
    /// Packages the run for condition checking.
    pub fn record(
        &self,
        instance: &ByzInstance,
        sender_value: AgreementValue<V>,
        faulty: std::collections::BTreeSet<NodeId>,
    ) -> RunRecord<V> {
        RunRecord {
            params: instance.params(),
            n: instance.n(),
            sender: instance.sender(),
            sender_value,
            faulty,
            decisions: self.decisions.clone(),
        }
    }
}

/// Runs BYZ as a real message-passing protocol on a fully connected
/// `simnet` topology.
///
/// Nodes listed in `strategies` are Byzantine and misbehave accordingly
/// ([`Strategy::Silent`] nodes genuinely send nothing, exercising absence
/// detection). `seed` drives the engine (only relevant when a latency
/// model or omission faults are configured via `engine_setup`).
pub fn run_protocol<V: Clone + Ord + Hash + Send + Sync>(
    instance: &ByzInstance,
    sender_value: &AgreementValue<V>,
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
) -> ProtocolRun<V> {
    run_protocol_with(instance, sender_value, strategies, seed, |e| e)
}

/// Like [`run_protocol`], with a hook to customize the engine (fault plan,
/// latency model, deadline, tracing) before the run.
pub fn run_protocol_with<V: Clone + Ord + Hash + Send + Sync>(
    instance: &ByzInstance,
    sender_value: &AgreementValue<V>,
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    engine_setup: impl FnOnce(RoundEngine<ByzMsg<V>>) -> RoundEngine<ByzMsg<V>>,
) -> ProtocolRun<V> {
    run_protocol_inner(instance, sender_value, strategies, seed, engine_setup).0
}

/// Like [`run_protocol_with`], additionally materializing every
/// receiver's [`EigView`] from the shared store — the reference fold's
/// input — so differential tests can re-resolve the exact same
/// observations through [`EigView::resolve`] and compare against the
/// arena fold (`tests/engine_equivalence.rs` does this under chaos
/// plans).
pub fn run_protocol_full<V: Clone + Ord + Hash + Send + Sync>(
    instance: &ByzInstance,
    sender_value: &AgreementValue<V>,
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    engine_setup: impl FnOnce(RoundEngine<ByzMsg<V>>) -> RoundEngine<ByzMsg<V>>,
) -> (ProtocolRun<V>, BTreeMap<NodeId, EigView<V>>) {
    let (run, eig, store) =
        run_protocol_inner(instance, sender_value, strategies, seed, engine_setup);
    let n = instance.n();
    let sender = instance.sender();
    let depth = instance.depth();
    let arena = eig.arena();
    let mut views = BTreeMap::new();
    for r in NodeId::all(n) {
        if r == sender {
            continue;
        }
        let mut view = EigView::new(n, depth, r);
        for (id, v) in store.column(r) {
            view.record(arena.resolve_path(id), v.clone());
        }
        views.insert(r, view);
    }
    (run, views)
}

fn run_protocol_inner<V: Clone + Ord + Hash + Send + Sync>(
    instance: &ByzInstance,
    sender_value: &AgreementValue<V>,
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    engine_setup: impl FnOnce(RoundEngine<ByzMsg<V>>) -> RoundEngine<ByzMsg<V>>,
) -> (
    ProtocolRun<V>,
    crate::engine::EigEngine,
    crate::engine::EigStore<V>,
) {
    let n = instance.n();
    let sender = instance.sender();
    let depth = instance.depth();
    let mut engine = engine_setup(RoundEngine::new(Topology::complete(n), seed));

    // One shared slot table for *all* nodes: node `i`'s local view is
    // column `i` of the store, so the final fold is a single arena
    // resolution covering every receiver at once instead of `n - 1`
    // recursive folds.
    let eig_engine = instance.engine();
    let mut store = crate::engine::EigStore::new(eig_engine.arena());

    // Sending a fabricated (or truthful) value to one receiver; Silent
    // strategies suppress the message entirely.
    let claim_for = |me: NodeId,
                     child: &Path,
                     receiver: NodeId,
                     truthful: &AgreementValue<V>|
     -> Option<AgreementValue<V>> {
        match strategies.get(&me) {
            None => Some(truthful.clone()),
            Some(Strategy::Silent) => None,
            Some(s) => Some(s.claim(child, receiver, truthful)),
        }
    };

    let fill_start = std::time::Instant::now();
    let mut net = engine.run_with(depth + 1, |i, ctx| {
        let me = NodeId::new(i);
        let round = ctx.round();
        // 1. Record this round's deliveries (level = round).
        let mut to_relay: Vec<(Path, AgreementValue<V>)> = Vec::new();
        if round >= 1 {
            for (src, msg) in ctx.inbox().to_vec() {
                // A path of level `< round` is an envelope the network
                // delivered late (link reordering): its relay slot has
                // passed, but the direct observation is still genuine, so
                // it folds into the view. Anything else malformed —
                // impersonated or self-referential paths, or paths from a
                // future level — is dropped (treated as absent).
                let valid = msg.path.len() <= round
                    && !msg.path.is_empty()
                    && msg.path.last() == src
                    && !msg.path.contains(me);
                if !valid {
                    continue; // malformed claim: treated as absent
                }
                // Only sender-rooted repetition-free labels intern; the
                // resolution never reads anything else, so non-interning
                // paths read as absent exactly as before.
                let Some(id) = eig_engine.arena().intern(&msg.path) else {
                    continue;
                };
                let on_time = msg.path.len() == round;
                // First write wins: duplicated envelopes (link-level
                // duplication, or a late copy overtaken by chaos) are
                // discarded by the idempotent fold.
                let fresh = store.record(eig_engine.arena(), id, me, msg.value.clone());
                if fresh && on_time && round < depth {
                    to_relay.push((msg.path, msg.value));
                }
            }
        }
        // 2. Send this round's messages.
        if round == 0 {
            if me == sender {
                let root = Path::root(sender);
                for r in NodeId::all(n) {
                    if r == sender {
                        continue;
                    }
                    if let Some(v) = claim_for(me, &root, r, sender_value) {
                        ctx.send(
                            r,
                            ByzMsg {
                                path: root.clone(),
                                value: v,
                            },
                        );
                    }
                }
            }
        } else {
            for (path, value) in to_relay {
                let child = path.child(me);
                for r in NodeId::all(n) {
                    if child.contains(r) {
                        continue;
                    }
                    if let Some(v) = claim_for(me, &child, r, &value) {
                        ctx.send(
                            r,
                            ByzMsg {
                                path: child.clone(),
                                value: v,
                            },
                        );
                    }
                }
            }
        }
    });

    let fill_nanos = fill_start.elapsed().as_nanos() as u64;

    let resolved = eig_engine.resolve(instance.rule(), &store);
    net.eig = resolved.perf;
    net.eig.fill_nanos = fill_nanos;
    (
        ProtocolRun {
            decisions: resolved.decisions,
            net,
        },
        eig_engine,
        store,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AdversaryRun;
    use crate::analysis::message_complexity;
    use crate::params::Params;
    use crate::value::Val;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn instance(nodes: usize, m: usize, u: usize) -> ByzInstance {
        ByzInstance::new(nodes, Params::new(m, u).unwrap(), n(0)).unwrap()
    }

    #[test]
    fn fault_free_run_delivers_sender_value() {
        let inst = instance(5, 1, 2);
        let run = run_protocol(&inst, &Val::Value(7), &BTreeMap::new(), 1);
        assert_eq!(run.decisions.len(), 4);
        assert!(run.decisions.values().all(|v| *v == Val::Value(7)));
    }

    #[test]
    fn message_count_matches_formula() {
        for (nodes, m, u) in [(5usize, 1usize, 2usize), (7, 2, 2), (4, 1, 1)] {
            let inst = instance(nodes, m, u);
            let run = run_protocol(&inst, &Val::Value(1), &BTreeMap::new(), 1);
            assert_eq!(
                run.net.sent as u128,
                message_complexity(nodes, inst.depth()),
                "N={nodes} m={m}"
            );
        }
    }

    #[test]
    fn silent_node_sends_nothing() {
        let inst = instance(5, 1, 2);
        let strategies: BTreeMap<_, _> = [(n(3), Strategy::Silent)].into_iter().collect();
        let full = run_protocol(&inst, &Val::Value(7), &BTreeMap::new(), 1);
        let run = run_protocol(&inst, &Val::Value(7), &strategies, 1);
        assert!(run.net.sent < full.net.sent);
        // Fault-free receivers still decide the sender's value.
        for r in [1, 2, 4] {
            assert_eq!(run.decisions[&n(r)], Val::Value(7));
        }
    }

    #[test]
    fn protocol_matches_reference_executor() {
        // Same scenarios through both executors must give identical
        // decisions.
        #[allow(clippy::type_complexity)]
        let cases: Vec<(usize, usize, usize, Vec<(usize, Strategy<u64>)>)> = vec![
            (5, 1, 2, vec![(3, Strategy::ConstantLie(Val::Value(9)))]),
            (
                5,
                1,
                2,
                vec![
                    (3, Strategy::ConstantLie(Val::Value(9))),
                    (
                        4,
                        Strategy::TwoFaced {
                            even: Val::Value(1),
                            odd: Val::Value(2),
                        },
                    ),
                ],
            ),
            (
                7,
                2,
                2,
                vec![
                    (
                        0,
                        Strategy::TwoFaced {
                            even: Val::Value(1),
                            odd: Val::Value(2),
                        },
                    ),
                    (
                        6,
                        Strategy::RandomLie {
                            domain: vec![Val::Default, Val::Value(1), Val::Value(2)],
                            seed: 11,
                        },
                    ),
                ],
            ),
            (
                5,
                0,
                4,
                vec![
                    (2, Strategy::Silent),
                    (3, Strategy::PretendSenderSaid(Val::Value(5))),
                ],
            ),
        ];
        for (nodes, m, u, strat) in cases {
            let inst = instance(nodes, m, u);
            let strategies: BTreeMap<NodeId, Strategy<u64>> =
                strat.into_iter().map(|(i, s)| (n(i), s)).collect();
            let sc = AdversaryRun {
                instance: inst,
                sender_value: Val::Value(7),
                strategies: strategies.clone(),
            };
            let reference = sc.run().decisions;
            let protocol = run_protocol(&inst, &Val::Value(7), &strategies, 3).decisions;
            assert_eq!(reference, protocol, "N={nodes} m={m} u={u}");
        }
    }

    #[test]
    fn faulty_sender_two_faced_protocol() {
        let inst = instance(5, 1, 2);
        let strategies: BTreeMap<_, _> = [(
            n(0),
            Strategy::TwoFaced {
                even: Val::Value(1),
                odd: Val::Value(2),
            },
        )]
        .into_iter()
        .collect();
        let run = run_protocol(&inst, &Val::Value(0), &strategies, 1);
        // f = 1 <= m: all fault-free receivers must agree (D.2).
        let distinct: std::collections::BTreeSet<_> = run.decisions.values().collect();
        assert_eq!(distinct.len(), 1, "{:?}", run.decisions);
    }

    fn full_chaos_plan(nodes: usize, kind: simnet::LinkFaultKind) -> simnet::LinkFaultPlan {
        let mut plan = simnet::LinkFaultPlan::healthy();
        for a in 0..nodes {
            for b in 0..nodes {
                if a != b {
                    plan = plan.with(n(a), n(b), kind);
                }
            }
        }
        plan
    }

    #[test]
    fn duplicated_envelopes_fold_idempotently() {
        // Duplicating every envelope on every link must not change any
        // decision: the EigView fold is first-write-wins.
        let inst = instance(5, 1, 2);
        let strategies: BTreeMap<_, _> = [(n(3), Strategy::ConstantLie(Val::Value(9)))]
            .into_iter()
            .collect();
        let baseline = run_protocol(&inst, &Val::Value(7), &strategies, 1);
        let plan = full_chaos_plan(5, simnet::LinkFaultKind::Duplicate { p: 1.0 });
        let chaotic = run_protocol_with(&inst, &Val::Value(7), &strategies, 1, |e| {
            e.with_link_faults(plan)
        });
        assert!(chaotic.net.duplicated > 0);
        assert_eq!(baseline.decisions, chaotic.decisions);
    }

    #[test]
    fn corrupted_envelopes_read_as_absence() {
        // Corrupting every envelope (no corruptor installed: detectable
        // garbling = absence) starves every receiver: all decide V_d.
        // Crucially, nobody decides a *foreign* value.
        let inst = instance(5, 1, 2);
        let plan = full_chaos_plan(5, simnet::LinkFaultKind::Corrupt { p: 1.0 });
        let run = run_protocol_with(&inst, &Val::Value(7), &BTreeMap::new(), 1, |e| {
            e.with_link_faults(plan)
        });
        assert!(run.net.dropped_corrupt > 0);
        assert!(run.decisions.values().all(|v| *v == Val::Default));
    }

    #[test]
    fn corruption_as_absence_matches_engine_default() {
        let inst = instance(5, 1, 2);
        let plan = full_chaos_plan(5, simnet::LinkFaultKind::Corrupt { p: 0.4 });
        let implicit = run_protocol_with(&inst, &Val::Value(7), &BTreeMap::new(), 3, {
            let plan = plan.clone();
            |e| e.with_link_faults(plan)
        });
        let explicit = run_protocol_with(&inst, &Val::Value(7), &BTreeMap::new(), 3, |e| {
            e.with_link_faults(plan)
                .with_corruptor(corruption_as_absence())
        });
        assert_eq!(implicit.decisions, explicit.decisions);
        assert_eq!(implicit.net.dropped_corrupt, explicit.net.dropped_corrupt);
    }

    #[test]
    fn reordered_envelopes_never_produce_foreign_values() {
        // Reordering delays relays past their slot (absence), but late
        // envelopes still fold as direct observations; decisions stay
        // within {sender value, V_d} and runs are deterministic.
        let inst = instance(5, 1, 2);
        let run = |seed: u64| {
            run_protocol_with(&inst, &Val::Value(7), &BTreeMap::new(), seed, |e| {
                e.with_link_faults(full_chaos_plan(
                    5,
                    simnet::LinkFaultKind::Reorder { window: 1 },
                ))
            })
        };
        let a = run(5);
        assert!(a.net.reordered > 0, "seed-checked: some delay drawn");
        for (r, v) in &a.decisions {
            assert!(
                *v == Val::Value(7) || *v == Val::Default,
                "receiver {r} decided foreign {v:?}"
            );
        }
        let b = run(5);
        assert_eq!(a.decisions, b.decisions, "chaos is deterministic");
    }

    #[test]
    fn record_packaging() {
        let inst = instance(5, 1, 2);
        let strategies: BTreeMap<_, _> = [(n(4), Strategy::Silent)].into_iter().collect();
        let run = run_protocol(&inst, &Val::Value(7), &strategies, 1);
        let rec = run.record(&inst, Val::Value(7), [n(4)].into_iter().collect());
        assert_eq!(rec.f(), 1);
        assert!(!rec.sender_faulty());
        assert!(crate::conditions::check_degradable(&rec).is_satisfied());
    }
}
