//! The `(m, u)` parameter pair defining `m/u`-degradable agreement.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error constructing [`Params`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamsError {
    /// `u < m`: the degraded threshold must dominate the strong one.
    UStrictlyBelowM {
        /// Offending `m`.
        m: usize,
        /// Offending `u`.
        u: usize,
    },
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ParamsError::UStrictlyBelowM { m, u } => {
                write!(
                    f,
                    "invalid degradable-agreement parameters: u = {u} < m = {m}"
                )
            }
        }
    }
}

impl std::error::Error for ParamsError {}

/// Parameters of `m/u`-degradable agreement (Section 2 of the paper):
///
/// * with at most `m` faulty nodes, full Byzantine agreement (D.1, D.2);
/// * with more than `m` but at most `u` faulty nodes, degraded agreement
///   (D.3, D.4): fault-free receivers split into at most two classes, one
///   of which holds the default value `V_d`.
///
/// Invariant: `m <= u`. When `m == u`, degradable agreement coincides with
/// Lamport's Byzantine agreement.
///
/// ```
/// use degradable::Params;
/// let p = Params::new(1, 2)?;
/// assert_eq!(p.min_nodes(), 5);        // 2m + u + 1
/// assert_eq!(p.min_connectivity(), 4); // m + u + 1
/// # Ok::<(), degradable::ParamsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Params {
    m: usize,
    u: usize,
}

impl Params {
    /// Creates the parameter pair.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError::UStrictlyBelowM`] if `u < m`.
    pub fn new(m: usize, u: usize) -> Result<Self, ParamsError> {
        if u < m {
            Err(ParamsError::UStrictlyBelowM { m, u })
        } else {
            Ok(Params { m, u })
        }
    }

    /// Classic Byzantine agreement tolerating `m` faults (`m == u`).
    pub fn byzantine(m: usize) -> Self {
        Params { m, u: m }
    }

    /// The strong fault threshold `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The degraded fault threshold `u`.
    pub fn u(&self) -> usize {
        self.u
    }

    /// Minimum number of nodes (`2m + u + 1`, Theorem 2; also sufficient,
    /// Theorem 1).
    pub fn min_nodes(&self) -> usize {
        2 * self.m + self.u + 1
    }

    /// Minimum network connectivity (`m + u + 1`, Theorem 3).
    pub fn min_connectivity(&self) -> usize {
        self.m + self.u + 1
    }

    /// Whether a system of `n` nodes satisfies the `n > 2m + u` requirement
    /// of algorithm BYZ.
    pub fn admits(&self, n: usize) -> bool {
        n >= self.min_nodes()
    }

    /// Number of protocol rounds used by our BYZ implementation:
    /// `m + 1` for `m >= 1`, and 2 for the reconstructed `m = 0` base case
    /// (sender round + echo round; see `byz` module docs).
    pub fn rounds(&self) -> usize {
        self.m.max(1) + 1
    }

    /// Whether this instance is plain Byzantine agreement (`m == u`).
    pub fn is_classic(&self) -> bool {
        self.m == self.u
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}-degradable", self.m, self.u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params() {
        let p = Params::new(1, 4).unwrap();
        assert_eq!(p.m(), 1);
        assert_eq!(p.u(), 4);
        assert_eq!(p.min_nodes(), 7);
        assert_eq!(p.min_connectivity(), 6);
    }

    #[test]
    fn invalid_params() {
        assert_eq!(
            Params::new(3, 2),
            Err(ParamsError::UStrictlyBelowM { m: 3, u: 2 })
        );
    }

    #[test]
    fn byzantine_special_case() {
        let p = Params::byzantine(2);
        assert!(p.is_classic());
        assert_eq!(p.min_nodes(), 7); // 3m + 1
    }

    #[test]
    fn seven_node_tradeoffs_from_paper() {
        // "given a system consisting of 7 nodes, one may achieve:
        //  2/2-degradable, 1/4-degradable, or 0/6-degradable agreement."
        for (m, u) in [(2, 2), (1, 4), (0, 6)] {
            assert_eq!(Params::new(m, u).unwrap().min_nodes(), 7);
        }
    }

    #[test]
    fn rounds_counts() {
        assert_eq!(Params::new(0, 3).unwrap().rounds(), 2);
        assert_eq!(Params::new(1, 2).unwrap().rounds(), 2);
        assert_eq!(Params::new(2, 2).unwrap().rounds(), 3);
        assert_eq!(Params::new(3, 4).unwrap().rounds(), 4);
    }

    #[test]
    fn admits_threshold() {
        let p = Params::new(1, 2).unwrap();
        assert!(!p.admits(4));
        assert!(p.admits(5));
        assert!(p.admits(6));
    }

    #[test]
    fn display_format() {
        assert_eq!(Params::new(1, 4).unwrap().to_string(), "1/4-degradable");
    }

    #[test]
    fn error_display() {
        let e = Params::new(2, 1).unwrap_err();
        assert!(e.to_string().contains("u = 1 < m = 2"));
    }
}
