//! Online (adaptive) Byzantine adversaries.
//!
//! Every [`crate::adversary::Strategy`] is *offline*: a deterministic
//! function of `(path, receiver)` fixed before the run starts, which is
//! why the strategy searches can enumerate them. The paper's fault model
//! is stronger — a faulty node may choose each lie *after* seeing
//! everything delivered to it so far. This module models that: an
//! [`AdaptiveAdversary`] observes the faulty node's inbox as the run
//! unfolds and picks equivocations and withholdings from the observed
//! traffic (target the currently-dominant value, split the fault-free
//! receivers, starve the best-connected peer).
//!
//! Determinism is preserved by construction, not by keying: an adversary's
//! state is mutated only by [`AdaptiveAdversary::observe`] and
//! [`AdaptiveAdversary::claim`] calls, and every driver that hosts one
//! (the lockstep conformance fuzzer, the [`simnet`] round engine, the
//! single-threaded simulator transport) delivers events in a fixed total
//! order derived from [`simnet::SimRng`]. Same seed, same observation
//! sequence, same lies — across processes and worker counts. Thread-per-
//! node meshes do *not* host adaptive adversaries (their delivery order is
//! real scheduling), which mirrors how [`crate::spec`] is only attached to
//! deterministic drivers.

use crate::path::Path;
use crate::value::AgreementValue;
use simnet::NodeId;
use std::collections::BTreeMap;

/// A stateful corruption strategy: sees the faulty node's traffic, then
/// chooses per-receiver claims online.
///
/// `None` from [`AdaptiveAdversary::claim`] is a withholding (the receiver
/// observes absence, `V_d`); `Some(v)` replaces the truthful relay value.
pub trait AdaptiveAdversary<V>: Send {
    /// A stable name for reports and repro files.
    fn name(&self) -> &'static str;

    /// Observes one envelope delivered to the faulty node: `src` relayed
    /// `path` claiming `value`, folding at round `round`.
    fn observe(&mut self, round: usize, src: NodeId, path: &Path, value: &AgreementValue<V>);

    /// The claim for relaying `path` to `receiver` at the close of
    /// `round`, given the truthful value; `None` withholds the envelope.
    fn claim(
        &mut self,
        round: usize,
        path: &Path,
        receiver: NodeId,
        truthful: &AgreementValue<V>,
    ) -> Option<AgreementValue<V>>;
}

/// Tracks how often each value has been observed, in observation order.
#[derive(Debug, Clone)]
struct ValueCensus<V: Ord> {
    counts: BTreeMap<AgreementValue<V>, usize>,
}

impl<V: Ord> Default for ValueCensus<V> {
    fn default() -> Self {
        ValueCensus {
            counts: BTreeMap::new(),
        }
    }
}

impl<V: Clone + Ord> ValueCensus<V> {
    fn see(&mut self, value: &AgreementValue<V>) {
        *self.counts.entry(value.clone()).or_insert(0) += 1;
    }

    /// The most-observed value (ties broken by value order), if any.
    fn majority(&self) -> Option<AgreementValue<V>> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(v, _)| v.clone())
    }
}

/// Pushes the observed majority onto half the receivers and `V_d` onto
/// the rest — an online two-faced split aimed at whatever value is
/// currently winning, rather than a value fixed up front.
#[derive(Debug, Clone)]
pub struct MajorityHijacker<V: Ord> {
    census: ValueCensus<V>,
}

impl<V: Ord> Default for MajorityHijacker<V> {
    fn default() -> Self {
        MajorityHijacker {
            census: ValueCensus::default(),
        }
    }
}

impl<V: Clone + Ord + Send> AdaptiveAdversary<V> for MajorityHijacker<V> {
    fn name(&self) -> &'static str {
        "majority-hijacker"
    }

    fn observe(&mut self, _round: usize, _src: NodeId, _path: &Path, value: &AgreementValue<V>) {
        self.census.see(value);
    }

    fn claim(
        &mut self,
        _round: usize,
        _path: &Path,
        receiver: NodeId,
        truthful: &AgreementValue<V>,
    ) -> Option<AgreementValue<V>> {
        let dominant = self.census.majority().unwrap_or_else(|| truthful.clone());
        if receiver.index().is_multiple_of(2) {
            Some(dominant)
        } else {
            Some(AgreementValue::Default)
        }
    }
}

/// Splits the receiver set at an observed pivot: receivers it has heard
/// *from* get the observed majority value reinforced, the others are
/// withheld from entirely — starving the nodes the adversary has not
/// heard from (the ones most likely to be relying on it).
#[derive(Debug, Clone)]
pub struct SplitBrain<V: Ord> {
    census: ValueCensus<V>,
    heard_from: BTreeMap<NodeId, usize>,
}

impl<V: Ord> Default for SplitBrain<V> {
    fn default() -> Self {
        SplitBrain {
            census: ValueCensus::default(),
            heard_from: BTreeMap::new(),
        }
    }
}

impl<V: Clone + Ord + Send> AdaptiveAdversary<V> for SplitBrain<V> {
    fn name(&self) -> &'static str {
        "split-brain"
    }

    fn observe(&mut self, _round: usize, src: NodeId, _path: &Path, value: &AgreementValue<V>) {
        self.census.see(value);
        *self.heard_from.entry(src).or_insert(0) += 1;
    }

    fn claim(
        &mut self,
        _round: usize,
        _path: &Path,
        receiver: NodeId,
        truthful: &AgreementValue<V>,
    ) -> Option<AgreementValue<V>> {
        if self.heard_from.contains_key(&receiver) {
            Some(self.census.majority().unwrap_or_else(|| truthful.clone()))
        } else {
            None
        }
    }
}

/// Withholds relays addressed to the peer it has heard from the most —
/// the best-connected fault-free node — and relays truthfully to everyone
/// else, probing absence detection where it hurts most.
#[derive(Debug, Clone, Default)]
pub struct TrafficWithholder {
    heard_from: BTreeMap<NodeId, usize>,
}

impl TrafficWithholder {
    /// The current starvation target: the most-heard-from peer (ties to
    /// the lower id), if anything has been observed.
    fn target(&self) -> Option<NodeId> {
        self.heard_from
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(n, _)| *n)
    }
}

impl<V: Clone + Ord + Send> AdaptiveAdversary<V> for TrafficWithholder {
    fn name(&self) -> &'static str {
        "traffic-withholder"
    }

    fn observe(&mut self, _round: usize, src: NodeId, _path: &Path, _value: &AgreementValue<V>) {
        *self.heard_from.entry(src).or_insert(0) += 1;
    }

    fn claim(
        &mut self,
        _round: usize,
        _path: &Path,
        receiver: NodeId,
        truthful: &AgreementValue<V>,
    ) -> Option<AgreementValue<V>> {
        if Some(receiver) == self.target() {
            None
        } else {
            Some(truthful.clone())
        }
    }
}

/// How many adversary kinds [`adversary_by_id`] can produce.
pub const ADAPTIVE_KINDS: usize = 3;

/// A fresh adaptive adversary by stable id (`0..ADAPTIVE_KINDS`), the
/// encoding used by fuzz plans and repro files.
pub fn adversary_by_id<V: Clone + Ord + Send + 'static>(
    id: usize,
) -> Box<dyn AdaptiveAdversary<V>> {
    match id % ADAPTIVE_KINDS {
        0 => Box::new(MajorityHijacker::default()),
        1 => Box::new(SplitBrain::default()),
        _ => Box::new(TrafficWithholder::default()),
    }
}

/// Bridges an adaptive adversary into the [`simnet`] round engine as the
/// corruptor applied to [`simnet::LinkFaultKind::Corrupt`]-flagged links:
/// every envelope crossing a corrupt link is first observed, then replaced
/// by the adversary's claim (or absorbed when the adversary withholds —
/// `None` reads as absence, the oral-message axiom).
///
/// The engine does not expose the destination of an in-flight envelope, so
/// the claim is keyed by the path's root — equivocation across receivers
/// comes from per-link `Corrupt` flags, withholding/value choice from the
/// adversary's observed state. Determinism: the engine invokes corruptors
/// in its single-threaded delivery order derived from [`simnet::SimRng`].
pub fn engine_corruptor<V: Clone + Ord + Send + 'static>(
    mut adversary: Box<dyn AdaptiveAdversary<V>>,
) -> impl FnMut(&crate::service::BatchMsg<V>, &mut simnet::SimRng) -> Option<crate::service::BatchMsg<V>>
{
    move |msg, _rng| {
        let round = msg.path.len();
        adversary.observe(round, msg.path.last(), &msg.path, &msg.value);
        adversary
            .claim(round, &msg.path, msg.path.sender(), &msg.value)
            .map(|value| crate::service::BatchMsg {
                instance: msg.instance,
                path: msg.path.clone(),
                value,
            })
    }
}

/// The display name for adversary id `id` (see [`adversary_by_id`]).
pub fn adversary_name(id: usize) -> &'static str {
    match id % ADAPTIVE_KINDS {
        0 => "majority-hijacker",
        1 => "split-brain",
        _ => "traffic-withholder",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Val;

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn hijacker_targets_the_observed_majority() {
        let mut adv: MajorityHijacker<u64> = MajorityHijacker::default();
        let root = Path::root(nid(0));
        for _ in 0..3 {
            adv.observe(1, nid(0), &root, &Val::Value(7));
        }
        adv.observe(1, nid(2), &root, &Val::Value(9));
        // Even receivers get the dominant observed value, odd ones V_d.
        assert_eq!(
            adv.claim(1, &root, nid(2), &Val::Value(1)),
            Some(Val::Value(7))
        );
        assert_eq!(
            adv.claim(1, &root, nid(3), &Val::Value(1)),
            Some(Val::Default)
        );
    }

    #[test]
    fn split_brain_withholds_from_the_unheard() {
        let mut adv: SplitBrain<u64> = SplitBrain::default();
        let root = Path::root(nid(0));
        adv.observe(1, nid(1), &root, &Val::Value(5));
        assert_eq!(
            adv.claim(1, &root, nid(1), &Val::Value(5)),
            Some(Val::Value(5))
        );
        assert_eq!(adv.claim(1, &root, nid(3), &Val::Value(5)), None);
    }

    #[test]
    fn withholder_starves_the_best_connected_peer() {
        let mut adv = TrafficWithholder::default();
        let root = Path::root(nid(0));
        for _ in 0..2 {
            AdaptiveAdversary::<u64>::observe(&mut adv, 1, nid(4), &root, &Val::Value(1));
        }
        AdaptiveAdversary::<u64>::observe(&mut adv, 1, nid(2), &root, &Val::Value(1));
        assert_eq!(adv.claim(1, &root, nid(4), &Val::Value(1)), None);
        assert_eq!(
            adv.claim(1, &root, nid(2), &Val::Value(1)),
            Some(Val::Value(1))
        );
    }

    #[test]
    fn adversaries_are_deterministic_given_the_same_observations() {
        // Two instances fed the same observation sequence must emit the
        // same claims — the determinism contract the fuzzer relies on.
        for id in 0..ADAPTIVE_KINDS {
            let mut a = adversary_by_id::<u64>(id);
            let mut b = adversary_by_id::<u64>(id);
            let root = Path::root(nid(0));
            for (round, src, v) in [(1, 1, 7u64), (1, 2, 9), (2, 1, 7)] {
                a.observe(round, nid(src), &root, &Val::Value(v));
                b.observe(round, nid(src), &root, &Val::Value(v));
            }
            for r in 0..5 {
                assert_eq!(
                    a.claim(2, &root, nid(r), &Val::Value(3)),
                    b.claim(2, &root, nid(r), &Val::Value(3)),
                    "kind {id} receiver {r}"
                );
            }
            assert_eq!(a.name(), adversary_name(id));
        }
    }
}
