//! Exponential-information-gathering (EIG) execution of recursive
//! oral-message protocols.
//!
//! Both algorithm BYZ (the paper's contribution) and Lamport's OM baseline
//! are recursive protocols of the same message-passing shape; they differ
//! only in the **vote rule** applied when the recursion is folded back up:
//!
//! * BYZ(t, m) uses `VOTE(n'-1-m, n'-1)` where `n'` is the sub-instance
//!   size — i.e. [`VoteRule::Degradable`];
//! * OM(m) uses strict majority with default — [`VoteRule::Majority`].
//!
//! This module provides the shared machinery: the per-receiver value tree
//! ([`EigView`]), the bottom-up resolution, and a *reference executor*
//! ([`run_eig`]) that computes every receiver's decision directly from an
//! adversary's behaviour function, level by level, without materializing
//! message envelopes. The message-passing executor in [`crate::protocol`]
//! produces bit-identical decisions (asserted by integration tests) while
//! exercising the real network engine.

use crate::path::{paths_of_length, Path};
use crate::value::AgreementValue;
use crate::vote::{majority, vote};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// The vote applied at each internal node of the EIG tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoteRule {
    /// The paper's `VOTE(n - ℓ - m, n - ℓ)` at a path of length `ℓ` in an
    /// `n`-node system.
    Degradable {
        /// The strong fault threshold `m`.
        m: usize,
    },
    /// Strict majority with default (Lamport's OM).
    Majority,
}

impl VoteRule {
    /// Combines the `n - path_len` values gathered at a path of length
    /// `path_len`.
    pub fn combine<V: Clone + Ord>(
        &self,
        n: usize,
        path_len: usize,
        values: &[AgreementValue<V>],
    ) -> AgreementValue<V> {
        match *self {
            VoteRule::Degradable { m } => {
                let alpha = n
                    .checked_sub(path_len + m)
                    .expect("BYZ invariant n > path_len + m violated");
                vote(alpha, values)
            }
            VoteRule::Majority => majority(values),
        }
    }
}

/// One receiver's view of the EIG tree: the value it attributes to each
/// relay path. Missing entries denote *absent* messages and read as `V_d`.
///
/// Two views compare equal iff they attribute the same value to every path
/// — the notion of *indistinguishability* used by the paper's Figure 2
/// lower-bound argument (equality of `n`, `depth` and `me` is also
/// required, but indistinguishability comparisons use
/// [`EigView::same_observations`], which ignores the receiver identity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EigView<V> {
    n: usize,
    depth: usize,
    me: NodeId,
    vals: BTreeMap<Path, AgreementValue<V>>,
}

impl<V: Clone + Ord> EigView<V> {
    /// An empty view for receiver `me` in an `n`-node system with an EIG
    /// tree of `depth` levels.
    pub fn new(n: usize, depth: usize, me: NodeId) -> Self {
        EigView {
            n,
            depth,
            me,
            vals: BTreeMap::new(),
        }
    }

    /// Records the value received for `path`.
    ///
    /// The fold is **idempotent**: the first value recorded for a path
    /// wins and later envelopes for the same path are discarded (returns
    /// `false`). In the fault-free synchronous model each path is heard
    /// exactly once, so this changes nothing; under link-level chaos
    /// (duplicated or reordered envelopes) it makes the view independent
    /// of arrival multiplicity and order.
    ///
    /// # Panics
    ///
    /// Panics if the receiver itself lies on `path` (it would never be a
    /// recipient of that relay).
    pub fn record(&mut self, path: Path, value: AgreementValue<V>) -> bool {
        assert!(
            !path.contains(self.me),
            "receiver {} cannot hold a value for path {path} containing itself",
            self.me
        );
        match self.vals.entry(path) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(value);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// The value attributed to `path`; absent messages read as `V_d`.
    pub fn seen(&self, path: &Path) -> AgreementValue<V> {
        self.vals.get(path).cloned().unwrap_or_default()
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Iterator over `(path, value)` entries in path order.
    pub fn entries(&self) -> impl Iterator<Item = (&Path, &AgreementValue<V>)> {
        self.vals.iter()
    }

    /// Whether two views record identical observations (same value for
    /// every path), regardless of whose views they are — the
    /// indistinguishability relation of the Figure 2 argument.
    pub fn same_observations(&self, other: &EigView<V>) -> bool {
        self.vals == other.vals
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Folds the tree bottom-up from the root path `[sender]` and returns
    /// this receiver's decision.
    pub fn resolve(&self, sender: NodeId, rule: VoteRule) -> AgreementValue<V> {
        self.resolve_path(&Path::root(sender), rule)
    }

    fn resolve_path(&self, path: &Path, rule: VoteRule) -> AgreementValue<V> {
        if path.len() >= self.depth {
            return self.seen(path);
        }
        // Own stored value for this path plus the resolved sub-instances
        // relayed by every other receiver of this path.
        let mut values = Vec::with_capacity(self.n - path.len());
        values.push(self.seen(path));
        for child in path.children(self.n) {
            if child.last() != self.me {
                values.push(self.resolve_path(&child, rule));
            }
        }
        debug_assert_eq!(values.len(), self.n - path.len());
        rule.combine(self.n, path.len(), &values)
    }
}

/// Whether early stopping may treat `path` as a leaf of the fold: every
/// node of the certified fault set `faulty` already lies on `path`, and
/// the relayer that appended the label (`path.last()`) is itself
/// fault-free.
///
/// Under this condition every relayer strictly below `path` is
/// fault-free (repetition-free paths cannot revisit the on-path faulty
/// nodes), so on reliable links the whole subtree uniformly relays what
/// its root delivered and the subtree vote collapses to the root value:
/// `resolve(path) = seen(path)` exactly (DESIGN.md §5h). The predicate
/// is downward-closed — once it holds, it holds for every extension —
/// which is what lets relayers stop forwarding below the frontier
/// entirely.
pub fn prunable_path(path: &Path, faulty: &BTreeSet<NodeId>) -> bool {
    !faulty.contains(&path.last()) && faulty.iter().all(|f| path.contains(*f))
}

impl<V: Clone + Ord> EigView<V> {
    /// Folds the tree bottom-up like [`EigView::resolve`], but treats
    /// every [`prunable_path`] label as a leaf (its stored value *is*
    /// its resolution). This is the fold a node runs when the
    /// early-stopping optimization suppressed relays below the prunable
    /// frontier: the suppressed subtree slots are absent from the view,
    /// and reading them would poison the vote with spurious `V_d`s.
    pub fn resolve_pruned(
        &self,
        sender: NodeId,
        rule: VoteRule,
        faulty: &BTreeSet<NodeId>,
    ) -> AgreementValue<V> {
        self.resolve_pruned_path(&Path::root(sender), rule, faulty)
    }

    fn resolve_pruned_path(
        &self,
        path: &Path,
        rule: VoteRule,
        faulty: &BTreeSet<NodeId>,
    ) -> AgreementValue<V> {
        if path.len() >= self.depth || prunable_path(path, faulty) {
            return self.seen(path);
        }
        let mut values = Vec::with_capacity(self.n - path.len());
        values.push(self.seen(path));
        for child in path.children(self.n) {
            if child.last() != self.me {
                values.push(self.resolve_pruned_path(&child, rule, faulty));
            }
        }
        debug_assert_eq!(values.len(), self.n - path.len());
        rule.combine(self.n, path.len(), &values)
    }
}

/// One step of an explained fold: the vote taken at `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldStep<V> {
    /// The path being folded.
    pub path: Path,
    /// The gathered inputs (own stored value first, then resolved
    /// sub-instances in child order).
    pub gathered: Vec<AgreementValue<V>>,
    /// The vote outcome.
    pub result: AgreementValue<V>,
}

impl<V: Clone + Ord + std::fmt::Display> EigView<V> {
    /// Resolves like [`EigView::resolve`] but also records every internal
    /// vote, for debugging and teaching output (see the
    /// `degradable::explain` module).
    pub fn resolve_traced(
        &self,
        sender: NodeId,
        rule: VoteRule,
    ) -> (AgreementValue<V>, Vec<FoldStep<V>>) {
        let mut steps = Vec::new();
        let decision = self.resolve_traced_path(&Path::root(sender), rule, &mut steps);
        (decision, steps)
    }

    fn resolve_traced_path(
        &self,
        path: &Path,
        rule: VoteRule,
        steps: &mut Vec<FoldStep<V>>,
    ) -> AgreementValue<V> {
        if path.len() >= self.depth {
            return self.seen(path);
        }
        let mut values = Vec::with_capacity(self.n - path.len());
        values.push(self.seen(path));
        for child in path.children(self.n) {
            if child.last() != self.me {
                values.push(self.resolve_traced_path(&child, rule, steps));
            }
        }
        let result = rule.combine(self.n, path.len(), &values);
        steps.push(FoldStep {
            path: path.clone(),
            gathered: values,
            result: result.clone(),
        });
        result
    }
}

/// Behaviour of the faulty nodes, as a function: given the relay `path`
/// (whose last element is the faulty relayer — or the faulty sender for the
/// root path), the `receiver` being addressed, and the value an honest node
/// would have relayed, produce the value actually claimed.
///
/// Returning [`AgreementValue::Default`] models staying silent (the
/// receiver detects the absence and substitutes `V_d`).
pub type Fabricate<'a, V> =
    &'a mut dyn FnMut(&Path, NodeId, &AgreementValue<V>) -> AgreementValue<V>;

/// Full output of a reference execution: per-receiver decisions and the
/// complete per-receiver views (used by the Figure 2 indistinguishability
/// experiments, which compare a node's *entire view* across scenarios).
#[derive(Debug, Clone)]
pub struct EigOutcome<V> {
    /// Every receiver's decision.
    pub decisions: BTreeMap<NodeId, AgreementValue<V>>,
    /// Every receiver's complete view of the EIG tree.
    pub views: BTreeMap<NodeId, EigView<V>>,
}

/// Reference executor: runs a `depth`-round EIG protocol among `n` fully
/// connected nodes with original sender `sender` and initial value
/// `sender_value`, where the nodes in `faulty` misbehave according to
/// `fabricate`, and every receiver folds its view with `rule`.
///
/// Returns every receiver's decision (including the faulty receivers' —
/// callers typically filter to the fault-free set for condition checking).
///
/// # Panics
///
/// Panics if `sender` is out of range or `depth < 1`.
pub fn run_eig<V: Clone + Ord>(
    n: usize,
    sender: NodeId,
    depth: usize,
    rule: VoteRule,
    sender_value: &AgreementValue<V>,
    faulty: &BTreeSet<NodeId>,
    fabricate: Fabricate<'_, V>,
) -> BTreeMap<NodeId, AgreementValue<V>> {
    run_eig_full(n, sender, depth, rule, sender_value, faulty, fabricate).decisions
}

/// Like [`run_eig`] but also returns every receiver's full view.
///
/// Re-exported at the crate root as `reference_eval`: this recursive
/// per-receiver evaluator is preserved verbatim as the differential
/// oracle for the arena-backed engine ([`crate::engine`]) — the
/// `tests/engine_equivalence.rs` suite and the E14 `perf_baseline`
/// campaign assert the engine's decisions are bit-identical to this
/// function's on every input they explore. Production callers (the
/// adversary searches, the protocol and sparse executors) route through
/// the engine; prefer this function only when the per-receiver
/// [`EigView`]s themselves are needed.
pub fn run_eig_full<V: Clone + Ord>(
    n: usize,
    sender: NodeId,
    depth: usize,
    rule: VoteRule,
    sender_value: &AgreementValue<V>,
    faulty: &BTreeSet<NodeId>,
    fabricate: Fabricate<'_, V>,
) -> EigOutcome<V> {
    assert!(sender.index() < n, "sender out of range");
    assert!(depth >= 1, "at least the sender round is required");

    // store[path][r] = value receiver r holds for path (None if r on path).
    let mut store: BTreeMap<Path, Vec<Option<AgreementValue<V>>>> = BTreeMap::new();

    // Level 1: the sender distributes its value.
    let root = Path::root(sender);
    let mut root_vals = vec![None; n];
    for r in NodeId::all(n) {
        if r == sender {
            continue;
        }
        let v = if faulty.contains(&sender) {
            fabricate(&root, r, sender_value)
        } else {
            sender_value.clone()
        };
        root_vals[r.index()] = Some(v);
    }
    store.insert(root.clone(), root_vals);

    // Levels 2..=depth: receivers relay what they received one level up.
    for level in 2..=depth {
        let prev_paths = paths_of_length(sender, n, level - 1);
        for sigma in prev_paths {
            for child in sigma.children(n) {
                let relayer = child.last();
                let truthful = store[&sigma][relayer.index()]
                    .clone()
                    .expect("relayer must have received the parent value");
                let mut vals = vec![None; n];
                for r in NodeId::all(n) {
                    if child.contains(r) {
                        continue;
                    }
                    let v = if faulty.contains(&relayer) {
                        fabricate(&child, r, &truthful)
                    } else {
                        truthful.clone()
                    };
                    vals[r.index()] = Some(v);
                }
                store.insert(child, vals);
            }
        }
    }

    // Fold each receiver's view.
    let mut decisions = BTreeMap::new();
    let mut views = BTreeMap::new();
    for r in NodeId::all(n) {
        if r == sender {
            continue;
        }
        let mut view = EigView::new(n, depth, r);
        for (path, vals) in &store {
            if let Some(v) = vals[r.index()].clone() {
                view.record(path.clone(), v);
            }
        }
        decisions.insert(r, view.resolve(sender, rule));
        views.insert(r, view);
    }
    EigOutcome { decisions, views }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Val;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn honest() -> impl FnMut(&Path, NodeId, &Val) -> Val {
        |_: &Path, _: NodeId, truthful: &Val| *truthful
    }

    #[test]
    fn no_faults_everyone_decides_sender_value() {
        for depth in 1..=3 {
            let mut fab = honest();
            let d = run_eig(
                5,
                n(0),
                depth,
                VoteRule::Degradable { m: 1 },
                &Val::Value(42),
                &BTreeSet::new(),
                &mut fab,
            );
            assert_eq!(d.len(), 4);
            assert!(d.values().all(|v| *v == Val::Value(42)), "depth {depth}");
        }
    }

    #[test]
    fn majority_rule_no_faults() {
        let mut fab = honest();
        let d = run_eig(
            4,
            n(0),
            2,
            VoteRule::Majority,
            &Val::Value(5),
            &BTreeSet::new(),
            &mut fab,
        );
        assert!(d.values().all(|v| *v == Val::Value(5)));
    }

    #[test]
    fn lying_sender_consistent_outcome_byz11() {
        // 4 nodes, m = u = 1 (classic OM(1) bound): faulty sender sends
        // different values; all receivers must still agree (D.2).
        let faulty: BTreeSet<_> = [n(0)].into_iter().collect();
        let mut fab = |_p: &Path, r: NodeId, _t: &Val| Val::Value(r.index() as u64);
        let d = run_eig(
            4,
            n(0),
            2,
            VoteRule::Degradable { m: 1 },
            &Val::Value(0),
            &faulty,
            &mut fab,
        );
        let vals: BTreeSet<_> = d.values().cloned().collect();
        assert_eq!(vals.len(), 1, "receivers disagree: {d:?}");
    }

    #[test]
    fn view_rejects_own_path() {
        let mut view: EigView<u64> = EigView::new(4, 2, n(1));
        let p = Path::root(n(0)).child(n(1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            view.record(p, Val::Value(1));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn absent_reads_as_default() {
        let view: EigView<u64> = EigView::new(3, 1, n(1));
        assert!(view.is_empty());
        assert_eq!(view.seen(&Path::root(n(0))), Val::Default);
        // depth-1 resolve of an empty view is V_d
        assert_eq!(view.resolve(n(0), VoteRule::Majority), Val::Default);
    }

    #[test]
    fn vote_rule_thresholds() {
        // n = 5, path_len = 1, m = 1 => alpha = 3 of 4 values.
        let r = VoteRule::Degradable { m: 1 };
        let vals = vec![Val::Value(1), Val::Value(1), Val::Value(1), Val::Value(2)];
        assert_eq!(r.combine(5, 1, &vals), Val::Value(1));
        let vals = vec![Val::Value(1), Val::Value(1), Val::Value(2), Val::Value(2)];
        assert_eq!(r.combine(5, 1, &vals), Val::Default);
    }

    #[test]
    fn silent_node_counts_as_default() {
        // Node 2 crashes (always "absent"): receivers see V_d from it.
        let faulty: BTreeSet<_> = [n(2)].into_iter().collect();
        let mut fab = |_p: &Path, _r: NodeId, _t: &Val| Val::Default;
        let d = run_eig(
            5,
            n(0),
            2,
            VoteRule::Degradable { m: 1 },
            &Val::Value(9),
            &faulty,
            &mut fab,
        );
        // Fault-free receivers still decide the sender's value: 3 honest
        // copies of 9 among 4 values meets alpha = 5 - 1 - 1 = 3.
        for r in [1, 3, 4] {
            assert_eq!(d[&n(r)], Val::Value(9));
        }
    }
}
