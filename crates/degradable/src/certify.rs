//! Small-model certification: exhaustive verification of `m/u`-degradable
//! agreement over *everything* — every sender position, every fault set of
//! size up to `u`, and every deterministic adversary table over a finite
//! value domain.
//!
//! [`crate::adversary::ExhaustiveSearch`] checks one
//! fault set for one sender; this module closes the remaining quantifiers,
//! turning Theorem 1 into a machine-checked statement for small `N`
//! (finite-model checking, in the spirit of seL4-style "verify the small
//! case exhaustively, test the general case statistically"). The value
//! domain is finite, which is justified by a standard symmetry argument:
//! BYZ treats values opaquely (only equality is ever inspected), so any
//! violation with arbitrary values maps to one over `{V_d, α, β}` by
//! renaming — two distinct proper values are enough to express "agrees
//! with the sender", "agrees with another liar", and "absent".

use crate::adversary::{ExhaustiveSearch, SearchError, ViolationWitness};
use crate::byz::ByzInstance;
use crate::params::Params;
use crate::value::Val;
use simnet::NodeId;
use std::collections::BTreeSet;

/// Aggregate report of a full small-model certification.
#[derive(Debug, Clone)]
pub struct CertificationReport {
    /// The certified instance shape.
    pub params: Params,
    /// Node count.
    pub n: usize,
    /// Number of (sender, fault set) configurations enumerated.
    pub configurations: usize,
    /// Total adversary tables executed.
    pub adversaries: u128,
    /// The first violation found, if any (None = certified).
    pub violation: Option<ViolationWitness>,
}

impl CertificationReport {
    /// Whether the instance shape is fully certified over the searched
    /// space.
    pub fn certified(&self) -> bool {
        self.violation.is_none()
    }
}

/// Enumerates all `k`-subsets of `0..n`.
fn subsets(n: usize, k: usize) -> Vec<BTreeSet<usize>> {
    fn rec(start: usize, n: usize, k: usize, acc: &mut Vec<usize>, out: &mut Vec<BTreeSet<usize>>) {
        if acc.len() == k {
            out.push(acc.iter().copied().collect());
            return;
        }
        for v in start..n {
            acc.push(v);
            rec(v + 1, n, k, acc, out);
            acc.pop();
        }
    }
    let mut out = Vec::new();
    rec(0, n, k, &mut Vec::new(), &mut out);
    out
}

/// Certifies `m/u`-degradable agreement for `n` nodes by exhausting every
/// sender position, every fault set of size `0..=u`, and every adversary
/// table over `{V_d, 1, 2}`.
///
/// # Errors
///
/// Returns [`SearchError::TooLarge`] when any single configuration's
/// adversary space exceeds `budget_per_config` — pick a smaller `n`/`u` or
/// raise the budget.
pub fn certify(
    params: Params,
    n: usize,
    budget_per_config: u128,
) -> Result<CertificationReport, SearchError> {
    let domain = vec![Val::Default, Val::Value(1), Val::Value(2)];
    let mut configurations = 0usize;
    let mut adversaries: u128 = 0;

    for sender_idx in 0..n {
        let sender = NodeId::new(sender_idx);
        let instance =
            ByzInstance::new(n, params, sender).expect("caller guarantees the node bound");
        for f in 0..=params.u() {
            for faulty_idx in subsets(n, f) {
                let faulty: BTreeSet<NodeId> = faulty_idx.iter().map(|&i| NodeId::new(i)).collect();
                configurations += 1;
                let search = ExhaustiveSearch::new(instance, Val::Value(1), faulty, domain.clone())
                    .with_budget(budget_per_config);
                adversaries += search.combination_count();
                if let Some(witness) = search.find_violation()? {
                    return Ok(CertificationReport {
                        params,
                        n,
                        configurations,
                        adversaries,
                        violation: Some(witness),
                    });
                }
            }
        }
    }
    Ok(CertificationReport {
        params,
        n,
        configurations,
        adversaries,
        violation: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsets_counts() {
        assert_eq!(subsets(4, 0).len(), 1);
        assert_eq!(subsets(4, 2).len(), 6);
        assert_eq!(subsets(5, 3).len(), 10);
        // all distinct, all the right size
        let s = subsets(5, 2);
        let unique: BTreeSet<_> = s.iter().cloned().collect();
        assert_eq!(unique.len(), s.len());
        assert!(s.iter().all(|x| x.len() == 2));
    }

    #[test]
    fn certify_one_one_at_bound() {
        // 1/1-degradable on 4 nodes: full certification (the classic OM(1)
        // case). 4 senders x fault sets of size <= 1 -> tiny spaces.
        let report = certify(Params::new(1, 1).unwrap(), 4, 1_000_000).unwrap();
        assert!(report.certified(), "{:?}", report.violation);
        // 4 senders x (1 empty + 4 singleton) fault sets
        assert_eq!(report.configurations, 20);
        assert!(report.adversaries > 0);
    }

    #[test]
    fn certify_one_two_at_bound() {
        // 1/2-degradable on 5 nodes: every sender, every fault set up to
        // size 2, every adversary over {V_d,1,2}. This is the full
        // Theorem 1 statement for the paper's running example.
        let report = certify(Params::new(1, 2).unwrap(), 5, 20_000_000).unwrap();
        assert!(report.certified(), "{:?}", report.violation);
        // 5 senders x (1 + 5 + 10) fault sets
        assert_eq!(report.configurations, 80);
    }

    #[test]
    fn budget_is_honoured() {
        let err = certify(Params::new(1, 2).unwrap(), 5, 10).unwrap_err();
        assert!(matches!(err, SearchError::TooLarge { .. }));
    }
}
