//! The `VOTE(α, β)` primitive of Section 4, and the majority vote used by
//! the Lamport–Shostak–Pease baseline.
//!
//! > Define VOTE(α, β) of values `w_1 … w_β` as ω if at least α of the
//! > values are equal to ω, else VOTE(α, β) is defined to be the default
//! > value `V_d`. Also, in case of a tie, define VOTE(α, β) = `V_d`.
//!
//! Paper examples (reproduced in the tests below): `VOTE(2,4)` of
//! `1, 2, 2, 3` is `2`; of `1, 2, 0, 3` is `V_d`; of `1, 2, 2, 1` is `V_d`
//! because of the tie.

use crate::value::AgreementValue;
use std::collections::BTreeMap;

/// `VOTE(α, β)` where `β = values.len()`: returns the unique value with at
/// least `alpha` occurrences, or `V_d` if there is none or the threshold is
/// reached by more than one distinct value (a tie).
///
/// `V_d` itself can win the vote (e.g. when most inputs are absent); that
/// is consistent with the paper, where vote inputs at inner recursion
/// levels may legitimately be `V_d`.
///
/// The outcome is a function of the input **multiset** alone — counting
/// via a `BTreeMap` discards arrival order, so any permutation of
/// `values` votes identically (property-tested in
/// `tests/proptest_invariants.rs`). The arena engine's uniform-subtree
/// memoization ([`crate::engine`]) relies on exactly this: it may gather
/// a receiver's inputs in any convenient order, and may serve one `VOTE`
/// result to every receiver whose gather has the same multiset even
/// though each receiver assembles it differently.
///
/// # Panics
///
/// Panics if `alpha == 0` (a zero threshold is meaningless and would make
/// every value a winner).
pub fn vote<V: Clone + Ord>(alpha: usize, values: &[AgreementValue<V>]) -> AgreementValue<V> {
    assert!(alpha > 0, "vote threshold must be positive");
    let mut counts: BTreeMap<&AgreementValue<V>, usize> = BTreeMap::new();
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    let mut winner: Option<&AgreementValue<V>> = None;
    for (&v, &c) in &counts {
        if c >= alpha {
            if winner.is_some() {
                return AgreementValue::Default; // tie
            }
            winner = Some(v);
        }
    }
    winner.cloned().unwrap_or(AgreementValue::Default)
}

/// Strict-majority vote: the value held by more than half the inputs, or
/// `V_d` if none. This is the `majority` of Lamport's OM algorithm, with
/// the paper's `V_d` in the role of OM's default (`RETREAT`).
pub fn majority<V: Clone + Ord>(values: &[AgreementValue<V>]) -> AgreementValue<V> {
    if values.is_empty() {
        return AgreementValue::Default;
    }
    vote(values.len() / 2 + 1, values)
}

/// `k`-out-of-`n` vote over raw values (no default input): `Some(v)` if at
/// least `k` of the inputs equal `v` (unique by `k > n/2` or by tie-check),
/// `None` otherwise. Used by the external entity of Section 3
/// (`(m+u)`-out-of-`(2m+u)` vote).
pub fn k_of_n<V: Clone + Ord>(k: usize, values: &[V]) -> Option<V> {
    assert!(k > 0, "vote threshold must be positive");
    let mut counts: BTreeMap<&V, usize> = BTreeMap::new();
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    let mut winner = None;
    for (&v, &c) in &counts {
        if c >= k {
            if winner.is_some() {
                return None;
            }
            winner = Some(v);
        }
    }
    winner.cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Val;

    fn vals(xs: &[u64]) -> Vec<Val> {
        xs.iter().map(|&x| Val::Value(x)).collect()
    }

    #[test]
    fn paper_example_winner() {
        // VOTE(2,4) of 1, 2, 2, 3 is 2
        assert_eq!(vote(2, &vals(&[1, 2, 2, 3])), Val::Value(2));
    }

    #[test]
    fn paper_example_no_winner() {
        // VOTE(2,4) of 1, 2, 0, 3 is V_d
        assert_eq!(vote(2, &vals(&[1, 2, 0, 3])), Val::Default);
    }

    #[test]
    fn paper_example_tie() {
        // VOTE(2,4) of 1, 2, 2, 1 is V_d because of the tie
        assert_eq!(vote(2, &vals(&[1, 2, 2, 1])), Val::Default);
    }

    #[test]
    fn default_can_win() {
        let xs = vec![Val::Default, Val::Default, Val::Value(1)];
        assert_eq!(vote(2, &xs), Val::Default);
    }

    #[test]
    fn default_participates_in_ties() {
        let xs = vec![Val::Default, Val::Default, Val::Value(1), Val::Value(1)];
        assert_eq!(vote(2, &xs), Val::Default);
    }

    #[test]
    fn unanimity_threshold() {
        assert_eq!(vote(3, &vals(&[4, 4, 4])), Val::Value(4));
        assert_eq!(vote(3, &vals(&[4, 4, 5])), Val::Default);
    }

    #[test]
    fn empty_input_yields_default() {
        assert_eq!(vote::<u64>(1, &[]), Val::Default);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_panics() {
        vote::<u64>(0, &[]);
    }

    #[test]
    fn majority_basics() {
        assert_eq!(majority(&vals(&[1, 1, 2])), Val::Value(1));
        assert_eq!(majority(&vals(&[1, 2, 3])), Val::Default);
        assert_eq!(majority::<u64>(&[]), Val::Default);
        // Exactly half is not a majority:
        assert_eq!(majority(&vals(&[1, 1, 2, 2])), Val::Default);
    }

    #[test]
    fn k_of_n_basics() {
        assert_eq!(k_of_n(3, &[5u64, 5, 5, 9]), Some(5));
        assert_eq!(k_of_n(3, &[5u64, 5, 9, 9]), None);
        // Two values reaching k is a tie -> None:
        assert_eq!(k_of_n(2, &[5u64, 5, 9, 9]), None);
        assert_eq!(k_of_n::<u64>(1, &[]), None);
    }

    #[test]
    fn vote_is_permutation_invariant() {
        let a = vals(&[3, 1, 3, 2, 3]);
        let mut b = a.clone();
        b.reverse();
        assert_eq!(vote(3, &a), vote(3, &b));
    }
}
