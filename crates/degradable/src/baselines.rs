//! Baseline agreement protocols the paper builds on or compares against.
//!
//! * [`naive_broadcast`] — the sender just sends; no fault tolerance. The
//!   strawman of Section 3's motivation.
//! * [`run_om`] — Lamport–Shostak–Pease OM(m) oral-messages Byzantine
//!   agreement \[paper ref 7\]: identical message pattern to BYZ but with a
//!   strict-majority fold; satisfies D.1/D.2 for `f <= m` when `N > 3m` and
//!   promises nothing beyond `m`.
//! * [`run_crusader`] — Dolev's Crusader agreement \[paper ref 2\]: two
//!   rounds; fault-free receivers either agree on the sender's value or
//!   detect the sender as faulty (decide `V_d`), for `f < N/3`, and all
//!   non-default deciders agree.
//! * [`run_interactive_consistency`] — Pease–Shostak–Lamport interactive
//!   consistency \[paper ref 9\]: every node runs OM as sender; all
//!   fault-free nodes obtain the same vector. Provided for the Bhandari
//!   discussion in Section 2 (his impossibility result applies to IC-style
//!   algorithms, *not* to `m/u`-degradable agreement).

use crate::eig::{run_eig, Fabricate, VoteRule};
use crate::value::AgreementValue;
use crate::vote::k_of_n;
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// The no-protection baseline: every receiver takes whatever the sender
/// (or the adversary, if the sender is faulty) tells it.
pub fn naive_broadcast<V: Clone + Ord>(
    n: usize,
    sender: NodeId,
    sender_value: &AgreementValue<V>,
    faulty: &BTreeSet<NodeId>,
    fabricate: Fabricate<'_, V>,
) -> BTreeMap<NodeId, AgreementValue<V>> {
    run_eig(
        n,
        sender,
        1,
        VoteRule::Majority, // depth 1: the rule is never applied, leaves only
        sender_value,
        faulty,
        fabricate,
    )
}

/// Lamport's OM(m): `m+1` rounds, majority fold. Requires `n > 3m` for its
/// guarantee.
///
/// # Panics
///
/// Panics if `sender` is out of range.
pub fn run_om<V: Clone + Ord>(
    n: usize,
    m: usize,
    sender: NodeId,
    sender_value: &AgreementValue<V>,
    faulty: &BTreeSet<NodeId>,
    fabricate: Fabricate<'_, V>,
) -> BTreeMap<NodeId, AgreementValue<V>> {
    run_eig(
        n,
        sender,
        m + 1,
        VoteRule::Majority,
        sender_value,
        faulty,
        fabricate,
    )
}

/// Dolev's Crusader agreement: sender round, echo round, then accept a
/// value held by at least `n - 1 - t` of the receiver's `n - 1` gathered
/// values (`t` = tolerated fault count), else decide `V_d`. For `f <= t`
/// and `n > 3t`: a fault-free sender's value is accepted by all fault-free
/// receivers (at least `n-1-t` of the values are honest copies), and any
/// two fault-free receivers accepting non-default values accept the same
/// one (each accepted value is echoed by at least `n-1-t-(t-1) = n-2t`
/// fault-free receivers, and `2(n-2t) > n-t` when `n > 3t`, forcing a
/// common fault-free echoer).
pub fn run_crusader<V: Clone + Ord>(
    n: usize,
    t: usize,
    sender: NodeId,
    sender_value: &AgreementValue<V>,
    faulty: &BTreeSet<NodeId>,
    fabricate: Fabricate<'_, V>,
) -> BTreeMap<NodeId, AgreementValue<V>> {
    // Reuse the EIG plumbing at depth 2 to gather each receiver's n-1
    // values (own receipt + echoes), then apply the n-t threshold.
    use crate::path::{paths_of_length, Path};

    // Build the level-1 and level-2 value tables exactly as run_eig does,
    // but resolve with the crusader threshold instead of a recursive fold.
    let root = Path::root(sender);
    let mut level1: Vec<Option<AgreementValue<V>>> = vec![None; n];
    for r in NodeId::all(n) {
        if r == sender {
            continue;
        }
        let v = if faulty.contains(&sender) {
            fabricate(&root, r, sender_value)
        } else {
            sender_value.clone()
        };
        level1[r.index()] = Some(v);
    }
    let mut echoes: BTreeMap<Path, Vec<Option<AgreementValue<V>>>> = BTreeMap::new();
    for sigma in paths_of_length(sender, n, 1) {
        for child in sigma.children(n) {
            let relayer = child.last();
            let truthful = level1[relayer.index()]
                .clone()
                .expect("every receiver has a level-1 value");
            let mut vals = vec![None; n];
            for r in NodeId::all(n) {
                if child.contains(r) {
                    continue;
                }
                let v = if faulty.contains(&relayer) {
                    fabricate(&child, r, &truthful)
                } else {
                    truthful.clone()
                };
                vals[r.index()] = Some(v);
            }
            echoes.insert(child, vals);
        }
    }
    let threshold = n - 1 - t;
    let mut decisions = BTreeMap::new();
    for r in NodeId::all(n) {
        if r == sender {
            continue;
        }
        let mut gathered: Vec<AgreementValue<V>> = vec![level1[r.index()]
            .clone()
            .expect("receiver has its own value")];
        for (path, vals) in &echoes {
            if path.last() != r {
                if let Some(v) = vals[r.index()].clone() {
                    gathered.push(v);
                }
            }
        }
        let decision = crate::vote::vote(threshold, &gathered);
        decisions.insert(r, decision);
    }
    decisions
}

/// Behaviour function for interactive consistency: the first `NodeId` is
/// the instance's sender, the rest mirror [`crate::eig::Fabricate`].
pub type IcFabricate<'a, V> =
    &'a mut dyn FnMut(NodeId, &crate::path::Path, NodeId, &AgreementValue<V>) -> AgreementValue<V>;

/// Interactive consistency: every node acts as OM(m) sender for its own
/// value; each fault-free node ends with a vector of `n` agreed values.
///
/// `values[i]` is node `i`'s private value. Returns, per receiver, the full
/// agreed vector (the receiver's own slot holds its own value).
pub fn run_interactive_consistency<V: Clone + Ord>(
    n: usize,
    m: usize,
    values: &[AgreementValue<V>],
    faulty: &BTreeSet<NodeId>,
    fabricate: IcFabricate<'_, V>,
) -> BTreeMap<NodeId, Vec<AgreementValue<V>>> {
    assert_eq!(values.len(), n, "one private value per node");
    let mut vectors: BTreeMap<NodeId, Vec<AgreementValue<V>>> = NodeId::all(n)
        .map(|r| (r, vec![AgreementValue::Default; n]))
        .collect();
    for s in NodeId::all(n) {
        let mut fab =
            |p: &crate::path::Path, r: NodeId, t: &AgreementValue<V>| fabricate(s, p, r, t);
        let decisions = run_om(n, m, s, &values[s.index()], faulty, &mut fab);
        for (r, v) in decisions {
            vectors.get_mut(&r).expect("receiver exists")[s.index()] = v;
        }
        // The sender's own slot is its own value.
        vectors.get_mut(&s).expect("sender exists")[s.index()] = values[s.index()].clone();
    }
    vectors
}

/// The external-entity vote of Section 3: `k`-out-of-`n` over channel
/// outputs, `V_d` when no value reaches `k` (re-exported convenience over
/// [`crate::vote::k_of_n`]).
pub fn external_vote<V: Clone + Ord>(k: usize, outputs: &[V]) -> Option<V> {
    k_of_n(k, outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;
    use crate::value::Val;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn honest() -> impl FnMut(&Path, NodeId, &Val) -> Val {
        |_: &Path, _: NodeId, t: &Val| *t
    }

    #[test]
    fn naive_broadcast_trusts_sender() {
        let mut fab = honest();
        let d = naive_broadcast(4, n(0), &Val::Value(3), &BTreeSet::new(), &mut fab);
        assert!(d.values().all(|v| *v == Val::Value(3)));
    }

    #[test]
    fn naive_broadcast_splits_under_faulty_sender() {
        let faulty: BTreeSet<_> = [n(0)].into_iter().collect();
        let mut fab = |_p: &Path, r: NodeId, _t: &Val| Val::Value(r.index() as u64);
        let d = naive_broadcast(4, n(0), &Val::Value(3), &faulty, &mut fab);
        let distinct: BTreeSet<_> = d.values().collect();
        assert!(distinct.len() > 1, "no protection expected");
    }

    #[test]
    fn om1_tolerates_one_traitor() {
        // Classic 4-node OM(1): faulty receiver cannot break agreement.
        let faulty: BTreeSet<_> = [n(3)].into_iter().collect();
        let mut fab = |_p: &Path, _r: NodeId, _t: &Val| Val::Value(99);
        let d = run_om(4, 1, n(0), &Val::Value(7), &faulty, &mut fab);
        for r in [1, 2] {
            assert_eq!(d[&n(r)], Val::Value(7));
        }
    }

    #[test]
    fn om1_faulty_sender_consistency() {
        let faulty: BTreeSet<_> = [n(0)].into_iter().collect();
        let mut fab = |_p: &Path, r: NodeId, _t: &Val| Val::Value(r.index() as u64 % 2);
        let d = run_om(4, 1, n(0), &Val::Value(7), &faulty, &mut fab);
        let distinct: BTreeSet<_> = d.values().collect();
        assert_eq!(distinct.len(), 1, "IC1 violated: {d:?}");
    }

    #[test]
    fn om_breaks_beyond_m() {
        // OM(1) with two traitors on 4 nodes can disagree — contrast with
        // degradable agreement's D.3/D.4 which still constrain the split.
        let faulty: BTreeSet<_> = [n(2), n(3)].into_iter().collect();
        let mut fab = |p: &Path, r: NodeId, _t: &Val| Val::Value((p.len() + r.index()) as u64 % 3);
        let d = run_om(4, 1, n(0), &Val::Value(7), &faulty, &mut fab);
        // Receiver 1 is the only fault-free receiver; nothing to check for
        // agreement, but it may well hold a wrong value:
        assert!(d.contains_key(&n(1)));
    }

    #[test]
    fn crusader_fault_free_sender() {
        let faulty: BTreeSet<_> = [n(3)].into_iter().collect();
        let mut fab = |_p: &Path, _r: NodeId, _t: &Val| Val::Value(50);
        let d = run_crusader(4, 1, n(0), &Val::Value(7), &faulty, &mut fab);
        for r in [1, 2] {
            assert_eq!(d[&n(r)], Val::Value(7));
        }
    }

    #[test]
    fn crusader_faulty_sender_non_default_agree() {
        let faulty: BTreeSet<_> = [n(0)].into_iter().collect();
        let mut fab =
            |_p: &Path, r: NodeId, _t: &Val| Val::Value(if r.index() <= 1 { 1 } else { 2 });
        let d = run_crusader(4, 1, n(0), &Val::Value(7), &faulty, &mut fab);
        let nondefault: BTreeSet<_> = d.values().filter(|v| !v.is_default()).collect();
        assert!(nondefault.len() <= 1, "crusader property violated: {d:?}");
    }

    #[test]
    fn interactive_consistency_vectors_match() {
        let values: Vec<Val> = (0..4).map(|i| Val::Value(10 + i)).collect();
        let faulty: BTreeSet<_> = [n(3)].into_iter().collect();
        let mut fab = |_s: NodeId, _p: &Path, r: NodeId, _t: &Val| Val::Value(r.index() as u64);
        let vecs = run_interactive_consistency(4, 1, &values, &faulty, &mut fab);
        // All fault-free nodes agree on the slots of all *other* nodes.
        for s in 0..4usize {
            let slot: BTreeSet<_> = [0, 1, 2]
                .iter()
                .filter(|&&r| r != s)
                .map(|&r| vecs[&n(r)][s])
                .collect();
            assert_eq!(slot.len(), 1, "slot {s} disagrees: {vecs:?}");
        }
        // Fault-free slots carry the true values.
        #[allow(clippy::needless_range_loop)]
        for s in 0..3usize {
            for r in 0..3usize {
                if r != s {
                    assert_eq!(vecs[&n(r)][s], Val::Value(10 + s as u64));
                }
            }
        }
    }

    #[test]
    fn external_vote_threshold() {
        assert_eq!(external_vote(3, &[1u64, 1, 1, 2]), Some(1));
        assert_eq!(external_vote(3, &[1u64, 1, 2, 2]), None);
    }
}
