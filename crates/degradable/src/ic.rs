//! Degradable **interactive consistency** and the Bhandari boundary.
//!
//! Section 2 of the paper contrasts `m/u`-degradable agreement with
//! Bhandari's impossibility result: algorithms that achieve *interactive
//! consistency* (every node agrees on a vector of all `N` private values
//! \[Pease–Shostak–Lamport\]) up to `⌊(N-1)/3⌋` faults **cannot** degrade
//! gracefully beyond `N/3` faults. The paper notes this does not
//! contradict degradable agreement because (i) it concerns IC, not
//! single-sender agreement, and (ii) degradable agreement deliberately
//! gives up full agreement above `m < ⌊(N-1)/3⌋`.
//!
//! This module makes the comparison executable:
//!
//! * [`run_degradable_ic`] — `N` parallel BYZ instances, one per sender,
//!   yielding per-node vectors with degradable per-entry guarantees:
//!   * `f <= m`: all fault-free nodes hold **identical** vectors whose
//!     fault-free entries are the true values (classic IC1/IC2);
//!   * `m < f <= u`: per entry, fault-free nodes split into at most two
//!     classes (one on `V_d`), and fault-free senders' entries are the
//!     true value or `V_d` — never a fabricated value.
//! * [`check_degradable_ic`] — the corresponding condition checker.
//!
//! The experiment `bhandari_ic` shows the boundary: a max-strength classic
//! IC algorithm (`m = ⌊(N-1)/3⌋` via OM) collapses arbitrarily at
//! `f = m+1`, while degradable IC with a *smaller* `m` keeps its degraded
//! guarantee up to `u > N/3` faults — the trade Bhandari's theorem says
//! you must make.

use crate::adversary::Strategy;
use crate::byz::ByzInstance;
use crate::params::Params;
use crate::value::AgreementValue;
use serde::{Deserialize, Serialize};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

/// Result of a degradable interactive-consistency round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IcOutcome<V: Ord> {
    /// Parameters in force.
    pub params: Params,
    /// Private value of each node (ground truth; faulty senders' entries
    /// are their nominal values and are not constrained by the checker).
    pub truth: Vec<AgreementValue<V>>,
    /// The fault set.
    pub faulty: BTreeSet<NodeId>,
    /// Per fault-free node, the agreed vector of `n` entries.
    pub vectors: BTreeMap<NodeId, Vec<AgreementValue<V>>>,
}

/// Violations of the degradable-IC conditions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IcViolation<V: Ord> {
    /// `f <= m` but two fault-free nodes hold different vectors.
    VectorsDiffer {
        /// First holder.
        a: NodeId,
        /// Second holder.
        b: NodeId,
        /// The disagreeing slot.
        slot: usize,
    },
    /// A fault-free sender's entry is neither its value nor (when
    /// `f > m`) the default.
    WrongEntry {
        /// The holder of the bad entry.
        holder: NodeId,
        /// The slot (sender index).
        slot: usize,
        /// What was held.
        held: AgreementValue<V>,
    },
    /// `m < f <= u` but some slot has more than two fault-free classes or
    /// two distinct non-default classes.
    SlotSplit {
        /// The offending slot.
        slot: usize,
        /// The distinct non-default values observed.
        values: Vec<AgreementValue<V>>,
    },
}

/// Runs degradable interactive consistency: one BYZ instance per sender.
///
/// # Panics
///
/// Panics if `values.len()` violates the `2m+u+1` bound for `params`.
pub fn run_degradable_ic<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    values: &[AgreementValue<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
) -> IcOutcome<V> {
    let n = values.len();
    assert!(
        params.admits(n),
        "need at least {} nodes",
        params.min_nodes()
    );
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
    let mut vectors: BTreeMap<NodeId, Vec<AgreementValue<V>>> = NodeId::all(n)
        .filter(|r| !faulty.contains(r))
        .map(|r| (r, vec![AgreementValue::Default; n]))
        .collect();
    for s in NodeId::all(n) {
        let instance = ByzInstance::new(n, params, s).expect("bound checked");
        let scenario = crate::adversary::AdversaryRun {
            instance,
            sender_value: values[s.index()].clone(),
            strategies: strategies.clone(),
        };
        let record = scenario.run();
        for (r, v) in record.decisions {
            if let Some(vec) = vectors.get_mut(&r) {
                vec[s.index()] = v;
            }
        }
        // a fault-free sender trusts its own value
        if let Some(vec) = vectors.get_mut(&s) {
            vec[s.index()] = values[s.index()].clone();
        }
    }
    IcOutcome {
        params,
        truth: values.to_vec(),
        faulty,
        vectors,
    }
}

/// Checks the degradable-IC conditions for `outcome`. Returns the first
/// violation found, or `None` when all applicable conditions hold (or
/// `f > u`, where nothing is promised).
pub fn check_degradable_ic<V: Clone + Ord>(outcome: &IcOutcome<V>) -> Option<IcViolation<V>> {
    let f = outcome.faulty.len();
    let (m, u) = (outcome.params.m(), outcome.params.u());
    if f > u {
        return None;
    }
    let n = outcome.truth.len();
    let holders: Vec<NodeId> = outcome.vectors.keys().copied().collect();

    if f <= m {
        // identical vectors everywhere...
        for w in holders.windows(2) {
            let (a, b) = (w[0], w[1]);
            for slot in 0..n {
                if outcome.vectors[&a][slot] != outcome.vectors[&b][slot] {
                    return Some(IcViolation::VectorsDiffer { a, b, slot });
                }
            }
        }
        // ...and true entries for fault-free senders.
        for &holder in &holders {
            for slot in 0..n {
                let sender = NodeId::new(slot);
                if !outcome.faulty.contains(&sender) && holder != sender {
                    let held = &outcome.vectors[&holder][slot];
                    if *held != outcome.truth[slot] {
                        return Some(IcViolation::WrongEntry {
                            holder,
                            slot,
                            held: held.clone(),
                        });
                    }
                }
            }
        }
        return None;
    }

    // m < f <= u: per slot, entries for fault-free senders must be the true
    // value or V_d, and non-default entries must agree per slot.
    for slot in 0..n {
        let sender = NodeId::new(slot);
        let sender_ok = !outcome.faulty.contains(&sender);
        let mut nondefault: BTreeSet<AgreementValue<V>> = BTreeSet::new();
        for &holder in &holders {
            if holder == sender {
                continue;
            }
            let held = &outcome.vectors[&holder][slot];
            if sender_ok && *held != outcome.truth[slot] && !held.is_default() {
                return Some(IcViolation::WrongEntry {
                    holder,
                    slot,
                    held: held.clone(),
                });
            }
            if !held.is_default() {
                nondefault.insert(held.clone());
            }
        }
        if nondefault.len() > 1 {
            return Some(IcViolation::SlotSplit {
                slot,
                values: nondefault.into_iter().collect(),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Val;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn values(nn: usize) -> Vec<Val> {
        (0..nn).map(|i| Val::Value(100 + i as u64)).collect()
    }

    #[test]
    fn fault_free_ic_is_exact() {
        let params = Params::new(1, 2).unwrap();
        let out = run_degradable_ic(params, &values(5), &BTreeMap::new());
        assert!(check_degradable_ic(&out).is_none());
        for vec in out.vectors.values() {
            assert_eq!(*vec, values(5));
        }
    }

    #[test]
    fn one_fault_identical_vectors() {
        let params = Params::new(1, 2).unwrap();
        let strategies: BTreeMap<_, _> = [(
            n(4),
            Strategy::TwoFaced {
                even: Val::Value(1),
                odd: Val::Value(2),
            },
        )]
        .into_iter()
        .collect();
        let out = run_degradable_ic(params, &values(5), &strategies);
        assert!(check_degradable_ic(&out).is_none(), "{out:?}");
        // All fault-free vectors identical (IC with f <= m):
        let vecs: BTreeSet<_> = out.vectors.values().cloned().collect();
        assert_eq!(vecs.len(), 1);
    }

    #[test]
    fn two_faults_degrade_gracefully() {
        let params = Params::new(1, 2).unwrap();
        let strategies: BTreeMap<_, _> = [
            (n(3), Strategy::ConstantLie(Val::Value(9))),
            (n(4), Strategy::ConstantLie(Val::Value(9))),
        ]
        .into_iter()
        .collect();
        let out = run_degradable_ic(params, &values(5), &strategies);
        assert!(check_degradable_ic(&out).is_none(), "{out:?}");
    }

    #[test]
    fn beyond_u_unchecked() {
        let params = Params::new(1, 2).unwrap();
        let strategies: BTreeMap<_, _> = (2..5)
            .map(|i| (n(i), Strategy::ConstantLie(Val::Value(9))))
            .collect();
        let out = run_degradable_ic(params, &values(5), &strategies);
        assert!(
            check_degradable_ic(&out).is_none(),
            "f > u promises nothing"
        );
    }

    #[test]
    fn battery_sweep_never_violates() {
        let params = Params::new(1, 4).unwrap();
        for f in 0..=4usize {
            for (name, strat) in Strategy::battery(100, 200, 3) {
                let strategies: BTreeMap<_, _> =
                    (7 - f..7).map(|i| (n(i), strat.clone())).collect();
                let out = run_degradable_ic(params, &values(7), &strategies);
                assert!(
                    check_degradable_ic(&out).is_none(),
                    "f={f} strategy {name}: {:?}",
                    check_degradable_ic(&out)
                );
            }
        }
    }

    #[test]
    fn checker_catches_planted_wrong_entry() {
        let params = Params::new(1, 2).unwrap();
        let mut out = run_degradable_ic(params, &values(5), &BTreeMap::new());
        // Plant a fabricated entry for a fault-free sender and mark two
        // nodes faulty so the degraded branch applies.
        out.faulty.insert(n(3));
        out.faulty.insert(n(4));
        out.vectors.remove(&n(3));
        out.vectors.remove(&n(4));
        out.vectors.get_mut(&n(1)).unwrap()[0] = Val::Value(999);
        assert!(matches!(
            check_degradable_ic(&out),
            Some(IcViolation::WrongEntry { slot: 0, .. })
        ));
    }

    #[test]
    fn checker_catches_vector_divergence_below_m() {
        let params = Params::new(1, 2).unwrap();
        let mut out = run_degradable_ic(params, &values(5), &BTreeMap::new());
        out.faulty.insert(n(4));
        out.vectors.remove(&n(4));
        out.vectors.get_mut(&n(1)).unwrap()[4] = Val::Value(999);
        assert!(matches!(
            check_degradable_ic(&out),
            Some(IcViolation::VectorsDiffer { .. }) | Some(IcViolation::WrongEntry { .. })
        ));
    }
}
