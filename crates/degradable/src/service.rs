//! Batched agreement: many concurrent BYZ instances multiplexed over one
//! message-passing execution.
//!
//! A deployed system rarely runs one agreement at a time — interactive
//! consistency needs `N` instances (one per sender), a replicated log
//! pipelines slots, and the channel systems of Section 3 agree on a stream
//! of sensor readings. [`run_batch`] runs any number of instances
//! *concurrently* on the `simnet` round engine: every envelope carries an
//! instance id, all instances advance in lock-step (they share the `m+1`
//! round structure), and each node folds one [`EigView`] per instance at
//! the end.
//!
//! The faulty nodes' strategies apply uniformly across instances (the
//! same Byzantine node misbehaves everywhere), which matches the fault
//! model: `f` counts *nodes*, not (node, instance) pairs.
//!
//! Integration tests assert that a batch is decision-identical to running
//! the same instances one at a time — multiplexing is purely a transport
//! optimization: one engine run instead of `K`, with the same total
//! message count.

use crate::adversary::Strategy;
use crate::eig::EigView;
use crate::params::Params;
use crate::path::Path;
use crate::value::AgreementValue;
use simnet::{NodeId, RoundEngine, Topology};
use std::collections::BTreeMap;
use std::hash::Hash;

/// One instance of a batch: who sends what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchInstance<V> {
    /// The designated sender.
    pub sender: NodeId,
    /// The sender's value.
    pub value: AgreementValue<V>,
}

/// A multiplexed protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchMsg<V> {
    /// Which instance this envelope belongs to.
    pub instance: u32,
    /// Relay path within that instance.
    pub path: Path,
    /// Claimed value.
    pub value: AgreementValue<V>,
}

/// Result of a batched execution.
#[derive(Debug, Clone)]
pub struct BatchRun<V: Ord> {
    /// Per instance (in input order): every receiver's decision.
    pub decisions: Vec<BTreeMap<NodeId, AgreementValue<V>>>,
    /// Network statistics of the single multiplexed engine run.
    pub net: simnet::Outcome,
}

/// Runs `instances` concurrently over one engine execution.
///
/// # Panics
///
/// Panics if any instance's sender is out of range, or `n` violates the
/// node bound for `params`.
pub fn run_batch<V: Clone + Ord + Hash>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
) -> BatchRun<V> {
    assert!(
        params.admits(n),
        "need at least {} nodes",
        params.min_nodes()
    );
    let depth = params.rounds();
    let rule = crate::eig::VoteRule::Degradable { m: params.m() };
    for inst in instances {
        assert!(
            inst.sender.index() < n,
            "sender {} out of range",
            inst.sender
        );
    }
    let mut engine: RoundEngine<BatchMsg<V>> = RoundEngine::new(Topology::complete(n), seed);

    // views[node][instance]
    let mut views: Vec<Vec<EigView<V>>> = (0..n)
        .map(|i| {
            instances
                .iter()
                .map(|_| EigView::new(n, depth, NodeId::new(i)))
                .collect()
        })
        .collect();

    let claim_for = |me: NodeId,
                     child: &Path,
                     receiver: NodeId,
                     truthful: &AgreementValue<V>|
     -> Option<AgreementValue<V>> {
        match strategies.get(&me) {
            None => Some(truthful.clone()),
            Some(Strategy::Silent) => None,
            Some(s) => Some(s.claim(child, receiver, truthful)),
        }
    };

    let net = engine.run_with(depth + 1, |i, ctx| {
        let me = NodeId::new(i);
        let round = ctx.round();
        let mut to_relay: Vec<(u32, Path, AgreementValue<V>)> = Vec::new();
        if round >= 1 {
            for (src, msg) in ctx.inbox().to_vec() {
                let idx = msg.instance as usize;
                let valid = idx < instances.len()
                    && msg.path.len() == round
                    && msg.path.last() == src
                    && !msg.path.contains(me);
                if !valid {
                    continue;
                }
                views[i][idx].record(msg.path.clone(), msg.value.clone());
                if round < depth {
                    to_relay.push((msg.instance, msg.path, msg.value));
                }
            }
        }
        if round == 0 {
            for (idx, inst) in instances.iter().enumerate() {
                if inst.sender != me {
                    continue;
                }
                let root = Path::root(inst.sender);
                for r in NodeId::all(n) {
                    if r == me {
                        continue;
                    }
                    if let Some(v) = claim_for(me, &root, r, &inst.value) {
                        ctx.send(
                            r,
                            BatchMsg {
                                instance: idx as u32,
                                path: root.clone(),
                                value: v,
                            },
                        );
                    }
                }
            }
        } else {
            for (instance, path, value) in to_relay {
                let child = path.child(me);
                for r in NodeId::all(n) {
                    if child.contains(r) {
                        continue;
                    }
                    if let Some(v) = claim_for(me, &child, r, &value) {
                        ctx.send(
                            r,
                            BatchMsg {
                                instance,
                                path: child.clone(),
                                value: v,
                            },
                        );
                    }
                }
            }
        }
    });

    let decisions = instances
        .iter()
        .enumerate()
        .map(|(idx, inst)| {
            NodeId::all(n)
                .filter(|r| *r != inst.sender)
                .map(|r| (r, views[r.index()][idx].resolve(inst.sender, rule)))
                .collect()
        })
        .collect();
    BatchRun { decisions, net }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byz::ByzInstance;
    use crate::protocol::run_protocol;
    use crate::value::Val;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn params() -> Params {
        Params::new(1, 2).unwrap()
    }

    #[test]
    fn batch_matches_sequential_runs() {
        let strategies: BTreeMap<NodeId, Strategy<u64>> = [
            (n(3), Strategy::ConstantLie(Val::Value(9))),
            (
                n(4),
                Strategy::TwoFaced {
                    even: Val::Value(1),
                    odd: Val::Value(2),
                },
            ),
        ]
        .into_iter()
        .collect();
        let instances: Vec<BatchInstance<u64>> = vec![
            BatchInstance {
                sender: n(0),
                value: Val::Value(10),
            },
            BatchInstance {
                sender: n(1),
                value: Val::Value(20),
            },
            BatchInstance {
                sender: n(4),
                value: Val::Value(30),
            },
        ];
        let batch = run_batch(params(), 5, &instances, &strategies, 1);
        for (i, inst) in instances.iter().enumerate() {
            let single = ByzInstance::new(5, params(), inst.sender).unwrap();
            let solo = run_protocol(&single, &inst.value, &strategies, 1);
            assert_eq!(batch.decisions[i], solo.decisions, "instance {i}");
        }
    }

    #[test]
    fn batch_message_count_is_sum_of_singles() {
        let instances: Vec<BatchInstance<u64>> = (0..4)
            .map(|i| BatchInstance {
                sender: n(i),
                value: Val::Value(i as u64),
            })
            .collect();
        let batch = run_batch(params(), 5, &instances, &BTreeMap::new(), 1);
        let single = crate::analysis::message_complexity(5, params().rounds());
        assert_eq!(batch.net.sent as u128, 4 * single);
        // ... but only one engine run: depth+1 rounds total.
        assert_eq!(batch.net.rounds_run, params().rounds() + 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = run_batch::<u64>(params(), 5, &[], &BTreeMap::new(), 1);
        assert!(batch.decisions.is_empty());
        assert_eq!(batch.net.sent, 0);
    }

    #[test]
    fn interactive_consistency_via_batch() {
        // One instance per sender = IC; every fault-free node's vector
        // must match the dedicated IC runner's (degradable variant).
        let values: Vec<Val> = (0..5).map(|i| Val::Value(100 + i as u64)).collect();
        let strategies: BTreeMap<NodeId, Strategy<u64>> =
            [(n(4), Strategy::ConstantLie(Val::Value(9)))]
                .into_iter()
                .collect();
        let instances: Vec<BatchInstance<u64>> = (0..5)
            .map(|i| BatchInstance {
                sender: n(i),
                value: values[i],
            })
            .collect();
        let batch = run_batch(params(), 5, &instances, &strategies, 1);
        let ic = crate::ic::run_degradable_ic(params(), &values, &strategies);
        for (slot, decisions) in batch.decisions.iter().enumerate() {
            for (r, vec) in &ic.vectors {
                if *r == n(slot) {
                    continue; // senders trust themselves in the IC runner
                }
                assert_eq!(decisions[r], vec[slot], "slot {slot}, receiver {r}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sender_range_checked() {
        let instances = vec![BatchInstance {
            sender: n(9),
            value: Val::Value(1),
        }];
        run_batch(params(), 5, &instances, &BTreeMap::new(), 1);
    }
}
