//! Batched agreement: many concurrent BYZ instances multiplexed over one
//! message-passing execution, folded through the shared arena engine.
//!
//! A deployed system rarely runs one agreement at a time — interactive
//! consistency needs `N` instances (one per sender), a replicated log
//! pipelines slots, and the channel systems of Section 3 agree on a stream
//! of sensor readings. [`run_batch`] runs any number of instances
//! *concurrently* on the `simnet` round engine: every envelope carries an
//! instance id, all instances advance in lock-step (they share the `m+1`
//! round structure), and decisions come from one memoized bottom-up
//! arena resolution per instance ([`crate::engine`]) instead of one
//! recursive [`EigView`] fold per (receiver, instance).
//!
//! The path structure of an instance depends only on `(n, sender, depth)`,
//! never on slot values, so instances that share a sender share one
//! [`crate::engine::PathArena`] (and [`crate::engine::EigEngine`]): a
//! K-slot stream from one sender builds its arena exactly once
//! ([`BatchRun::arena_builds`] counts the builds). Each instance fills its
//! own [`crate::engine::EigStore`] — node `i`'s local view is column `i`.
//!
//! The faulty nodes' strategies apply uniformly across instances (the
//! same Byzantine node misbehaves everywhere), which matches the fault
//! model: `f` counts *nodes*, not (node, instance) pairs.
//!
//! Inbox validation mirrors [`crate::protocol`] — and adds one batch-only
//! check: the envelope's path root must be the claimed instance's sender.
//! Without it a Byzantine relayer can *re-tag* a genuine envelope with a
//! different instance id (cross-instance spoofing); the resolution never
//! reads foreign-rooted slots, but honest nodes would still relay the
//! spoof and amplify it. Rejected spoofs are counted in
//! [`BatchRun::spoofs_rejected`].
//!
//! Link-level chaos plans install through [`run_batch_with`] exactly as
//! for [`crate::protocol::run_protocol_with`]: duplicated envelopes fold
//! idempotently (first write per (instance, path, receiver) slot wins,
//! mirroring the per-path-index dedup of [`crate::sparse`]), reordered
//! envelopes that arrive late still fold as direct observations but are
//! never relayed, and corruption reads as absence (oral-message axiom).
//!
//! Integration tests assert that a batch is decision-identical to running
//! the same instances one at a time — multiplexing is purely a transport
//! optimization: one engine run instead of `K`, with the same total
//! message count. [`run_batch_reference`] preserves the legacy
//! per-(receiver, instance) `EigView` executor verbatim as the
//! differential oracle and the one-at-a-time fold baseline measured by
//! experiment E16 (`bench/src/bin/batch_throughput.rs`).

use crate::adversary::Strategy;
use crate::eig::{prunable_path, EigView};
use crate::engine::{EigEngine, EigStore};
use crate::params::Params;
use crate::path::Path;
use crate::value::AgreementValue;
use obs::{Obs, SpanRecord};
use simnet::{EigPerf, NodeId, RoundEngine, Topology};
use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

/// Bucket bounds for the per-instance message-count histogram
/// (`svc.instance.messages` and the regime split): powers of four from 8
/// to half a million, wide enough for E16-scale batches.
pub const SVC_MSG_BOUNDS: &[u64] = &[8, 32, 128, 512, 2048, 8192, 32768, 131_072, 524_288];

/// Bucket bounds for the per-instance logical-cost histogram
/// (`svc.instance.logical`): votes settled per instance.
pub const SVC_LOGICAL_BOUNDS: &[u64] = &[16, 64, 256, 1024, 4096, 16384, 65536, 262_144, 1_048_576];

/// Bucket bounds for the per-instance wall-latency histogram
/// (`svc.instance.wall_ns`), 1µs to 10s. The name contains `wall`, so
/// [`obs::ScrubTiming`] on the registry removes it under `--no-timing` —
/// wall latency is carried for humans, never compared.
pub const SVC_WALL_BOUNDS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// One instance of a batch: who sends what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchInstance<V> {
    /// The designated sender.
    pub sender: NodeId,
    /// The sender's value.
    pub value: AgreementValue<V>,
}

/// A multiplexed protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchMsg<V> {
    /// Which instance this envelope belongs to.
    pub instance: u32,
    /// Relay path within that instance.
    pub path: Path,
    /// Claimed value.
    pub value: AgreementValue<V>,
}

/// Result of a batched execution.
#[derive(Debug, Clone)]
pub struct BatchRun<V: Ord> {
    /// Per instance (in input order): every receiver's decision.
    pub decisions: Vec<BTreeMap<NodeId, AgreementValue<V>>>,
    /// Network statistics of the single multiplexed engine run; `net.eig`
    /// carries the [`EigPerf`] counters aggregated across all instances.
    pub net: simnet::Outcome,
    /// Distinct arenas built — one per distinct sender, at most the
    /// instance count. A K-slot single-sender stream reports 1.
    /// [`run_batch_reference`] builds no arenas and reports 0.
    pub arena_builds: usize,
    /// Envelopes rejected because their path root was not the claimed
    /// instance's sender (cross-instance spoofing by a Byzantine relayer
    /// or a corrupting link).
    pub spoofs_rejected: u64,
}

/// One observable moment of a batched execution, as
/// [`run_batch_traced`] reports it — the raw material for replaying a
/// batch through one `SpecChecker` per instance.
#[derive(Debug, Clone)]
pub enum BatchTraceEvent<V> {
    /// An envelope claiming `instance` was handed to `to`, folding at
    /// the close of `round`. Emitted for every inbox envelope with an
    /// in-range instance id, *before* any validation — the consumer's
    /// checker performs its own classification (a cross-instance spoof
    /// reads as malformed there too, since its path is not rooted at
    /// the claimed instance's sender).
    Deliver {
        /// The claimed instance (in input order).
        instance: usize,
        /// The receiving node.
        to: NodeId,
        /// Transport-authenticated source.
        src: NodeId,
        /// The relay path.
        path: Path,
        /// The claimed value.
        value: AgreementValue<V>,
        /// The round at whose close this envelope folds.
        round: usize,
    },
    /// Node `node` closed `round` for `instance`, emitting `sends`
    /// (pre-chaos, possibly empty — emitted for every instance × node ×
    /// round so phase tracking stays exact).
    Close {
        /// The instance (in input order).
        instance: usize,
        /// The closing node.
        node: NodeId,
        /// The closed round.
        round: usize,
        /// Every send of this instance at this close.
        sends: Vec<(NodeId, Path, AgreementValue<V>)>,
    },
}

/// Sending a fabricated (or truthful) value to one receiver; Silent
/// strategies suppress the message entirely.
fn claim_for<V: Clone + Ord + Hash>(
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    me: NodeId,
    child: &Path,
    receiver: NodeId,
    truthful: &AgreementValue<V>,
) -> Option<AgreementValue<V>> {
    match strategies.get(&me) {
        None => Some(truthful.clone()),
        Some(Strategy::Silent) => None,
        Some(s) => Some(s.claim(child, receiver, truthful)),
    }
}

fn check_batch_bounds<V>(params: Params, n: usize, instances: &[BatchInstance<V>]) {
    assert!(
        params.admits(n),
        "need at least {} nodes",
        params.min_nodes()
    );
    for inst in instances {
        assert!(
            inst.sender.index() < n,
            "sender {} out of range",
            inst.sender
        );
    }
}

/// Runs `instances` concurrently over one engine execution.
///
/// # Panics
///
/// Panics if any instance's sender is out of range, or `n` violates the
/// node bound for `params`.
pub fn run_batch<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
) -> BatchRun<V> {
    run_batch_with(params, n, instances, strategies, seed, |e| e)
}

/// Like [`run_batch`], with a hook to customize the engine (link-fault
/// plan, latency model, corruptor, tracing) before the run.
pub fn run_batch_with<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    engine_setup: impl FnOnce(RoundEngine<BatchMsg<V>>) -> RoundEngine<BatchMsg<V>>,
) -> BatchRun<V> {
    run_batch_observed(
        params,
        n,
        instances,
        strategies,
        seed,
        1,
        engine_setup,
        &mut Obs::disabled(),
    )
    .0
}

/// Like [`run_batch_with`], additionally materializing every receiver's
/// [`EigView`] per instance from the shared stores, so differential
/// tests can re-resolve the exact same observations through
/// [`EigView::resolve`] and compare against the arena fold
/// (`tests/batch_equivalence.rs` does this under chaos plans).
pub fn run_batch_full<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    engine_setup: impl FnOnce(RoundEngine<BatchMsg<V>>) -> RoundEngine<BatchMsg<V>>,
) -> (BatchRun<V>, Vec<BTreeMap<NodeId, EigView<V>>>) {
    let (run, engines, engine_idx, stores) = run_batch_observed(
        params,
        n,
        instances,
        strategies,
        seed,
        1,
        engine_setup,
        &mut Obs::disabled(),
    );
    let views = materialize_views(params, n, instances, &engines, &engine_idx, &stores);
    (run, views)
}

/// Rebuilds every receiver's per-instance [`EigView`] from the shared
/// stores (node `r`'s view of instance `k` is column `r` of `stores[k]`).
fn materialize_views<V: Clone + Ord>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    engines: &[EigEngine],
    engine_idx: &[usize],
    stores: &[EigStore<V>],
) -> Vec<BTreeMap<NodeId, EigView<V>>> {
    let depth = params.rounds();
    instances
        .iter()
        .enumerate()
        .map(|(k, inst)| {
            let arena = engines[engine_idx[k]].arena();
            NodeId::all(n)
                .filter(|r| *r != inst.sender)
                .map(|r| {
                    let mut view = EigView::new(n, depth, r);
                    for (id, v) in stores[k].column(r) {
                        view.record(arena.resolve_path(id), v.clone());
                    }
                    (r, view)
                })
                .collect()
        })
        .collect()
}

/// [`run_batch_full`] with conformance hooks: optional certified-fault-set
/// early stopping (armed against the strategy key set, mirroring
/// [`crate::NodeStateMachine::with_early_stop`]) and a trace callback
/// receiving one [`BatchTraceEvent`] per delivery and per
/// instance × node × round close — everything a per-instance
/// `SpecChecker` replay needs.
#[allow(clippy::too_many_arguments)]
pub fn run_batch_traced<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    early_stop: bool,
    engine_setup: impl FnOnce(RoundEngine<BatchMsg<V>>) -> RoundEngine<BatchMsg<V>>,
    trace: &mut dyn FnMut(BatchTraceEvent<V>),
) -> (BatchRun<V>, Vec<BTreeMap<NodeId, EigView<V>>>) {
    let (run, engines, engine_idx, stores) = run_batch_core(
        params,
        n,
        instances,
        strategies,
        seed,
        1,
        early_stop,
        Some(trace),
        engine_setup,
        &mut Obs::disabled(),
    );
    let views = materialize_views(params, n, instances, &engines, &engine_idx, &stores);
    (run, views)
}

/// The observed core of the batch service: one multiplexed
/// [`RoundEngine`] run fills one [`EigStore`] per instance, then each
/// instance resolves bottom-up (with `workers` resolution threads)
/// through its sender's shared arena.
///
/// Records a `batch.fill` span over the engine run (logical cost = slots
/// materialized across all instances), one `batch.resolve` span per
/// instance (logical cost = votes settled), and `batch.*` registry
/// counters, plus the aggregated `eig.*` counters. With a disabled
/// recorder this is exactly [`run_batch_with`].
///
/// Returns the run plus the engines, the instance→engine index map, and
/// the per-instance stores (so [`run_batch_full`] can materialize
/// per-receiver views without re-executing).
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn run_batch_observed<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    workers: usize,
    engine_setup: impl FnOnce(RoundEngine<BatchMsg<V>>) -> RoundEngine<BatchMsg<V>>,
    obs: &mut Obs,
) -> (BatchRun<V>, Vec<EigEngine>, Vec<usize>, Vec<EigStore<V>>) {
    run_batch_core(
        params,
        n,
        instances,
        strategies,
        seed,
        workers,
        false,
        None,
        engine_setup,
        obs,
    )
}

/// [`run_batch_observed`] with certified-fault-set early stopping armed
/// (the [`run_batch_traced`] hook), so observed runs attribute actual
/// early-stop savings through the `svc.early_stop.*` counters instead
/// of recording zeros.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn run_batch_observed_early_stop<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    workers: usize,
    engine_setup: impl FnOnce(RoundEngine<BatchMsg<V>>) -> RoundEngine<BatchMsg<V>>,
    obs: &mut Obs,
) -> (BatchRun<V>, Vec<EigEngine>, Vec<usize>, Vec<EigStore<V>>) {
    run_batch_core(
        params,
        n,
        instances,
        strategies,
        seed,
        workers,
        true,
        None,
        engine_setup,
        obs,
    )
}

#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn run_batch_core<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    workers: usize,
    early_stop: bool,
    trace: Option<&mut dyn FnMut(BatchTraceEvent<V>)>,
    engine_setup: impl FnOnce(RoundEngine<BatchMsg<V>>) -> RoundEngine<BatchMsg<V>>,
    obs: &mut Obs,
) -> (BatchRun<V>, Vec<EigEngine>, Vec<usize>, Vec<EigStore<V>>) {
    check_batch_bounds(params, n, instances);
    let depth = params.rounds();
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();

    // One arena (and engine) per *distinct sender*: the path structure
    // depends only on (n, sender, depth), so every instance sharing a
    // sender shares the interned tree.
    let mut engine_of_sender: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut engines: Vec<EigEngine> = Vec::new();
    let mut engine_idx: Vec<usize> = Vec::with_capacity(instances.len());
    for inst in instances {
        let next = engines.len();
        let e = *engine_of_sender.entry(inst.sender).or_insert(next);
        if e == next {
            let mut eng = EigEngine::new(n, inst.sender, depth).with_workers(workers);
            if early_stop {
                eng = eng.with_early_stop(&faulty);
            }
            engines.push(eng);
        }
        engine_idx.push(e);
    }
    let arena_builds = engines.len();

    // One slot table per instance, shared by all nodes: node `i`'s local
    // view of instance `k` is column `i` of `stores[k]`.
    let mut stores: Vec<EigStore<V>> = instances
        .iter()
        .enumerate()
        .map(|(k, _)| EigStore::new(engines[engine_idx[k]].arena()))
        .collect();

    let run = fill_and_resolve(
        params,
        n,
        instances,
        strategies,
        seed,
        early_stop,
        trace,
        engine_setup,
        obs,
        &engines,
        &engine_idx,
        &mut stores,
        arena_builds,
        1,
    );
    (run, engines, engine_idx, stores)
}

/// The execution shared by the one-shot batch entry points and the
/// persistent [`ServiceState`]: one multiplexed fill over the provided
/// (fresh or pooled) engines and stores, then one memoized bottom-up
/// resolve per instance. With `shard_workers > 1` the resolution is
/// sharded *by sender* across worker threads — every instance of a
/// sender resolves on the thread that owns its arena — and results are
/// folded back in instance order, so decisions, deterministic counters
/// and spans are independent of the shard count (the engine-internal
/// level fan-out of [`EigEngine::with_workers`] covers the
/// `shard_workers == 1` one-shot path instead).
#[allow(clippy::too_many_arguments)]
fn fill_and_resolve<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    early_stop: bool,
    mut trace: Option<&mut dyn FnMut(BatchTraceEvent<V>)>,
    engine_setup: impl FnOnce(RoundEngine<BatchMsg<V>>) -> RoundEngine<BatchMsg<V>>,
    obs: &mut Obs,
    engines: &[EigEngine],
    engine_idx: &[usize],
    stores: &mut [EigStore<V>],
    arena_builds: usize,
    shard_workers: usize,
) -> BatchRun<V> {
    let depth = params.rounds();
    let rule = crate::eig::VoteRule::Degradable { m: params.m() };
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
    let mut spoofs_rejected = 0u64;
    // Per-instance protocol sends, accumulated during the fill so the
    // end-to-end histograms below can attribute network cost to the
    // instance that incurred it.
    let mut inst_sent: Vec<u64> = vec![0; instances.len()];

    let mut engine = engine_setup(RoundEngine::new(Topology::complete(n), seed));
    let fill_timer = obs.span(
        "batch.fill",
        vec![
            ("n", n as u64),
            ("instances", instances.len() as u64),
            ("depth", depth as u64),
        ],
    );
    let fill_start = std::time::Instant::now();
    let mut net = engine.run_with(depth + 1, |i, ctx| {
        let me = NodeId::new(i);
        let round = ctx.round();
        let mut traced_sends: Vec<Vec<(NodeId, Path, AgreementValue<V>)>> = if trace.is_some() {
            vec![Vec::new(); instances.len()]
        } else {
            Vec::new()
        };
        // 1. Record this round's deliveries (level = round).
        let mut to_relay: Vec<(u32, Path, AgreementValue<V>)> = Vec::new();
        if round >= 1 {
            for (src, msg) in ctx.inbox().to_vec() {
                let idx = msg.instance as usize;
                if idx < instances.len() {
                    if let Some(trace) = trace.as_deref_mut() {
                        trace(BatchTraceEvent::Deliver {
                            instance: idx,
                            to: me,
                            src,
                            path: msg.path.clone(),
                            value: msg.value.clone(),
                            round,
                        });
                    }
                }
                // A path of level `< round` is an envelope the network
                // delivered late (link reordering): its relay slot has
                // passed, but the direct observation is still genuine, so
                // it folds into the store. Anything else malformed —
                // impersonated or self-referential paths, or paths from a
                // future level — is dropped (treated as absent).
                let valid = idx < instances.len()
                    && !msg.path.is_empty()
                    && msg.path.len() <= round
                    && msg.path.last() == src
                    && !msg.path.contains(me);
                if !valid {
                    continue; // malformed claim: treated as absent
                }
                // Cross-instance spoofing: the claimed instance pins the
                // path root. A mismatched root is a re-tagged envelope
                // and must read as absent *before* any recording, so a
                // spoof never consumes relay bandwidth.
                if msg.path.sender() != instances[idx].sender {
                    spoofs_rejected += 1;
                    continue;
                }
                let eng = &engines[engine_idx[idx]];
                // Only sender-rooted repetition-free labels intern; the
                // resolution never reads anything else.
                let Some(id) = eng.arena().intern(&msg.path) else {
                    continue;
                };
                let on_time = msg.path.len() == round;
                // First write wins: duplicated envelopes (link-level
                // duplication, or a late copy overtaken by chaos) are
                // discarded by the idempotent fold.
                let fresh = stores[idx].record(eng.arena(), id, me, msg.value.clone());
                if fresh && on_time && round < depth {
                    to_relay.push((msg.instance, msg.path, msg.value));
                }
            }
        }
        // 2. Send this round's messages.
        if round == 0 {
            for (idx, inst) in instances.iter().enumerate() {
                if inst.sender != me {
                    continue;
                }
                let root = Path::root(inst.sender);
                for r in NodeId::all(n) {
                    if r == me {
                        continue;
                    }
                    if let Some(v) = claim_for(strategies, me, &root, r, &inst.value) {
                        if !traced_sends.is_empty() {
                            traced_sends[idx].push((r, root.clone(), v.clone()));
                        }
                        inst_sent[idx] += 1;
                        ctx.send(
                            r,
                            BatchMsg {
                                instance: idx as u32,
                                path: root.clone(),
                                value: v,
                            },
                        );
                    }
                }
            }
        } else {
            for (instance, path, value) in to_relay {
                // Certified-fault-set early stopping, mirroring
                // `NodeStateMachine`: a path that exhausts the fault set
                // with a fault-free last relayer fills its subtree
                // uniformly, so the fan-out below it is skipped.
                if early_stop && prunable_path(&path, &faulty) {
                    continue;
                }
                let child = path.child(me);
                for r in NodeId::all(n) {
                    if child.contains(r) {
                        continue;
                    }
                    if let Some(v) = claim_for(strategies, me, &child, r, &value) {
                        if !traced_sends.is_empty() {
                            traced_sends[instance as usize].push((r, child.clone(), v.clone()));
                        }
                        inst_sent[instance as usize] += 1;
                        ctx.send(
                            r,
                            BatchMsg {
                                instance,
                                path: child.clone(),
                                value: v,
                            },
                        );
                    }
                }
            }
        }
        if let Some(trace) = trace.as_deref_mut() {
            for (idx, sends) in traced_sends.into_iter().enumerate() {
                trace(BatchTraceEvent::Close {
                    instance: idx,
                    node: me,
                    round,
                    sends,
                });
            }
        }
    });
    let fill_nanos = fill_start.elapsed().as_nanos() as u64;
    obs.finish(fill_timer, stores.iter().map(EigStore::materialized).sum());

    // 3. Memoized bottom-up resolve, one pass per instance over its
    // sender's shared arena — inline, or sharded by sender across
    // `shard_workers` threads (results fold back in instance order, so
    // everything but wall time is shard-count-independent).
    let timing = obs.is_enabled();
    let mut resolved: Vec<Option<(crate::engine::EngineRun<V>, u64)>> =
        (0..instances.len()).map(|_| None).collect();
    if shard_workers <= 1 {
        for (k, slot) in resolved.iter_mut().enumerate() {
            let resolve_start = timing.then(std::time::Instant::now);
            let run = engines[engine_idx[k]].resolve(rule, &stores[k]);
            let wall = resolve_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
            *slot = Some((run, wall));
        }
    } else {
        let mut shards: Vec<Vec<usize>> = vec![Vec::new(); shard_workers];
        for k in 0..instances.len() {
            shards[engine_idx[k] % shard_workers].push(k);
        }
        let stores_ref: &[EigStore<V>] = stores;
        std::thread::scope(|s| {
            let handles: Vec<_> = shards
                .iter()
                .filter(|shard| !shard.is_empty())
                .map(|shard| {
                    s.spawn(move || {
                        shard
                            .iter()
                            .map(|&k| {
                                let resolve_start = timing.then(std::time::Instant::now);
                                let run = engines[engine_idx[k]].resolve(rule, &stores_ref[k]);
                                let wall =
                                    resolve_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
                                (k, run, wall)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (k, run, wall) in handle.join().expect("resolve shard panicked") {
                    resolved[k] = Some((run, wall));
                }
            }
        });
    }

    // The fault regime is a whole-batch property: f = |faulty| nodes run a
    // strategy, so every instance lands on the same side of the paper's
    // degradation boundary (full agreement at f ≤ m, degraded at
    // m < f ≤ u). The regime-prefixed histograms let a sweep that mixes
    // regimes across *batches* compare their latency profiles from one
    // merged registry.
    let regime = if faulty.len() <= params.m() {
        "full"
    } else {
        "degraded"
    };
    let regime_messages = format!("svc.regime.{regime}.messages");
    let regime_logical = format!("svc.regime.{regime}.logical");
    let regime_instances = format!("svc.regime.{regime}.instances");
    let mut decisions = Vec::with_capacity(instances.len());
    let mut agg = EigPerf::default();
    for (k, inst) in instances.iter().enumerate() {
        let (resolved_k, wall_k) = resolved[k].take().expect("every instance resolves");
        let logical_k = resolved_k.perf.votes_evaluated + resolved_k.perf.votes_memo_hit;
        obs.record_span(SpanRecord {
            name: "batch.resolve".to_string(),
            args: vec![
                ("instance".to_string(), k as u64),
                ("sender".to_string(), inst.sender.index() as u64),
            ],
            logical: logical_k,
            wall_nanos: wall_k,
        });

        // End-to-end attribution for instance `k`: ingest (fill sends) to
        // decision (resolve), as message count, deterministic logical
        // cost, and wall latency (resolve share; the fill is batch-shared
        // and reported by the `batch.fill` span).
        obs.observe("svc.instance.messages", SVC_MSG_BOUNDS, inst_sent[k]);
        obs.observe("svc.instance.logical", SVC_LOGICAL_BOUNDS, logical_k);
        obs.observe("svc.instance.wall_ns", SVC_WALL_BOUNDS, wall_k);
        obs.observe(&regime_messages, SVC_MSG_BOUNDS, inst_sent[k]);
        obs.observe(&regime_logical, SVC_LOGICAL_BOUNDS, logical_k);
        obs.add(&regime_instances, 1);
        // The decision anchor of the causal chain: `trace.send` /
        // `trace.deliver` spans (transport layer) lead here.
        obs.record_span(SpanRecord {
            name: "trace.decide".to_string(),
            args: vec![
                ("instance".to_string(), k as u64),
                ("deciders".to_string(), resolved_k.decisions.len() as u64),
            ],
            logical: logical_k,
            wall_nanos: wall_k,
        });

        agg.absorb(&resolved_k.perf);
        decisions.push(resolved_k.decisions);
    }
    agg.fill_nanos = fill_nanos;
    net.eig = agg;

    obs.add("batch.instances", instances.len() as u64);
    obs.add("batch.arena_builds", arena_builds as u64);
    obs.add(
        "batch.arena_reuses",
        (instances.len() - arena_builds) as u64,
    );
    obs.add("batch.spoofs_rejected", spoofs_rejected);
    obs.add("svc.batch.sent", net.sent as u64);
    // Early-stop savings attribution: what certified-fault-set pruning
    // bought this batch, in envelopes never sent and subtrees never
    // fanned out (zero when early stopping is off or never fired).
    obs.add("svc.early_stop.messages_saved", net.eig.messages_saved);
    obs.add("svc.early_stop.subtrees_pruned", net.eig.subtrees_pruned);
    if let Some(registry) = obs.registry_mut() {
        net.eig.fold_into(registry);
    }

    BatchRun {
        decisions,
        net,
        arena_builds,
        spoofs_rejected,
    }
}

/// The legacy batch executor, preserved verbatim: one [`EigView`] per
/// (receiver, instance), each resolved recursively — the pre-arena fold.
///
/// Kept (like [`crate::reference_eval`] in the single-instance world) as
/// the differential oracle for [`run_batch`] and as the one-at-a-time
/// fold baseline that experiment E16 measures the arena batch against.
/// Reports `arena_builds = 0` and performs no envelope dedup or
/// spoof rejection: strictly on-time envelopes only, as before.
pub fn run_batch_reference<V: Clone + Ord + Hash>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
) -> BatchRun<V> {
    check_batch_bounds(params, n, instances);
    let depth = params.rounds();
    let rule = crate::eig::VoteRule::Degradable { m: params.m() };
    let mut engine: RoundEngine<BatchMsg<V>> = RoundEngine::new(Topology::complete(n), seed);

    // views[node][instance]
    let mut views: Vec<Vec<EigView<V>>> = (0..n)
        .map(|i| {
            instances
                .iter()
                .map(|_| EigView::new(n, depth, NodeId::new(i)))
                .collect()
        })
        .collect();

    let net = engine.run_with(depth + 1, |i, ctx| {
        let me = NodeId::new(i);
        let round = ctx.round();
        let mut to_relay: Vec<(u32, Path, AgreementValue<V>)> = Vec::new();
        if round >= 1 {
            for (src, msg) in ctx.inbox().to_vec() {
                let idx = msg.instance as usize;
                let valid = idx < instances.len()
                    && msg.path.len() == round
                    && msg.path.last() == src
                    && !msg.path.contains(me);
                if !valid {
                    continue;
                }
                views[i][idx].record(msg.path.clone(), msg.value.clone());
                if round < depth {
                    to_relay.push((msg.instance, msg.path, msg.value));
                }
            }
        }
        if round == 0 {
            for (idx, inst) in instances.iter().enumerate() {
                if inst.sender != me {
                    continue;
                }
                let root = Path::root(inst.sender);
                for r in NodeId::all(n) {
                    if r == me {
                        continue;
                    }
                    if let Some(v) = claim_for(strategies, me, &root, r, &inst.value) {
                        ctx.send(
                            r,
                            BatchMsg {
                                instance: idx as u32,
                                path: root.clone(),
                                value: v,
                            },
                        );
                    }
                }
            }
        } else {
            for (instance, path, value) in to_relay {
                let child = path.child(me);
                for r in NodeId::all(n) {
                    if child.contains(r) {
                        continue;
                    }
                    if let Some(v) = claim_for(strategies, me, &child, r, &value) {
                        ctx.send(
                            r,
                            BatchMsg {
                                instance,
                                path: child.clone(),
                                value: v,
                            },
                        );
                    }
                }
            }
        }
    });

    let decisions = instances
        .iter()
        .enumerate()
        .map(|(idx, inst)| {
            NodeId::all(n)
                .filter(|r| *r != inst.sender)
                .map(|r| (r, views[r.index()][idx].resolve(inst.sender, rule)))
                .collect()
        })
        .collect();
    BatchRun {
        decisions,
        net,
        arena_builds: 0,
        spoofs_rejected: 0,
    }
}

/// Fallible form of [`run_batch`]: the bounds [`run_batch`] asserts on
/// — the node bound `n >= 2m + u + 1`, the 64-node engine ceiling, and
/// per-instance sender range — are validated up front and come back as
/// [`ServiceError`] values instead of panics. An empty batch (K = 0) is
/// a valid, trivial batch, not an error.
pub fn try_run_batch<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
) -> Result<BatchRun<V>, ServiceError> {
    check_service_bounds(params, n)?;
    for inst in instances {
        if inst.sender.index() >= n {
            return Err(ServiceError::SenderOutOfRange {
                sender: inst.sender,
                n,
            });
        }
    }
    Ok(run_batch(params, n, instances, strategies, seed))
}

fn check_service_bounds(params: Params, n: usize) -> Result<(), ServiceError> {
    if !params.admits(n) {
        return Err(ServiceError::NodeBound {
            n,
            min_nodes: params.min_nodes(),
        });
    }
    if !(1..=64).contains(&n) {
        return Err(ServiceError::Engine(
            crate::engine::EngineError::TooManyNodes { n },
        ));
    }
    Ok(())
}

/// Bucket bounds for the queue-depth histogram (`svc.queue.depth`):
/// pending instances observed at each drain, powers of four up to the
/// 10k-in-flight scale the service bench drives.
pub const SVC_QUEUE_BOUNDS: &[u64] = &[1, 4, 16, 64, 256, 1024, 4096, 16384, 65536];

/// Typed failures of the persistent agreement service (and of
/// [`try_run_batch`]). Everything a caller can provoke with bad or
/// excessive input is a value here, never a panic: panics in this
/// module are reserved for internal invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded ingestion queue is at capacity. The instance was
    /// shed and counted ([`ServiceStats::shed`], `svc.queue.shed`);
    /// callers block (retry after a drain) or drop it — the queue never
    /// grows without bound.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// An instance with this caller-assigned id is already pending.
    DuplicateInstance {
        /// The rejected id.
        id: u64,
    },
    /// The instance's sender is not a node of the `n`-node system.
    SenderOutOfRange {
        /// The rejected sender.
        sender: NodeId,
        /// System size it was checked against.
        n: usize,
    },
    /// `n` violates the node bound `n >= 2m + u + 1` of the service's
    /// parameters.
    NodeBound {
        /// The rejected system size.
        n: usize,
        /// Minimum admissible size for the parameters.
        min_nodes: usize,
    },
    /// The engine rejected the shape (e.g. `n > 64`, beyond the `u64`
    /// fault-mask ceiling).
    Engine(crate::engine::EngineError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => {
                write!(f, "ingestion queue full ({capacity} instances pending)")
            }
            ServiceError::DuplicateInstance { id } => {
                write!(f, "instance id {id} is already pending")
            }
            ServiceError::SenderOutOfRange { sender, n } => {
                write!(f, "sender {sender} out of range for {n} nodes")
            }
            ServiceError::NodeBound { n, min_nodes } => {
                write!(f, "need at least {min_nodes} nodes, got {n}")
            }
            ServiceError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::engine::EngineError> for ServiceError {
    fn from(e: crate::engine::EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

/// Configuration of a persistent [`ServiceState`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bound of the ingestion queue: [`ServiceState::ingest`] sheds
    /// with [`ServiceError::QueueFull`] once this many instances are
    /// pending.
    pub queue_capacity: usize,
    /// Resolution shards per drain: instances are resolved in parallel
    /// across this many threads, sharded by sender (each sender's
    /// instances stay on the thread that owns its arena). Decisions,
    /// deterministic counters and spans are independent of this knob;
    /// only wall time changes.
    pub workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 10_000,
            workers: 1,
        }
    }
}

/// Cumulative counters of one [`ServiceState`]'s lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Instances accepted by [`ServiceState::ingest`].
    pub ingested: u64,
    /// Instances shed with [`ServiceError::QueueFull`].
    pub shed: u64,
    /// Instances decided across all drains.
    pub decided: u64,
    /// Drains executed (including empty ones).
    pub batches: u64,
    /// Arenas built — one per sender first seen, ever.
    pub arena_builds: u64,
    /// Instances served by an arena that already existed.
    pub arena_reuses: u64,
    /// Stores allocated fresh (per-sender free list was dry).
    pub store_builds: u64,
    /// Stores reused (cleared, never rebuilt) from the pool.
    pub store_reuses: u64,
}

/// One drained batch: caller-assigned ids plus the batch result
/// (decisions are index-aligned with `ids`, in ingestion order).
#[derive(Debug, Clone)]
pub struct ServiceBatch<V: Ord> {
    /// The ids of the drained instances, in ingestion order.
    pub ids: Vec<u64>,
    /// The execution result — for the same instances and seed,
    /// decision-identical to a fresh one-shot [`run_batch`].
    pub run: BatchRun<V>,
    /// Arenas built by this drain (senders first seen here).
    pub arenas_built: u64,
    /// Instances of this drain served by a pooled arena.
    pub arenas_reused: u64,
    /// Stores allocated fresh by this drain.
    pub stores_built: u64,
    /// Stores reused from the pool by this drain.
    pub stores_reused: u64,
}

/// A persistent, pipelined agreement service over the batched executor.
///
/// Where [`run_batch`] builds its arenas, decides K instances and
/// throws everything away, a `ServiceState` owns its [`PathArena`]s
/// (keyed by sender — `(n, m)` are fixed per service) and a free list
/// of [`EigStore`]s per arena, reusing both across batches: stores come
/// back **cleared, never rebuilt**, so after a warmup batch that has
/// seen every sender the arena-reuse ratio of a sustained stream is
/// 100%.
///
/// Ingestion is bounded and explicit: [`ServiceState::ingest`] queues
/// up to [`ServiceConfig::queue_capacity`] instances and sheds beyond
/// that with a counted [`ServiceError::QueueFull`] — the queue never
/// grows without bound. [`ServiceState::drain`] decides everything
/// pending in one multiplexed execution, sharding resolution by sender
/// across [`ServiceConfig::workers`] threads; for the same instances
/// and seed the decisions are bit-identical to a fresh one-shot
/// [`run_batch`], independent of the worker count.
///
/// [`PathArena`]: crate::engine::PathArena
#[derive(Debug)]
pub struct ServiceState<V> {
    params: Params,
    n: usize,
    config: ServiceConfig,
    /// Pooled engines, one per sender ever seen, append-only.
    engines: Vec<EigEngine>,
    engine_of_sender: BTreeMap<NodeId, usize>,
    /// Per-engine free lists of cleared stores.
    free_stores: Vec<Vec<EigStore<V>>>,
    pending: Vec<(u64, BatchInstance<V>)>,
    pending_ids: BTreeSet<u64>,
    stats: ServiceStats,
    /// Sheds since the last drain (reported as `svc.queue.shed` there).
    shed_unreported: u64,
}

impl<V: Clone + Ord + Hash + Send + Sync> ServiceState<V> {
    /// A fresh service for `params` over `n` nodes. The node bound and
    /// the 64-node engine ceiling are validated here, so later drains
    /// cannot fail on shape.
    pub fn new(params: Params, n: usize, config: ServiceConfig) -> Result<Self, ServiceError> {
        check_service_bounds(params, n)?;
        Ok(ServiceState {
            params,
            n,
            config,
            engines: Vec::new(),
            engine_of_sender: BTreeMap::new(),
            free_stores: Vec::new(),
            pending: Vec::new(),
            pending_ids: BTreeSet::new(),
            stats: ServiceStats::default(),
            shed_unreported: 0,
        })
    }

    /// The service parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Instances currently pending.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The configured queue bound.
    pub fn queue_capacity(&self) -> usize {
        self.config.queue_capacity
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Queues one instance under a caller-assigned id. Fails — without
    /// queuing — on an out-of-range sender, a duplicate pending id, or
    /// a full queue (the shed is counted; retry after a drain to
    /// block-on-backpressure instead of dropping).
    pub fn ingest(&mut self, id: u64, instance: BatchInstance<V>) -> Result<(), ServiceError> {
        if instance.sender.index() >= self.n {
            return Err(ServiceError::SenderOutOfRange {
                sender: instance.sender,
                n: self.n,
            });
        }
        if self.pending_ids.contains(&id) {
            return Err(ServiceError::DuplicateInstance { id });
        }
        if self.pending.len() >= self.config.queue_capacity {
            self.stats.shed += 1;
            self.shed_unreported += 1;
            return Err(ServiceError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        self.pending_ids.insert(id);
        self.pending.push((id, instance));
        self.stats.ingested += 1;
        Ok(())
    }

    /// [`ServiceState::drain_observed`] with a disabled recorder.
    pub fn drain(
        &mut self,
        strategies: &BTreeMap<NodeId, Strategy<V>>,
        seed: u64,
    ) -> ServiceBatch<V> {
        self.drain_observed(strategies, seed, &mut Obs::disabled())
    }

    /// Decides everything pending in one multiplexed execution and
    /// empties the queue. An empty drain is a valid no-op batch.
    ///
    /// Engines and stores come from the pool (missing ones are built
    /// and retained); after the resolve every store is cleared and
    /// returned to its free list. On top of the usual `batch.*` /
    /// `svc.instance.*` evidence this records the pooling counters
    /// (`svc.pool.{arena,store}_{builds,reuses,requests}`), the sheds
    /// since the last drain (`svc.queue.shed`) and the drained depth
    /// (`svc.queue.depth`).
    pub fn drain_observed(
        &mut self,
        strategies: &BTreeMap<NodeId, Strategy<V>>,
        seed: u64,
        obs: &mut Obs,
    ) -> ServiceBatch<V> {
        let pending = std::mem::take(&mut self.pending);
        self.pending_ids.clear();
        let mut ids = Vec::with_capacity(pending.len());
        let mut instances = Vec::with_capacity(pending.len());
        for (id, inst) in pending {
            ids.push(id);
            instances.push(inst);
        }

        // Engines: pooled per sender. Per-instance attribution matches
        // `run_batch` (builds = senders first seen, reuses = the rest),
        // except that here "seen" spans the whole service lifetime.
        let depth = self.params.rounds();
        let mut engine_idx = Vec::with_capacity(instances.len());
        let mut arenas_built = 0u64;
        let mut arenas_reused = 0u64;
        for inst in &instances {
            let e = match self.engine_of_sender.get(&inst.sender) {
                Some(&e) => {
                    arenas_reused += 1;
                    e
                }
                None => {
                    // Bounds were validated at `new`/`ingest`, so arena
                    // construction cannot fail on shape here.
                    let eng = EigEngine::new(self.n, inst.sender, depth);
                    let e = self.engines.len();
                    self.engines.push(eng);
                    self.free_stores.push(Vec::new());
                    self.engine_of_sender.insert(inst.sender, e);
                    arenas_built += 1;
                    e
                }
            };
            engine_idx.push(e);
        }

        // Stores: cleared pool entries first, fresh allocations only
        // when a free list runs dry.
        let mut stores_built = 0u64;
        let mut stores_reused = 0u64;
        let mut stores: Vec<EigStore<V>> = engine_idx
            .iter()
            .map(|&e| match self.free_stores[e].pop() {
                Some(store) => {
                    stores_reused += 1;
                    store
                }
                None => {
                    stores_built += 1;
                    EigStore::new(self.engines[e].arena())
                }
            })
            .collect();

        let queue_depth = instances.len() as u64;
        let run = fill_and_resolve(
            self.params,
            self.n,
            &instances,
            strategies,
            seed,
            false,
            None,
            |e| e,
            obs,
            &self.engines,
            &engine_idx,
            &mut stores,
            arenas_built as usize,
            self.config.workers.max(1),
        );

        // Recycle: stores go back cleared, never rebuilt.
        for (k, mut store) in stores.into_iter().enumerate() {
            store.clear();
            self.free_stores[engine_idx[k]].push(store);
        }

        self.stats.arena_builds += arenas_built;
        self.stats.arena_reuses += arenas_reused;
        self.stats.store_builds += stores_built;
        self.stats.store_reuses += stores_reused;
        self.stats.decided += run.decisions.len() as u64;
        self.stats.batches += 1;

        obs.add("svc.pool.arena_builds", arenas_built);
        obs.add("svc.pool.arena_reuses", arenas_reused);
        obs.add("svc.pool.arena_requests", arenas_built + arenas_reused);
        obs.add("svc.pool.store_builds", stores_built);
        obs.add("svc.pool.store_reuses", stores_reused);
        obs.add("svc.pool.store_requests", stores_built + stores_reused);
        obs.add("svc.queue.shed", std::mem::take(&mut self.shed_unreported));
        obs.observe("svc.queue.depth", SVC_QUEUE_BOUNDS, queue_depth);

        ServiceBatch {
            ids,
            run,
            arenas_built,
            arenas_reused,
            stores_built,
            stores_reused,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byz::ByzInstance;
    use crate::protocol::run_protocol;
    use crate::value::Val;
    use simnet::{LinkFaultKind, LinkFaultPlan};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn params() -> Params {
        Params::new(1, 2).unwrap()
    }

    fn lying_strategies() -> BTreeMap<NodeId, Strategy<u64>> {
        [
            (n(3), Strategy::ConstantLie(Val::Value(9))),
            (
                n(4),
                Strategy::TwoFaced {
                    even: Val::Value(1),
                    odd: Val::Value(2),
                },
            ),
        ]
        .into_iter()
        .collect()
    }

    fn mixed_instances() -> Vec<BatchInstance<u64>> {
        vec![
            BatchInstance {
                sender: n(0),
                value: Val::Value(10),
            },
            BatchInstance {
                sender: n(1),
                value: Val::Value(20),
            },
            BatchInstance {
                sender: n(4),
                value: Val::Value(30),
            },
        ]
    }

    #[test]
    fn batch_matches_sequential_runs() {
        let strategies = lying_strategies();
        let instances = mixed_instances();
        let batch = run_batch(params(), 5, &instances, &strategies, 1);
        for (i, inst) in instances.iter().enumerate() {
            let single = ByzInstance::new(5, params(), inst.sender).unwrap();
            let solo = run_protocol(&single, &inst.value, &strategies, 1);
            assert_eq!(batch.decisions[i], solo.decisions, "instance {i}");
        }
        assert_eq!(batch.spoofs_rejected, 0);
    }

    #[test]
    fn batch_matches_legacy_reference_executor() {
        let strategies = lying_strategies();
        let instances = mixed_instances();
        let arena = run_batch(params(), 5, &instances, &strategies, 7);
        let legacy = run_batch_reference(params(), 5, &instances, &strategies, 7);
        assert_eq!(arena.decisions, legacy.decisions);
        assert_eq!(arena.net.sent, legacy.net.sent);
    }

    #[test]
    fn batch_message_count_is_sum_of_singles() {
        let instances: Vec<BatchInstance<u64>> = (0..4)
            .map(|i| BatchInstance {
                sender: n(i),
                value: Val::Value(i as u64),
            })
            .collect();
        let batch = run_batch(params(), 5, &instances, &BTreeMap::new(), 1);
        let single = crate::analysis::message_complexity(5, params().rounds());
        assert_eq!(batch.net.sent as u128, 4 * single);
        // ... but only one engine run: depth+1 rounds total.
        assert_eq!(batch.net.rounds_run, params().rounds() + 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = run_batch::<u64>(params(), 5, &[], &BTreeMap::new(), 1);
        assert!(batch.decisions.is_empty());
        assert_eq!(batch.net.sent, 0);
        assert_eq!(batch.arena_builds, 0);
    }

    #[test]
    fn interactive_consistency_via_batch() {
        // One instance per sender = IC; every fault-free node's vector
        // must match the dedicated IC runner's (degradable variant).
        let values: Vec<Val> = (0..5).map(|i| Val::Value(100 + i as u64)).collect();
        let strategies: BTreeMap<NodeId, Strategy<u64>> =
            [(n(4), Strategy::ConstantLie(Val::Value(9)))]
                .into_iter()
                .collect();
        let instances: Vec<BatchInstance<u64>> = (0..5)
            .map(|i| BatchInstance {
                sender: n(i),
                value: values[i],
            })
            .collect();
        let batch = run_batch(params(), 5, &instances, &strategies, 1);
        // Distinct senders: one arena each, no reuse possible.
        assert_eq!(batch.arena_builds, 5);
        let ic = crate::ic::run_degradable_ic(params(), &values, &strategies);
        for (slot, decisions) in batch.decisions.iter().enumerate() {
            for (r, vec) in &ic.vectors {
                if *r == n(slot) {
                    continue; // senders trust themselves in the IC runner
                }
                assert_eq!(decisions[r], vec[slot], "slot {slot}, receiver {r}");
            }
        }
    }

    #[test]
    fn stream_batch_builds_one_arena_for_all_slots() {
        // K slots from one sender: the arena is built once and shared.
        let instances: Vec<BatchInstance<u64>> = (0..8)
            .map(|k| BatchInstance {
                sender: n(0),
                value: Val::Value(100 + k),
            })
            .collect();
        let strategies = lying_strategies();
        let batch = run_batch(params(), 5, &instances, &strategies, 3);
        assert_eq!(batch.arena_builds, 1);
        for (k, inst) in instances.iter().enumerate() {
            let single = ByzInstance::new(5, params(), inst.sender).unwrap();
            let solo = run_protocol(&single, &inst.value, &strategies, 3);
            assert_eq!(batch.decisions[k], solo.decisions, "slot {k}");
        }
    }

    #[test]
    fn duplicate_chaos_is_decision_invariant() {
        // Duplicating every envelope on every link must not change any
        // decision: the per-(instance, path) slot fold is first-write-wins.
        let strategies = lying_strategies();
        let instances = mixed_instances();
        let baseline = run_batch(params(), 5, &instances, &strategies, 1);
        let plan = LinkFaultPlan::uniform_complete(5, &[LinkFaultKind::Duplicate { p: 1.0 }]);
        let chaotic = run_batch_with(params(), 5, &instances, &strategies, 1, |e| {
            e.with_link_faults(plan)
        });
        assert!(chaotic.net.duplicated > 0);
        assert_eq!(baseline.decisions, chaotic.decisions);
        assert_eq!(
            baseline.net.eig, chaotic.net.eig,
            "duplicates not materialized"
        );
    }

    #[test]
    fn cut_plan_batch_matches_sequential_runs() {
        // Deterministic link cuts affect batch and solo runs identically.
        let plan = LinkFaultPlan::healthy()
            .with_symmetric(n(1), n(2), LinkFaultKind::Cut { from_round: 1 })
            .with(n(0), n(3), LinkFaultKind::Cut { from_round: 0 });
        let strategies = lying_strategies();
        let instances = mixed_instances();
        let batch = run_batch_with(params(), 5, &instances, &strategies, 2, {
            let plan = plan.clone();
            |e| e.with_link_faults(plan)
        });
        assert!(batch.net.dropped_link_cut > 0);
        for (i, inst) in instances.iter().enumerate() {
            let single = ByzInstance::new(5, params(), inst.sender).unwrap();
            let solo = crate::protocol::run_protocol_with(&single, &inst.value, &strategies, 2, {
                let plan = plan.clone();
                |e| e.with_link_faults(plan)
            });
            assert_eq!(batch.decisions[i], solo.decisions, "instance {i}");
        }
    }

    #[test]
    fn cross_instance_spoofs_are_rejected() {
        // A corrupting relayer re-tags genuine envelopes with the other
        // instance's id. The re-tagged envelope's path root no longer
        // matches the claimed instance's sender, so it must be rejected —
        // decision-identical to the corruption-as-absence run.
        let instances: Vec<BatchInstance<u64>> = vec![
            BatchInstance {
                sender: n(0),
                value: Val::Value(10),
            },
            BatchInstance {
                sender: n(1),
                value: Val::Value(20),
            },
        ];
        let plan = LinkFaultPlan::uniform_complete(5, &[LinkFaultKind::Corrupt { p: 0.5 }]);
        let spoofed = run_batch_with(params(), 5, &instances, &BTreeMap::new(), 9, {
            let plan = plan.clone();
            |e| {
                e.with_link_faults(plan)
                    .with_corruptor(|msg: &BatchMsg<u64>, _| {
                        Some(BatchMsg {
                            instance: (msg.instance + 1) % 2,
                            path: msg.path.clone(),
                            value: msg.value,
                        })
                    })
            }
        });
        let absent = run_batch_with(params(), 5, &instances, &BTreeMap::new(), 9, |e| {
            e.with_link_faults(plan)
                .with_corruptor(|_: &BatchMsg<u64>, _| None)
        });
        assert!(spoofed.spoofs_rejected > 0, "{:?}", spoofed.net);
        assert_eq!(spoofed.decisions, absent.decisions);
        assert_eq!(absent.spoofs_rejected, 0);
    }

    #[test]
    fn observed_batch_records_spans_and_counters() {
        let mut obs = Obs::enabled();
        let instances = mixed_instances();
        let (run, ..) = run_batch_observed(
            params(),
            5,
            &instances,
            &lying_strategies(),
            1,
            2,
            |e| e,
            &mut obs,
        );
        let quiet = run_batch(params(), 5, &instances, &lying_strategies(), 1);
        assert_eq!(run.decisions, quiet.decisions, "observation is passive");
        let spans: Vec<&str> = obs.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            spans,
            [
                "batch.fill",
                "batch.resolve",
                "trace.decide",
                "batch.resolve",
                "trace.decide",
                "batch.resolve",
                "trace.decide"
            ]
        );
        let fill = &obs.spans()[0];
        assert_eq!(fill.logical, run.net.eig.messages_materialized);
        assert_eq!(
            obs.registry().counter("batch.instances"),
            instances.len() as u64
        );
        assert_eq!(obs.registry().counter("batch.arena_builds"), 3);
        assert_eq!(obs.registry().counter("batch.arena_reuses"), 0);
        assert_eq!(
            obs.registry().counter("eig.messages_materialized"),
            run.net.eig.messages_materialized
        );
    }

    #[test]
    fn observed_batch_attributes_latency_per_instance_and_regime() {
        let mut obs = Obs::enabled();
        let instances = mixed_instances();
        let (run, ..) = run_batch_observed(
            params(),
            5,
            &instances,
            &lying_strategies(),
            1,
            1,
            |e| e,
            &mut obs,
        );
        let reg = obs.registry();

        // Per-instance end-to-end histograms: one observation per
        // instance; total messages equal the engine's send count, and
        // total logical cost equals the summed resolve work.
        let msgs = reg.histogram("svc.instance.messages").unwrap();
        assert_eq!(msgs.count(), instances.len() as u64);
        assert_eq!(msgs.sum(), run.net.sent as u64);
        let logical = reg.histogram("svc.instance.logical").unwrap();
        assert_eq!(logical.count(), instances.len() as u64);
        assert_eq!(
            logical.sum(),
            run.net.eig.votes_evaluated + run.net.eig.votes_memo_hit
        );
        assert!(reg.histogram("svc.instance.wall_ns").is_some());

        // f = 2 liars > m = 1: the whole batch runs in the degraded
        // regime, and the full-regime series stays untouched.
        assert_eq!(
            reg.counter("svc.regime.degraded.instances"),
            instances.len() as u64
        );
        assert_eq!(reg.counter("svc.regime.full.instances"), 0);
        assert!(reg.histogram("svc.regime.full.messages").is_none());
        let degraded = reg.histogram("svc.regime.degraded.messages").unwrap();
        assert_eq!(degraded.sum(), msgs.sum());

        // A fault-free batch lands on the full side of the boundary and
        // credits its early-stop savings.
        let mut obs_full = Obs::enabled();
        let (run_full, ..) = run_batch_core(
            params(),
            5,
            &instances,
            &BTreeMap::new(),
            1,
            1,
            true,
            None,
            |e| e,
            &mut obs_full,
        );
        let reg_full = obs_full.registry();
        assert_eq!(
            reg_full.counter("svc.regime.full.instances"),
            instances.len() as u64
        );
        assert_eq!(reg_full.counter("svc.regime.degraded.instances"), 0);
        assert_eq!(
            reg_full.counter("svc.early_stop.messages_saved"),
            run_full.net.eig.messages_saved
        );
        assert_eq!(
            reg_full.counter("svc.early_stop.subtrees_pruned"),
            run_full.net.eig.subtrees_pruned
        );

        // The decide spans anchor the causal chain: one per instance, in
        // instance order, carrying the decider fan-out.
        let decides: Vec<_> = obs
            .spans()
            .iter()
            .filter(|s| s.name == "trace.decide")
            .collect();
        assert_eq!(decides.len(), instances.len());
        for (k, span) in decides.iter().enumerate() {
            assert_eq!(span.args[0], ("instance".to_string(), k as u64));
            // Every correct node that is not the sender decides.
            assert_eq!(span.args[1].0, "deciders");
            assert!(span.args[1].1 > 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sender_range_checked() {
        let instances = vec![BatchInstance {
            sender: n(9),
            value: Val::Value(1),
        }];
        run_batch(params(), 5, &instances, &BTreeMap::new(), 1);
    }

    #[test]
    fn traced_batch_is_passive_and_covers_every_close() {
        let strategies = lying_strategies();
        let instances = mixed_instances();
        let mut delivers = 0usize;
        let mut closes = 0usize;
        let mut sent_in_trace = 0usize;
        let (run, views) = run_batch_traced(
            params(),
            5,
            &instances,
            &strategies,
            1,
            false,
            |e| e,
            &mut |ev| match ev {
                BatchTraceEvent::Deliver { .. } => delivers += 1,
                BatchTraceEvent::Close { sends, .. } => {
                    closes += 1;
                    sent_in_trace += sends.len();
                }
            },
        );
        let quiet = run_batch(params(), 5, &instances, &strategies, 1);
        assert_eq!(run.decisions, quiet.decisions, "tracing is passive");
        // Every instance closes at every node in every round, even when
        // it has nothing to send — the checker needs the phase ticks.
        let rounds = params().rounds() + 1;
        assert_eq!(closes, instances.len() * 5 * rounds);
        assert!(delivers > 0);
        // Traced sends are pre-chaos; with no chaos plan they are
        // exactly the engine's send count.
        assert_eq!(sent_in_trace, run.net.sent);
        assert_eq!(views.len(), instances.len());
    }

    #[test]
    fn early_stopped_batch_matches_and_saves_messages() {
        // Fault-free: every level-1 subtree prunes, and every saved
        // message is a real envelope the engine never sent.
        let instances = vec![
            BatchInstance {
                sender: n(0),
                value: Val::Value(7),
            },
            BatchInstance {
                sender: n(0),
                value: Val::Value(8),
            },
        ];
        let baseline = run_batch(params(), 5, &instances, &BTreeMap::new(), 3);
        let (early, _) = run_batch_traced(
            params(),
            5,
            &instances,
            &BTreeMap::new(),
            3,
            true,
            |e| e,
            &mut |_| {},
        );
        assert_eq!(early.decisions, baseline.decisions);
        assert!(early.net.eig.subtrees_pruned > 0);
        assert!(early.net.eig.messages_saved > 0);
        assert_eq!(
            early.net.sent + early.net.eig.messages_saved as usize,
            baseline.net.sent,
            "conservation: sent + saved == baseline sent"
        );
    }

    #[test]
    fn early_stopped_batch_with_liars_stays_decision_identical() {
        // Two relay liars at depth 2: no length-1 path can certify both
        // faults, so the gate never fires — the runs must be identical.
        let strategies = lying_strategies();
        let instances = mixed_instances();
        let full = run_batch(params(), 5, &instances, &strategies, 3);
        let (stopped, _) = run_batch_traced(
            params(),
            5,
            &instances,
            &strategies,
            3,
            true,
            |e| e,
            &mut |_| {},
        );
        assert_eq!(stopped.decisions, full.decisions);
        assert_eq!(stopped.net.sent, full.net.sent);

        // A lying *sender* is a certified fault every path carries, so
        // a depth-3 run prunes below the first relay level even faulty.
        let p2 = Params::new(2, 2).unwrap();
        let strategies: BTreeMap<NodeId, Strategy<u64>> =
            [(n(0), Strategy::ConstantLie(Val::Value(9)))]
                .into_iter()
                .collect();
        let instances = vec![BatchInstance {
            sender: n(0),
            value: Val::Value(5),
        }];
        let full = run_batch(p2, 7, &instances, &strategies, 9);
        let (early, _) =
            run_batch_traced(p2, 7, &instances, &strategies, 9, true, |e| e, &mut |_| {});
        assert_eq!(early.decisions, full.decisions);
        assert!(early.net.eig.messages_saved > 0);
        assert!(early.net.sent < full.net.sent);
    }

    fn inst(sender: usize, value: u64) -> BatchInstance<u64> {
        BatchInstance {
            sender: n(sender),
            value: Val::Value(value),
        }
    }

    /// Restart/drain semantics: ingest, drain, re-ingest on the same
    /// `ServiceState` decides identically to a fresh one-shot
    /// `run_batch` per wave, and the whole observable output is
    /// bit-identical across worker counts 1/2/8 after timing scrub.
    #[test]
    fn service_drain_matches_one_shot_run_batch_across_workers() {
        let strategies = lying_strategies();
        let wave_a: Vec<BatchInstance<u64>> = vec![inst(0, 10), inst(1, 20), inst(0, 30)];
        let wave_b: Vec<BatchInstance<u64>> = vec![inst(4, 40), inst(1, 50)];
        let oracle_a = run_batch(params(), 5, &wave_a, &strategies, 11);
        let oracle_b = run_batch(params(), 5, &wave_b, &strategies, 12);

        let mut outputs = Vec::new();
        for workers in [1usize, 2, 8] {
            let config = ServiceConfig {
                queue_capacity: 16,
                workers,
            };
            let mut svc: ServiceState<u64> = ServiceState::new(params(), 5, config).unwrap();
            let mut obs = Obs::enabled();

            for (id, i) in wave_a.iter().enumerate() {
                svc.ingest(id as u64, i.clone()).unwrap();
            }
            let batch_a = svc.drain_observed(&strategies, 11, &mut obs);
            assert_eq!(batch_a.ids, vec![0, 1, 2]);
            assert_eq!(batch_a.run.decisions, oracle_a.decisions, "w={workers}");
            assert_eq!(batch_a.run.net.sent, oracle_a.net.sent);

            // Re-ingest on the *same* state: ids are free again, pooled
            // arenas and stores serve the second wave.
            for (id, i) in wave_b.iter().enumerate() {
                svc.ingest(id as u64, i.clone()).unwrap();
            }
            let batch_b = svc.drain_observed(&strategies, 12, &mut obs);
            assert_eq!(batch_b.run.decisions, oracle_b.decisions, "w={workers}");
            // Wave A warmed senders {0, 1}; wave B brings sender 4 (one
            // fresh arena, one fresh store — pools are per sender) and
            // serves sender 1 entirely from wave A's cleared pool.
            assert_eq!(batch_b.arenas_built, 1);
            assert_eq!(batch_b.arenas_reused, 1);
            assert_eq!(batch_b.stores_reused, 1);
            assert_eq!(batch_b.stores_built, 1);

            obs::scrub_timing(&mut obs);
            outputs.push(obs);
        }
        assert_eq!(outputs[0], outputs[1], "workers 1 vs 2");
        assert_eq!(outputs[0], outputs[2], "workers 1 vs 8");
    }

    #[test]
    fn service_queue_full_sheds_with_typed_error() {
        let config = ServiceConfig {
            queue_capacity: 2,
            workers: 1,
        };
        let mut svc: ServiceState<u64> = ServiceState::new(params(), 5, config).unwrap();
        svc.ingest(0, inst(0, 1)).unwrap();
        svc.ingest(1, inst(1, 2)).unwrap();
        assert_eq!(
            svc.ingest(2, inst(2, 3)),
            Err(ServiceError::QueueFull { capacity: 2 })
        );
        assert_eq!(svc.stats().shed, 1);
        assert_eq!(svc.pending_len(), 2);

        // Draining relieves the backpressure; the shed is reported once.
        let mut obs = Obs::enabled();
        let batch = svc.drain_observed(&BTreeMap::new(), 5, &mut obs);
        assert_eq!(batch.ids, vec![0, 1]);
        assert_eq!(obs.registry().counter("svc.queue.shed"), 1);
        svc.ingest(2, inst(2, 3)).unwrap();
        let mut obs2 = Obs::enabled();
        svc.drain_observed(&BTreeMap::new(), 6, &mut obs2);
        assert_eq!(obs2.registry().counter("svc.queue.shed"), 0);
    }

    #[test]
    fn service_rejects_duplicate_ids_until_drained() {
        let mut svc: ServiceState<u64> =
            ServiceState::new(params(), 5, ServiceConfig::default()).unwrap();
        svc.ingest(7, inst(0, 1)).unwrap();
        assert_eq!(
            svc.ingest(7, inst(1, 2)),
            Err(ServiceError::DuplicateInstance { id: 7 })
        );
        svc.drain(&BTreeMap::new(), 1);
        // The id is free again after its instance decided.
        svc.ingest(7, inst(1, 2)).unwrap();
    }

    #[test]
    fn service_shape_errors_are_typed() {
        // Node bound: BYZ(1, 2) needs n >= 5.
        assert_eq!(
            ServiceState::<u64>::new(params(), 4, ServiceConfig::default()).err(),
            Some(ServiceError::NodeBound { n: 4, min_nodes: 5 })
        );
        // Engine ceiling: the u64 fault masks stop at n = 64.
        assert!(matches!(
            ServiceState::<u64>::new(params(), 65, ServiceConfig::default()),
            Err(ServiceError::Engine(
                crate::engine::EngineError::TooManyNodes { n: 65 }
            ))
        ));
        // Sender range is checked at ingest, before anything queues.
        let mut svc: ServiceState<u64> =
            ServiceState::new(params(), 5, ServiceConfig::default()).unwrap();
        assert_eq!(
            svc.ingest(0, inst(5, 1)),
            Err(ServiceError::SenderOutOfRange { sender: n(5), n: 5 })
        );
        assert_eq!(svc.pending_len(), 0);
    }

    #[test]
    fn empty_drain_is_a_valid_noop_batch() {
        let mut svc: ServiceState<u64> =
            ServiceState::new(params(), 5, ServiceConfig::default()).unwrap();
        let batch = svc.drain(&BTreeMap::new(), 1);
        assert!(batch.ids.is_empty());
        assert!(batch.run.decisions.is_empty());
        assert_eq!(svc.stats().batches, 1);
        assert_eq!(svc.stats().decided, 0);
    }

    #[test]
    fn try_run_batch_covers_every_degenerate_input() {
        let strategies: BTreeMap<NodeId, Strategy<u64>> = BTreeMap::new();
        // Empty batch (K = 0) is a valid, trivial batch.
        let empty = try_run_batch(params(), 5, &[], &strategies, 1).unwrap();
        assert!(empty.decisions.is_empty());
        // Node bound and sender range come back typed, not as panics.
        assert_eq!(
            try_run_batch(params(), 4, &[], &strategies, 1).err(),
            Some(ServiceError::NodeBound { n: 4, min_nodes: 5 })
        );
        assert_eq!(
            try_run_batch(params(), 5, &[inst(9, 1)], &strategies, 1).err(),
            Some(ServiceError::SenderOutOfRange { sender: n(9), n: 5 })
        );
        assert!(matches!(
            try_run_batch(params(), 70, &[], &strategies, 1),
            Err(ServiceError::Engine(
                crate::engine::EngineError::TooManyNodes { n: 70 }
            ))
        ));
        // The happy path is exactly run_batch.
        let instances = mixed_instances();
        let fallible = try_run_batch(params(), 5, &instances, &lying_strategies(), 3).unwrap();
        let oracle = run_batch(params(), 5, &instances, &lying_strategies(), 3);
        assert_eq!(fallible.decisions, oracle.decisions);
    }

    /// The 95%-after-warmup gate of the service bench, in miniature:
    /// one warmup drain builds every arena and store, every later drain
    /// reuses 100% of both.
    #[test]
    fn pool_reuse_is_total_after_warmup() {
        let mut svc: ServiceState<u64> =
            ServiceState::new(params(), 5, ServiceConfig::default()).unwrap();
        let strategies = lying_strategies();
        let wave = |svc: &mut ServiceState<u64>| {
            for id in 0..6u64 {
                svc.ingest(id, inst((id % 3) as usize, id)).unwrap();
            }
        };
        wave(&mut svc);
        let warmup = svc.drain(&strategies, 21);
        assert_eq!(warmup.arenas_built, 3);
        assert_eq!(warmup.stores_built, 6);
        for round in 0..3u64 {
            wave(&mut svc);
            let batch = svc.drain(&strategies, 22 + round);
            assert_eq!(batch.arenas_built, 0, "round {round}");
            assert_eq!(batch.arenas_reused, 6);
            assert_eq!(batch.stores_built, 0);
            assert_eq!(batch.stores_reused, 6);
        }
        let stats = svc.stats();
        assert_eq!(stats.arena_builds, 3);
        assert_eq!(stats.store_builds, 6);
        assert_eq!(stats.decided, 24);
    }
}
