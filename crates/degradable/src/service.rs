//! Batched agreement: many concurrent BYZ instances multiplexed over one
//! message-passing execution, folded through the shared arena engine.
//!
//! A deployed system rarely runs one agreement at a time — interactive
//! consistency needs `N` instances (one per sender), a replicated log
//! pipelines slots, and the channel systems of Section 3 agree on a stream
//! of sensor readings. [`run_batch`] runs any number of instances
//! *concurrently* on the `simnet` round engine: every envelope carries an
//! instance id, all instances advance in lock-step (they share the `m+1`
//! round structure), and decisions come from one memoized bottom-up
//! arena resolution per instance ([`crate::engine`]) instead of one
//! recursive [`EigView`] fold per (receiver, instance).
//!
//! The path structure of an instance depends only on `(n, sender, depth)`,
//! never on slot values, so instances that share a sender share one
//! [`crate::engine::PathArena`] (and [`crate::engine::EigEngine`]): a
//! K-slot stream from one sender builds its arena exactly once
//! ([`BatchRun::arena_builds`] counts the builds). Each instance fills its
//! own [`crate::engine::EigStore`] — node `i`'s local view is column `i`.
//!
//! The faulty nodes' strategies apply uniformly across instances (the
//! same Byzantine node misbehaves everywhere), which matches the fault
//! model: `f` counts *nodes*, not (node, instance) pairs.
//!
//! Inbox validation mirrors [`crate::protocol`] — and adds one batch-only
//! check: the envelope's path root must be the claimed instance's sender.
//! Without it a Byzantine relayer can *re-tag* a genuine envelope with a
//! different instance id (cross-instance spoofing); the resolution never
//! reads foreign-rooted slots, but honest nodes would still relay the
//! spoof and amplify it. Rejected spoofs are counted in
//! [`BatchRun::spoofs_rejected`].
//!
//! Link-level chaos plans install through [`run_batch_with`] exactly as
//! for [`crate::protocol::run_protocol_with`]: duplicated envelopes fold
//! idempotently (first write per (instance, path, receiver) slot wins,
//! mirroring the per-path-index dedup of [`crate::sparse`]), reordered
//! envelopes that arrive late still fold as direct observations but are
//! never relayed, and corruption reads as absence (oral-message axiom).
//!
//! Integration tests assert that a batch is decision-identical to running
//! the same instances one at a time — multiplexing is purely a transport
//! optimization: one engine run instead of `K`, with the same total
//! message count. [`run_batch_reference`] preserves the legacy
//! per-(receiver, instance) `EigView` executor verbatim as the
//! differential oracle and the one-at-a-time fold baseline measured by
//! experiment E16 (`bench/src/bin/batch_throughput.rs`).

use crate::adversary::Strategy;
use crate::eig::{prunable_path, EigView};
use crate::engine::{EigEngine, EigStore};
use crate::params::Params;
use crate::path::Path;
use crate::value::AgreementValue;
use obs::{Obs, SpanRecord};
use simnet::{EigPerf, NodeId, RoundEngine, Topology};
use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

/// Bucket bounds for the per-instance message-count histogram
/// (`svc.instance.messages` and the regime split): powers of four from 8
/// to half a million, wide enough for E16-scale batches.
pub const SVC_MSG_BOUNDS: &[u64] = &[8, 32, 128, 512, 2048, 8192, 32768, 131_072, 524_288];

/// Bucket bounds for the per-instance logical-cost histogram
/// (`svc.instance.logical`): votes settled per instance.
pub const SVC_LOGICAL_BOUNDS: &[u64] = &[16, 64, 256, 1024, 4096, 16384, 65536, 262_144, 1_048_576];

/// Bucket bounds for the per-instance wall-latency histogram
/// (`svc.instance.wall_ns`), 1µs to 10s. The name contains `wall`, so
/// [`obs::ScrubTiming`] on the registry removes it under `--no-timing` —
/// wall latency is carried for humans, never compared.
pub const SVC_WALL_BOUNDS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// One instance of a batch: who sends what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchInstance<V> {
    /// The designated sender.
    pub sender: NodeId,
    /// The sender's value.
    pub value: AgreementValue<V>,
}

/// A multiplexed protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchMsg<V> {
    /// Which instance this envelope belongs to.
    pub instance: u32,
    /// Relay path within that instance.
    pub path: Path,
    /// Claimed value.
    pub value: AgreementValue<V>,
}

/// Result of a batched execution.
#[derive(Debug, Clone)]
pub struct BatchRun<V: Ord> {
    /// Per instance (in input order): every receiver's decision.
    pub decisions: Vec<BTreeMap<NodeId, AgreementValue<V>>>,
    /// Network statistics of the single multiplexed engine run; `net.eig`
    /// carries the [`EigPerf`] counters aggregated across all instances.
    pub net: simnet::Outcome,
    /// Distinct arenas built — one per distinct sender, at most the
    /// instance count. A K-slot single-sender stream reports 1.
    /// [`run_batch_reference`] builds no arenas and reports 0.
    pub arena_builds: usize,
    /// Envelopes rejected because their path root was not the claimed
    /// instance's sender (cross-instance spoofing by a Byzantine relayer
    /// or a corrupting link).
    pub spoofs_rejected: u64,
}

/// One observable moment of a batched execution, as
/// [`run_batch_traced`] reports it — the raw material for replaying a
/// batch through one `SpecChecker` per instance.
#[derive(Debug, Clone)]
pub enum BatchTraceEvent<V> {
    /// An envelope claiming `instance` was handed to `to`, folding at
    /// the close of `round`. Emitted for every inbox envelope with an
    /// in-range instance id, *before* any validation — the consumer's
    /// checker performs its own classification (a cross-instance spoof
    /// reads as malformed there too, since its path is not rooted at
    /// the claimed instance's sender).
    Deliver {
        /// The claimed instance (in input order).
        instance: usize,
        /// The receiving node.
        to: NodeId,
        /// Transport-authenticated source.
        src: NodeId,
        /// The relay path.
        path: Path,
        /// The claimed value.
        value: AgreementValue<V>,
        /// The round at whose close this envelope folds.
        round: usize,
    },
    /// Node `node` closed `round` for `instance`, emitting `sends`
    /// (pre-chaos, possibly empty — emitted for every instance × node ×
    /// round so phase tracking stays exact).
    Close {
        /// The instance (in input order).
        instance: usize,
        /// The closing node.
        node: NodeId,
        /// The closed round.
        round: usize,
        /// Every send of this instance at this close.
        sends: Vec<(NodeId, Path, AgreementValue<V>)>,
    },
}

/// Sending a fabricated (or truthful) value to one receiver; Silent
/// strategies suppress the message entirely.
fn claim_for<V: Clone + Ord + Hash>(
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    me: NodeId,
    child: &Path,
    receiver: NodeId,
    truthful: &AgreementValue<V>,
) -> Option<AgreementValue<V>> {
    match strategies.get(&me) {
        None => Some(truthful.clone()),
        Some(Strategy::Silent) => None,
        Some(s) => Some(s.claim(child, receiver, truthful)),
    }
}

fn check_batch_bounds<V>(params: Params, n: usize, instances: &[BatchInstance<V>]) {
    assert!(
        params.admits(n),
        "need at least {} nodes",
        params.min_nodes()
    );
    for inst in instances {
        assert!(
            inst.sender.index() < n,
            "sender {} out of range",
            inst.sender
        );
    }
}

/// Runs `instances` concurrently over one engine execution.
///
/// # Panics
///
/// Panics if any instance's sender is out of range, or `n` violates the
/// node bound for `params`.
pub fn run_batch<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
) -> BatchRun<V> {
    run_batch_with(params, n, instances, strategies, seed, |e| e)
}

/// Like [`run_batch`], with a hook to customize the engine (link-fault
/// plan, latency model, corruptor, tracing) before the run.
pub fn run_batch_with<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    engine_setup: impl FnOnce(RoundEngine<BatchMsg<V>>) -> RoundEngine<BatchMsg<V>>,
) -> BatchRun<V> {
    run_batch_observed(
        params,
        n,
        instances,
        strategies,
        seed,
        1,
        engine_setup,
        &mut Obs::disabled(),
    )
    .0
}

/// Like [`run_batch_with`], additionally materializing every receiver's
/// [`EigView`] per instance from the shared stores, so differential
/// tests can re-resolve the exact same observations through
/// [`EigView::resolve`] and compare against the arena fold
/// (`tests/batch_equivalence.rs` does this under chaos plans).
pub fn run_batch_full<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    engine_setup: impl FnOnce(RoundEngine<BatchMsg<V>>) -> RoundEngine<BatchMsg<V>>,
) -> (BatchRun<V>, Vec<BTreeMap<NodeId, EigView<V>>>) {
    let (run, engines, engine_idx, stores) = run_batch_observed(
        params,
        n,
        instances,
        strategies,
        seed,
        1,
        engine_setup,
        &mut Obs::disabled(),
    );
    let views = materialize_views(params, n, instances, &engines, &engine_idx, &stores);
    (run, views)
}

/// Rebuilds every receiver's per-instance [`EigView`] from the shared
/// stores (node `r`'s view of instance `k` is column `r` of `stores[k]`).
fn materialize_views<V: Clone + Ord>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    engines: &[EigEngine],
    engine_idx: &[usize],
    stores: &[EigStore<V>],
) -> Vec<BTreeMap<NodeId, EigView<V>>> {
    let depth = params.rounds();
    instances
        .iter()
        .enumerate()
        .map(|(k, inst)| {
            let arena = engines[engine_idx[k]].arena();
            NodeId::all(n)
                .filter(|r| *r != inst.sender)
                .map(|r| {
                    let mut view = EigView::new(n, depth, r);
                    for (id, v) in stores[k].column(r) {
                        view.record(arena.resolve_path(id), v.clone());
                    }
                    (r, view)
                })
                .collect()
        })
        .collect()
}

/// [`run_batch_full`] with conformance hooks: optional certified-fault-set
/// early stopping (armed against the strategy key set, mirroring
/// [`crate::NodeStateMachine::with_early_stop`]) and a trace callback
/// receiving one [`BatchTraceEvent`] per delivery and per
/// instance × node × round close — everything a per-instance
/// `SpecChecker` replay needs.
#[allow(clippy::too_many_arguments)]
pub fn run_batch_traced<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    early_stop: bool,
    engine_setup: impl FnOnce(RoundEngine<BatchMsg<V>>) -> RoundEngine<BatchMsg<V>>,
    trace: &mut dyn FnMut(BatchTraceEvent<V>),
) -> (BatchRun<V>, Vec<BTreeMap<NodeId, EigView<V>>>) {
    let (run, engines, engine_idx, stores) = run_batch_core(
        params,
        n,
        instances,
        strategies,
        seed,
        1,
        early_stop,
        Some(trace),
        engine_setup,
        &mut Obs::disabled(),
    );
    let views = materialize_views(params, n, instances, &engines, &engine_idx, &stores);
    (run, views)
}

/// The observed core of the batch service: one multiplexed
/// [`RoundEngine`] run fills one [`EigStore`] per instance, then each
/// instance resolves bottom-up (with `workers` resolution threads)
/// through its sender's shared arena.
///
/// Records a `batch.fill` span over the engine run (logical cost = slots
/// materialized across all instances), one `batch.resolve` span per
/// instance (logical cost = votes settled), and `batch.*` registry
/// counters, plus the aggregated `eig.*` counters. With a disabled
/// recorder this is exactly [`run_batch_with`].
///
/// Returns the run plus the engines, the instance→engine index map, and
/// the per-instance stores (so [`run_batch_full`] can materialize
/// per-receiver views without re-executing).
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn run_batch_observed<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    workers: usize,
    engine_setup: impl FnOnce(RoundEngine<BatchMsg<V>>) -> RoundEngine<BatchMsg<V>>,
    obs: &mut Obs,
) -> (BatchRun<V>, Vec<EigEngine>, Vec<usize>, Vec<EigStore<V>>) {
    run_batch_core(
        params,
        n,
        instances,
        strategies,
        seed,
        workers,
        false,
        None,
        engine_setup,
        obs,
    )
}

/// [`run_batch_observed`] with certified-fault-set early stopping armed
/// (the [`run_batch_traced`] hook), so observed runs attribute actual
/// early-stop savings through the `svc.early_stop.*` counters instead
/// of recording zeros.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn run_batch_observed_early_stop<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    workers: usize,
    engine_setup: impl FnOnce(RoundEngine<BatchMsg<V>>) -> RoundEngine<BatchMsg<V>>,
    obs: &mut Obs,
) -> (BatchRun<V>, Vec<EigEngine>, Vec<usize>, Vec<EigStore<V>>) {
    run_batch_core(
        params,
        n,
        instances,
        strategies,
        seed,
        workers,
        true,
        None,
        engine_setup,
        obs,
    )
}

#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn run_batch_core<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    workers: usize,
    early_stop: bool,
    mut trace: Option<&mut dyn FnMut(BatchTraceEvent<V>)>,
    engine_setup: impl FnOnce(RoundEngine<BatchMsg<V>>) -> RoundEngine<BatchMsg<V>>,
    obs: &mut Obs,
) -> (BatchRun<V>, Vec<EigEngine>, Vec<usize>, Vec<EigStore<V>>) {
    check_batch_bounds(params, n, instances);
    let depth = params.rounds();
    let rule = crate::eig::VoteRule::Degradable { m: params.m() };
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();

    // One arena (and engine) per *distinct sender*: the path structure
    // depends only on (n, sender, depth), so every instance sharing a
    // sender shares the interned tree.
    let mut engine_of_sender: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut engines: Vec<EigEngine> = Vec::new();
    let mut engine_idx: Vec<usize> = Vec::with_capacity(instances.len());
    for inst in instances {
        let next = engines.len();
        let e = *engine_of_sender.entry(inst.sender).or_insert(next);
        if e == next {
            let mut eng = EigEngine::new(n, inst.sender, depth).with_workers(workers);
            if early_stop {
                eng = eng.with_early_stop(&faulty);
            }
            engines.push(eng);
        }
        engine_idx.push(e);
    }
    let arena_builds = engines.len();

    // One slot table per instance, shared by all nodes: node `i`'s local
    // view of instance `k` is column `i` of `stores[k]`.
    let mut stores: Vec<EigStore<V>> = instances
        .iter()
        .enumerate()
        .map(|(k, _)| EigStore::new(engines[engine_idx[k]].arena()))
        .collect();
    let mut spoofs_rejected = 0u64;
    // Per-instance protocol sends, accumulated during the fill so the
    // end-to-end histograms below can attribute network cost to the
    // instance that incurred it.
    let mut inst_sent: Vec<u64> = vec![0; instances.len()];

    let mut engine = engine_setup(RoundEngine::new(Topology::complete(n), seed));
    let fill_timer = obs.span(
        "batch.fill",
        vec![
            ("n", n as u64),
            ("instances", instances.len() as u64),
            ("depth", depth as u64),
        ],
    );
    let fill_start = std::time::Instant::now();
    let mut net = engine.run_with(depth + 1, |i, ctx| {
        let me = NodeId::new(i);
        let round = ctx.round();
        let mut traced_sends: Vec<Vec<(NodeId, Path, AgreementValue<V>)>> = if trace.is_some() {
            vec![Vec::new(); instances.len()]
        } else {
            Vec::new()
        };
        // 1. Record this round's deliveries (level = round).
        let mut to_relay: Vec<(u32, Path, AgreementValue<V>)> = Vec::new();
        if round >= 1 {
            for (src, msg) in ctx.inbox().to_vec() {
                let idx = msg.instance as usize;
                if idx < instances.len() {
                    if let Some(trace) = trace.as_deref_mut() {
                        trace(BatchTraceEvent::Deliver {
                            instance: idx,
                            to: me,
                            src,
                            path: msg.path.clone(),
                            value: msg.value.clone(),
                            round,
                        });
                    }
                }
                // A path of level `< round` is an envelope the network
                // delivered late (link reordering): its relay slot has
                // passed, but the direct observation is still genuine, so
                // it folds into the store. Anything else malformed —
                // impersonated or self-referential paths, or paths from a
                // future level — is dropped (treated as absent).
                let valid = idx < instances.len()
                    && !msg.path.is_empty()
                    && msg.path.len() <= round
                    && msg.path.last() == src
                    && !msg.path.contains(me);
                if !valid {
                    continue; // malformed claim: treated as absent
                }
                // Cross-instance spoofing: the claimed instance pins the
                // path root. A mismatched root is a re-tagged envelope
                // and must read as absent *before* any recording, so a
                // spoof never consumes relay bandwidth.
                if msg.path.sender() != instances[idx].sender {
                    spoofs_rejected += 1;
                    continue;
                }
                let eng = &engines[engine_idx[idx]];
                // Only sender-rooted repetition-free labels intern; the
                // resolution never reads anything else.
                let Some(id) = eng.arena().intern(&msg.path) else {
                    continue;
                };
                let on_time = msg.path.len() == round;
                // First write wins: duplicated envelopes (link-level
                // duplication, or a late copy overtaken by chaos) are
                // discarded by the idempotent fold.
                let fresh = stores[idx].record(eng.arena(), id, me, msg.value.clone());
                if fresh && on_time && round < depth {
                    to_relay.push((msg.instance, msg.path, msg.value));
                }
            }
        }
        // 2. Send this round's messages.
        if round == 0 {
            for (idx, inst) in instances.iter().enumerate() {
                if inst.sender != me {
                    continue;
                }
                let root = Path::root(inst.sender);
                for r in NodeId::all(n) {
                    if r == me {
                        continue;
                    }
                    if let Some(v) = claim_for(strategies, me, &root, r, &inst.value) {
                        if !traced_sends.is_empty() {
                            traced_sends[idx].push((r, root.clone(), v.clone()));
                        }
                        inst_sent[idx] += 1;
                        ctx.send(
                            r,
                            BatchMsg {
                                instance: idx as u32,
                                path: root.clone(),
                                value: v,
                            },
                        );
                    }
                }
            }
        } else {
            for (instance, path, value) in to_relay {
                // Certified-fault-set early stopping, mirroring
                // `NodeStateMachine`: a path that exhausts the fault set
                // with a fault-free last relayer fills its subtree
                // uniformly, so the fan-out below it is skipped.
                if early_stop && prunable_path(&path, &faulty) {
                    continue;
                }
                let child = path.child(me);
                for r in NodeId::all(n) {
                    if child.contains(r) {
                        continue;
                    }
                    if let Some(v) = claim_for(strategies, me, &child, r, &value) {
                        if !traced_sends.is_empty() {
                            traced_sends[instance as usize].push((r, child.clone(), v.clone()));
                        }
                        inst_sent[instance as usize] += 1;
                        ctx.send(
                            r,
                            BatchMsg {
                                instance,
                                path: child.clone(),
                                value: v,
                            },
                        );
                    }
                }
            }
        }
        if let Some(trace) = trace.as_deref_mut() {
            for (idx, sends) in traced_sends.into_iter().enumerate() {
                trace(BatchTraceEvent::Close {
                    instance: idx,
                    node: me,
                    round,
                    sends,
                });
            }
        }
    });
    let fill_nanos = fill_start.elapsed().as_nanos() as u64;
    obs.finish(fill_timer, stores.iter().map(EigStore::materialized).sum());

    // 3. Memoized bottom-up resolve, one pass per instance over its
    // sender's shared arena.
    //
    // The fault regime is a whole-batch property: f = |faulty| nodes run a
    // strategy, so every instance lands on the same side of the paper's
    // degradation boundary (full agreement at f ≤ m, degraded at
    // m < f ≤ u). The regime-prefixed histograms let a sweep that mixes
    // regimes across *batches* compare their latency profiles from one
    // merged registry.
    let regime = if faulty.len() <= params.m() {
        "full"
    } else {
        "degraded"
    };
    let regime_messages = format!("svc.regime.{regime}.messages");
    let regime_logical = format!("svc.regime.{regime}.logical");
    let regime_instances = format!("svc.regime.{regime}.instances");
    let timing = obs.is_enabled();
    let mut decisions = Vec::with_capacity(instances.len());
    let mut agg = EigPerf::default();
    for (k, inst) in instances.iter().enumerate() {
        let timer = obs.span(
            "batch.resolve",
            vec![
                ("instance", k as u64),
                ("sender", inst.sender.index() as u64),
            ],
        );
        let resolve_start = timing.then(std::time::Instant::now);
        let resolved = engines[engine_idx[k]].resolve(rule, &stores[k]);
        let logical_k = resolved.perf.votes_evaluated + resolved.perf.votes_memo_hit;
        obs.finish(timer, logical_k);

        // End-to-end attribution for instance `k`: ingest (fill sends) to
        // decision (resolve), as message count, deterministic logical
        // cost, and wall latency (resolve share; the fill is batch-shared
        // and reported by the `batch.fill` span).
        let wall_k = resolve_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
        obs.observe("svc.instance.messages", SVC_MSG_BOUNDS, inst_sent[k]);
        obs.observe("svc.instance.logical", SVC_LOGICAL_BOUNDS, logical_k);
        obs.observe("svc.instance.wall_ns", SVC_WALL_BOUNDS, wall_k);
        obs.observe(&regime_messages, SVC_MSG_BOUNDS, inst_sent[k]);
        obs.observe(&regime_logical, SVC_LOGICAL_BOUNDS, logical_k);
        obs.add(&regime_instances, 1);
        // The decision anchor of the causal chain: `trace.send` /
        // `trace.deliver` spans (transport layer) lead here.
        obs.record_span(SpanRecord {
            name: "trace.decide".to_string(),
            args: vec![
                ("instance".to_string(), k as u64),
                ("deciders".to_string(), resolved.decisions.len() as u64),
            ],
            logical: logical_k,
            wall_nanos: wall_k,
        });

        agg.absorb(&resolved.perf);
        decisions.push(resolved.decisions);
    }
    agg.fill_nanos = fill_nanos;
    net.eig = agg;

    obs.add("batch.instances", instances.len() as u64);
    obs.add("batch.arena_builds", arena_builds as u64);
    obs.add(
        "batch.arena_reuses",
        (instances.len() - arena_builds) as u64,
    );
    obs.add("batch.spoofs_rejected", spoofs_rejected);
    obs.add("svc.batch.sent", net.sent as u64);
    // Early-stop savings attribution: what certified-fault-set pruning
    // bought this batch, in envelopes never sent and subtrees never
    // fanned out (zero when early stopping is off or never fired).
    obs.add("svc.early_stop.messages_saved", net.eig.messages_saved);
    obs.add("svc.early_stop.subtrees_pruned", net.eig.subtrees_pruned);
    if let Some(registry) = obs.registry_mut() {
        net.eig.fold_into(registry);
    }

    (
        BatchRun {
            decisions,
            net,
            arena_builds,
            spoofs_rejected,
        },
        engines,
        engine_idx,
        stores,
    )
}

/// The legacy batch executor, preserved verbatim: one [`EigView`] per
/// (receiver, instance), each resolved recursively — the pre-arena fold.
///
/// Kept (like [`crate::reference_eval`] in the single-instance world) as
/// the differential oracle for [`run_batch`] and as the one-at-a-time
/// fold baseline that experiment E16 measures the arena batch against.
/// Reports `arena_builds = 0` and performs no envelope dedup or
/// spoof rejection: strictly on-time envelopes only, as before.
pub fn run_batch_reference<V: Clone + Ord + Hash>(
    params: Params,
    n: usize,
    instances: &[BatchInstance<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
) -> BatchRun<V> {
    check_batch_bounds(params, n, instances);
    let depth = params.rounds();
    let rule = crate::eig::VoteRule::Degradable { m: params.m() };
    let mut engine: RoundEngine<BatchMsg<V>> = RoundEngine::new(Topology::complete(n), seed);

    // views[node][instance]
    let mut views: Vec<Vec<EigView<V>>> = (0..n)
        .map(|i| {
            instances
                .iter()
                .map(|_| EigView::new(n, depth, NodeId::new(i)))
                .collect()
        })
        .collect();

    let net = engine.run_with(depth + 1, |i, ctx| {
        let me = NodeId::new(i);
        let round = ctx.round();
        let mut to_relay: Vec<(u32, Path, AgreementValue<V>)> = Vec::new();
        if round >= 1 {
            for (src, msg) in ctx.inbox().to_vec() {
                let idx = msg.instance as usize;
                let valid = idx < instances.len()
                    && msg.path.len() == round
                    && msg.path.last() == src
                    && !msg.path.contains(me);
                if !valid {
                    continue;
                }
                views[i][idx].record(msg.path.clone(), msg.value.clone());
                if round < depth {
                    to_relay.push((msg.instance, msg.path, msg.value));
                }
            }
        }
        if round == 0 {
            for (idx, inst) in instances.iter().enumerate() {
                if inst.sender != me {
                    continue;
                }
                let root = Path::root(inst.sender);
                for r in NodeId::all(n) {
                    if r == me {
                        continue;
                    }
                    if let Some(v) = claim_for(strategies, me, &root, r, &inst.value) {
                        ctx.send(
                            r,
                            BatchMsg {
                                instance: idx as u32,
                                path: root.clone(),
                                value: v,
                            },
                        );
                    }
                }
            }
        } else {
            for (instance, path, value) in to_relay {
                let child = path.child(me);
                for r in NodeId::all(n) {
                    if child.contains(r) {
                        continue;
                    }
                    if let Some(v) = claim_for(strategies, me, &child, r, &value) {
                        ctx.send(
                            r,
                            BatchMsg {
                                instance,
                                path: child.clone(),
                                value: v,
                            },
                        );
                    }
                }
            }
        }
    });

    let decisions = instances
        .iter()
        .enumerate()
        .map(|(idx, inst)| {
            NodeId::all(n)
                .filter(|r| *r != inst.sender)
                .map(|r| (r, views[r.index()][idx].resolve(inst.sender, rule)))
                .collect()
        })
        .collect();
    BatchRun {
        decisions,
        net,
        arena_builds: 0,
        spoofs_rejected: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byz::ByzInstance;
    use crate::protocol::run_protocol;
    use crate::value::Val;
    use simnet::{LinkFaultKind, LinkFaultPlan};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn params() -> Params {
        Params::new(1, 2).unwrap()
    }

    fn lying_strategies() -> BTreeMap<NodeId, Strategy<u64>> {
        [
            (n(3), Strategy::ConstantLie(Val::Value(9))),
            (
                n(4),
                Strategy::TwoFaced {
                    even: Val::Value(1),
                    odd: Val::Value(2),
                },
            ),
        ]
        .into_iter()
        .collect()
    }

    fn mixed_instances() -> Vec<BatchInstance<u64>> {
        vec![
            BatchInstance {
                sender: n(0),
                value: Val::Value(10),
            },
            BatchInstance {
                sender: n(1),
                value: Val::Value(20),
            },
            BatchInstance {
                sender: n(4),
                value: Val::Value(30),
            },
        ]
    }

    #[test]
    fn batch_matches_sequential_runs() {
        let strategies = lying_strategies();
        let instances = mixed_instances();
        let batch = run_batch(params(), 5, &instances, &strategies, 1);
        for (i, inst) in instances.iter().enumerate() {
            let single = ByzInstance::new(5, params(), inst.sender).unwrap();
            let solo = run_protocol(&single, &inst.value, &strategies, 1);
            assert_eq!(batch.decisions[i], solo.decisions, "instance {i}");
        }
        assert_eq!(batch.spoofs_rejected, 0);
    }

    #[test]
    fn batch_matches_legacy_reference_executor() {
        let strategies = lying_strategies();
        let instances = mixed_instances();
        let arena = run_batch(params(), 5, &instances, &strategies, 7);
        let legacy = run_batch_reference(params(), 5, &instances, &strategies, 7);
        assert_eq!(arena.decisions, legacy.decisions);
        assert_eq!(arena.net.sent, legacy.net.sent);
    }

    #[test]
    fn batch_message_count_is_sum_of_singles() {
        let instances: Vec<BatchInstance<u64>> = (0..4)
            .map(|i| BatchInstance {
                sender: n(i),
                value: Val::Value(i as u64),
            })
            .collect();
        let batch = run_batch(params(), 5, &instances, &BTreeMap::new(), 1);
        let single = crate::analysis::message_complexity(5, params().rounds());
        assert_eq!(batch.net.sent as u128, 4 * single);
        // ... but only one engine run: depth+1 rounds total.
        assert_eq!(batch.net.rounds_run, params().rounds() + 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = run_batch::<u64>(params(), 5, &[], &BTreeMap::new(), 1);
        assert!(batch.decisions.is_empty());
        assert_eq!(batch.net.sent, 0);
        assert_eq!(batch.arena_builds, 0);
    }

    #[test]
    fn interactive_consistency_via_batch() {
        // One instance per sender = IC; every fault-free node's vector
        // must match the dedicated IC runner's (degradable variant).
        let values: Vec<Val> = (0..5).map(|i| Val::Value(100 + i as u64)).collect();
        let strategies: BTreeMap<NodeId, Strategy<u64>> =
            [(n(4), Strategy::ConstantLie(Val::Value(9)))]
                .into_iter()
                .collect();
        let instances: Vec<BatchInstance<u64>> = (0..5)
            .map(|i| BatchInstance {
                sender: n(i),
                value: values[i],
            })
            .collect();
        let batch = run_batch(params(), 5, &instances, &strategies, 1);
        // Distinct senders: one arena each, no reuse possible.
        assert_eq!(batch.arena_builds, 5);
        let ic = crate::ic::run_degradable_ic(params(), &values, &strategies);
        for (slot, decisions) in batch.decisions.iter().enumerate() {
            for (r, vec) in &ic.vectors {
                if *r == n(slot) {
                    continue; // senders trust themselves in the IC runner
                }
                assert_eq!(decisions[r], vec[slot], "slot {slot}, receiver {r}");
            }
        }
    }

    #[test]
    fn stream_batch_builds_one_arena_for_all_slots() {
        // K slots from one sender: the arena is built once and shared.
        let instances: Vec<BatchInstance<u64>> = (0..8)
            .map(|k| BatchInstance {
                sender: n(0),
                value: Val::Value(100 + k),
            })
            .collect();
        let strategies = lying_strategies();
        let batch = run_batch(params(), 5, &instances, &strategies, 3);
        assert_eq!(batch.arena_builds, 1);
        for (k, inst) in instances.iter().enumerate() {
            let single = ByzInstance::new(5, params(), inst.sender).unwrap();
            let solo = run_protocol(&single, &inst.value, &strategies, 3);
            assert_eq!(batch.decisions[k], solo.decisions, "slot {k}");
        }
    }

    #[test]
    fn duplicate_chaos_is_decision_invariant() {
        // Duplicating every envelope on every link must not change any
        // decision: the per-(instance, path) slot fold is first-write-wins.
        let strategies = lying_strategies();
        let instances = mixed_instances();
        let baseline = run_batch(params(), 5, &instances, &strategies, 1);
        let plan = LinkFaultPlan::uniform_complete(5, &[LinkFaultKind::Duplicate { p: 1.0 }]);
        let chaotic = run_batch_with(params(), 5, &instances, &strategies, 1, |e| {
            e.with_link_faults(plan)
        });
        assert!(chaotic.net.duplicated > 0);
        assert_eq!(baseline.decisions, chaotic.decisions);
        assert_eq!(
            baseline.net.eig, chaotic.net.eig,
            "duplicates not materialized"
        );
    }

    #[test]
    fn cut_plan_batch_matches_sequential_runs() {
        // Deterministic link cuts affect batch and solo runs identically.
        let plan = LinkFaultPlan::healthy()
            .with_symmetric(n(1), n(2), LinkFaultKind::Cut { from_round: 1 })
            .with(n(0), n(3), LinkFaultKind::Cut { from_round: 0 });
        let strategies = lying_strategies();
        let instances = mixed_instances();
        let batch = run_batch_with(params(), 5, &instances, &strategies, 2, {
            let plan = plan.clone();
            |e| e.with_link_faults(plan)
        });
        assert!(batch.net.dropped_link_cut > 0);
        for (i, inst) in instances.iter().enumerate() {
            let single = ByzInstance::new(5, params(), inst.sender).unwrap();
            let solo = crate::protocol::run_protocol_with(&single, &inst.value, &strategies, 2, {
                let plan = plan.clone();
                |e| e.with_link_faults(plan)
            });
            assert_eq!(batch.decisions[i], solo.decisions, "instance {i}");
        }
    }

    #[test]
    fn cross_instance_spoofs_are_rejected() {
        // A corrupting relayer re-tags genuine envelopes with the other
        // instance's id. The re-tagged envelope's path root no longer
        // matches the claimed instance's sender, so it must be rejected —
        // decision-identical to the corruption-as-absence run.
        let instances: Vec<BatchInstance<u64>> = vec![
            BatchInstance {
                sender: n(0),
                value: Val::Value(10),
            },
            BatchInstance {
                sender: n(1),
                value: Val::Value(20),
            },
        ];
        let plan = LinkFaultPlan::uniform_complete(5, &[LinkFaultKind::Corrupt { p: 0.5 }]);
        let spoofed = run_batch_with(params(), 5, &instances, &BTreeMap::new(), 9, {
            let plan = plan.clone();
            |e| {
                e.with_link_faults(plan)
                    .with_corruptor(|msg: &BatchMsg<u64>, _| {
                        Some(BatchMsg {
                            instance: (msg.instance + 1) % 2,
                            path: msg.path.clone(),
                            value: msg.value,
                        })
                    })
            }
        });
        let absent = run_batch_with(params(), 5, &instances, &BTreeMap::new(), 9, |e| {
            e.with_link_faults(plan)
                .with_corruptor(|_: &BatchMsg<u64>, _| None)
        });
        assert!(spoofed.spoofs_rejected > 0, "{:?}", spoofed.net);
        assert_eq!(spoofed.decisions, absent.decisions);
        assert_eq!(absent.spoofs_rejected, 0);
    }

    #[test]
    fn observed_batch_records_spans_and_counters() {
        let mut obs = Obs::enabled();
        let instances = mixed_instances();
        let (run, ..) = run_batch_observed(
            params(),
            5,
            &instances,
            &lying_strategies(),
            1,
            2,
            |e| e,
            &mut obs,
        );
        let quiet = run_batch(params(), 5, &instances, &lying_strategies(), 1);
        assert_eq!(run.decisions, quiet.decisions, "observation is passive");
        let spans: Vec<&str> = obs.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            spans,
            [
                "batch.fill",
                "batch.resolve",
                "trace.decide",
                "batch.resolve",
                "trace.decide",
                "batch.resolve",
                "trace.decide"
            ]
        );
        let fill = &obs.spans()[0];
        assert_eq!(fill.logical, run.net.eig.messages_materialized);
        assert_eq!(
            obs.registry().counter("batch.instances"),
            instances.len() as u64
        );
        assert_eq!(obs.registry().counter("batch.arena_builds"), 3);
        assert_eq!(obs.registry().counter("batch.arena_reuses"), 0);
        assert_eq!(
            obs.registry().counter("eig.messages_materialized"),
            run.net.eig.messages_materialized
        );
    }

    #[test]
    fn observed_batch_attributes_latency_per_instance_and_regime() {
        let mut obs = Obs::enabled();
        let instances = mixed_instances();
        let (run, ..) = run_batch_observed(
            params(),
            5,
            &instances,
            &lying_strategies(),
            1,
            1,
            |e| e,
            &mut obs,
        );
        let reg = obs.registry();

        // Per-instance end-to-end histograms: one observation per
        // instance; total messages equal the engine's send count, and
        // total logical cost equals the summed resolve work.
        let msgs = reg.histogram("svc.instance.messages").unwrap();
        assert_eq!(msgs.count(), instances.len() as u64);
        assert_eq!(msgs.sum(), run.net.sent as u64);
        let logical = reg.histogram("svc.instance.logical").unwrap();
        assert_eq!(logical.count(), instances.len() as u64);
        assert_eq!(
            logical.sum(),
            run.net.eig.votes_evaluated + run.net.eig.votes_memo_hit
        );
        assert!(reg.histogram("svc.instance.wall_ns").is_some());

        // f = 2 liars > m = 1: the whole batch runs in the degraded
        // regime, and the full-regime series stays untouched.
        assert_eq!(
            reg.counter("svc.regime.degraded.instances"),
            instances.len() as u64
        );
        assert_eq!(reg.counter("svc.regime.full.instances"), 0);
        assert!(reg.histogram("svc.regime.full.messages").is_none());
        let degraded = reg.histogram("svc.regime.degraded.messages").unwrap();
        assert_eq!(degraded.sum(), msgs.sum());

        // A fault-free batch lands on the full side of the boundary and
        // credits its early-stop savings.
        let mut obs_full = Obs::enabled();
        let (run_full, ..) = run_batch_core(
            params(),
            5,
            &instances,
            &BTreeMap::new(),
            1,
            1,
            true,
            None,
            |e| e,
            &mut obs_full,
        );
        let reg_full = obs_full.registry();
        assert_eq!(
            reg_full.counter("svc.regime.full.instances"),
            instances.len() as u64
        );
        assert_eq!(reg_full.counter("svc.regime.degraded.instances"), 0);
        assert_eq!(
            reg_full.counter("svc.early_stop.messages_saved"),
            run_full.net.eig.messages_saved
        );
        assert_eq!(
            reg_full.counter("svc.early_stop.subtrees_pruned"),
            run_full.net.eig.subtrees_pruned
        );

        // The decide spans anchor the causal chain: one per instance, in
        // instance order, carrying the decider fan-out.
        let decides: Vec<_> = obs
            .spans()
            .iter()
            .filter(|s| s.name == "trace.decide")
            .collect();
        assert_eq!(decides.len(), instances.len());
        for (k, span) in decides.iter().enumerate() {
            assert_eq!(span.args[0], ("instance".to_string(), k as u64));
            // Every correct node that is not the sender decides.
            assert_eq!(span.args[1].0, "deciders");
            assert!(span.args[1].1 > 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sender_range_checked() {
        let instances = vec![BatchInstance {
            sender: n(9),
            value: Val::Value(1),
        }];
        run_batch(params(), 5, &instances, &BTreeMap::new(), 1);
    }

    #[test]
    fn traced_batch_is_passive_and_covers_every_close() {
        let strategies = lying_strategies();
        let instances = mixed_instances();
        let mut delivers = 0usize;
        let mut closes = 0usize;
        let mut sent_in_trace = 0usize;
        let (run, views) = run_batch_traced(
            params(),
            5,
            &instances,
            &strategies,
            1,
            false,
            |e| e,
            &mut |ev| match ev {
                BatchTraceEvent::Deliver { .. } => delivers += 1,
                BatchTraceEvent::Close { sends, .. } => {
                    closes += 1;
                    sent_in_trace += sends.len();
                }
            },
        );
        let quiet = run_batch(params(), 5, &instances, &strategies, 1);
        assert_eq!(run.decisions, quiet.decisions, "tracing is passive");
        // Every instance closes at every node in every round, even when
        // it has nothing to send — the checker needs the phase ticks.
        let rounds = params().rounds() + 1;
        assert_eq!(closes, instances.len() * 5 * rounds);
        assert!(delivers > 0);
        // Traced sends are pre-chaos; with no chaos plan they are
        // exactly the engine's send count.
        assert_eq!(sent_in_trace, run.net.sent);
        assert_eq!(views.len(), instances.len());
    }

    #[test]
    fn early_stopped_batch_matches_and_saves_messages() {
        // Fault-free: every level-1 subtree prunes, and every saved
        // message is a real envelope the engine never sent.
        let instances = vec![
            BatchInstance {
                sender: n(0),
                value: Val::Value(7),
            },
            BatchInstance {
                sender: n(0),
                value: Val::Value(8),
            },
        ];
        let baseline = run_batch(params(), 5, &instances, &BTreeMap::new(), 3);
        let (early, _) = run_batch_traced(
            params(),
            5,
            &instances,
            &BTreeMap::new(),
            3,
            true,
            |e| e,
            &mut |_| {},
        );
        assert_eq!(early.decisions, baseline.decisions);
        assert!(early.net.eig.subtrees_pruned > 0);
        assert!(early.net.eig.messages_saved > 0);
        assert_eq!(
            early.net.sent + early.net.eig.messages_saved as usize,
            baseline.net.sent,
            "conservation: sent + saved == baseline sent"
        );
    }

    #[test]
    fn early_stopped_batch_with_liars_stays_decision_identical() {
        // Two relay liars at depth 2: no length-1 path can certify both
        // faults, so the gate never fires — the runs must be identical.
        let strategies = lying_strategies();
        let instances = mixed_instances();
        let full = run_batch(params(), 5, &instances, &strategies, 3);
        let (stopped, _) = run_batch_traced(
            params(),
            5,
            &instances,
            &strategies,
            3,
            true,
            |e| e,
            &mut |_| {},
        );
        assert_eq!(stopped.decisions, full.decisions);
        assert_eq!(stopped.net.sent, full.net.sent);

        // A lying *sender* is a certified fault every path carries, so
        // a depth-3 run prunes below the first relay level even faulty.
        let p2 = Params::new(2, 2).unwrap();
        let strategies: BTreeMap<NodeId, Strategy<u64>> =
            [(n(0), Strategy::ConstantLie(Val::Value(9)))]
                .into_iter()
                .collect();
        let instances = vec![BatchInstance {
            sender: n(0),
            value: Val::Value(5),
        }];
        let full = run_batch(p2, 7, &instances, &strategies, 9);
        let (early, _) =
            run_batch_traced(p2, 7, &instances, &strategies, 9, true, |e| e, &mut |_| {});
        assert_eq!(early.decisions, full.decisions);
        assert!(early.net.eig.messages_saved > 0);
        assert!(early.net.sent < full.net.sent);
    }
}
