//! Live churn: crash/rejoin of nodes across epochs of the batched
//! service.
//!
//! The batched service ([`crate::service`]) runs one membership for one
//! multiplexed execution. Deployed systems lose nodes mid-stream and get
//! them back: a crashed node is *silent* for a while (the cleanest
//! Byzantine behaviour — absence everywhere), then rejoins with no state.
//! This module runs a sequence of **epochs** — each a full
//! [`run_batch_observed`] execution — under a per-epoch membership mask:
//!
//! * a node with `alive[i] == false` is crashed for the epoch: it sends
//!   nothing (modelled as [`Strategy::Silent`]), and it counts into the
//!   epoch's fault set alongside the genuinely Byzantine nodes, so the
//!   D.1–D.4 verdicts and the C-corollary class sizes are judged against
//!   the *effective* fault count `f = |byzantine ∪ crashed|`;
//! * a rejoin is membership-level, not state-level: epochs carry
//!   independent instances, so a rejoined node simply participates again
//!   (and its instance slots become live targets for cross-instance
//!   spoofing — the batch spoof check must keep holding, which
//!   [`ChurnRun`] counts per epoch and tests pin).
//!
//! Per-epoch observability: verdict counters
//! (`churn.verdict.{satisfied,violated,beyond_u}`), crash/rejoin
//! counters, spoof counts, and a histogram of the largest fault-free
//! agreeing class (`churn.largest_class`) — the paper's `m+1` corollary
//! made measurable under churn.

use crate::adversary::Strategy;
use crate::conditions::{check_degradable, RunRecord, Verdict};
use crate::params::Params;
use crate::service::{run_batch_observed, BatchInstance, BatchMsg};
use obs::Obs;
use simnet::{NodeId, RoundEngine};
use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

/// One epoch of a churn run: who is alive, and what is agreed on.
#[derive(Debug, Clone)]
pub struct EpochPlan<V> {
    /// Per-node liveness mask (length `n`). Dead nodes are silent for the
    /// whole epoch.
    pub alive: Vec<bool>,
    /// The agreement instances of this epoch.
    pub instances: Vec<BatchInstance<V>>,
}

/// What one epoch produced.
#[derive(Debug, Clone)]
pub struct EpochOutcome<V: Ord> {
    /// Nodes crashed this epoch.
    pub crashed: BTreeSet<NodeId>,
    /// One record per instance, with the effective fault set.
    pub records: Vec<RunRecord<V>>,
    /// One verdict per instance.
    pub verdicts: Vec<Verdict<V>>,
    /// Cross-instance spoofs rejected during the epoch.
    pub spoofs_rejected: u64,
    /// Envelopes sent during the epoch.
    pub sent: usize,
}

impl<V: Clone + Ord> EpochOutcome<V> {
    /// Whether every instance's verdict is satisfied or (legitimately)
    /// beyond `u`.
    pub fn all_within_model(&self) -> bool {
        self.verdicts
            .iter()
            .all(|v| !matches!(v, Verdict::Violated(_)))
    }
}

/// The outcome of a whole churn run.
#[derive(Debug, Clone)]
pub struct ChurnRun<V: Ord> {
    /// Per-epoch outcomes, in order.
    pub epochs: Vec<EpochOutcome<V>>,
    /// Total crash transitions (alive in epoch `e-1`, dead in `e`;
    /// epoch 0 crashes count from an all-alive baseline).
    pub crashes: usize,
    /// Total rejoin transitions (dead in epoch `e-1`, alive in `e`).
    pub rejoins: usize,
}

impl<V: Clone + Ord> ChurnRun<V> {
    /// Total spoofs rejected across all epochs.
    pub fn spoofs_rejected(&self) -> u64 {
        self.epochs.iter().map(|e| e.spoofs_rejected).sum()
    }

    /// Count of epochs×instances whose verdict was an outright violation.
    pub fn violations(&self) -> usize {
        self.epochs
            .iter()
            .flat_map(|e| &e.verdicts)
            .filter(|v| matches!(v, Verdict::Violated(_)))
            .count()
    }
}

/// The per-epoch engine seed: decorrelated from `master_seed` per epoch
/// index, stable across workers and processes.
fn epoch_seed(master_seed: u64, epoch: usize) -> u64 {
    master_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(epoch as u64 + 1)
}

/// Runs `epochs` sequentially over the batched service. See
/// [`run_churn_with`] for the engine hook.
pub fn run_churn<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    epochs: &[EpochPlan<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    obs: &mut Obs,
) -> ChurnRun<V> {
    run_churn_with(params, n, epochs, strategies, seed, obs, |_, e| e)
}

/// Runs `epochs` sequentially, handing each epoch's [`RoundEngine`] to
/// `engine_setup` (for link-fault plans, adaptive corruptors, tracing)
/// before the epoch executes.
///
/// # Panics
///
/// Panics if any mask's length differs from `n`, or the batch bounds are
/// violated (see [`run_batch_observed`]).
pub fn run_churn_with<V: Clone + Ord + Hash + Send + Sync>(
    params: Params,
    n: usize,
    epochs: &[EpochPlan<V>],
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    seed: u64,
    obs: &mut Obs,
    mut engine_setup: impl FnMut(usize, RoundEngine<BatchMsg<V>>) -> RoundEngine<BatchMsg<V>>,
) -> ChurnRun<V> {
    let mut out = Vec::with_capacity(epochs.len());
    let mut crashes = 0usize;
    let mut rejoins = 0usize;
    let mut prev_alive: Vec<bool> = vec![true; n];
    for (e, epoch) in epochs.iter().enumerate() {
        assert_eq!(epoch.alive.len(), n, "epoch {e} mask length != n");
        let crashed: BTreeSet<NodeId> = NodeId::all(n)
            .filter(|node| !epoch.alive[node.index()])
            .collect();
        for node in NodeId::all(n) {
            match (prev_alive[node.index()], epoch.alive[node.index()]) {
                (true, false) => crashes += 1,
                (false, true) => rejoins += 1,
                _ => {}
            }
        }
        prev_alive = epoch.alive.clone();

        // Crashed nodes are silent; a node both Byzantine and crashed is
        // silent too (crash wins — it cannot send at all).
        let mut effective = strategies.clone();
        for node in &crashed {
            effective.insert(*node, Strategy::Silent);
        }
        let (run, ..) = run_batch_observed(
            params,
            n,
            &epoch.instances,
            &effective,
            epoch_seed(seed, e),
            1,
            |eng| engine_setup(e, eng),
            obs,
        );

        // Effective fault set: declared Byzantine ∪ crashed.
        let faulty: BTreeSet<NodeId> = strategies
            .keys()
            .copied()
            .chain(crashed.iter().copied())
            .collect();
        let mut records = Vec::with_capacity(epoch.instances.len());
        let mut verdicts = Vec::with_capacity(epoch.instances.len());
        for (k, inst) in epoch.instances.iter().enumerate() {
            let record = RunRecord {
                params,
                n,
                sender: inst.sender,
                sender_value: inst.value.clone(),
                faulty: faulty.clone(),
                decisions: run.decisions[k].clone(),
            };
            let verdict = check_degradable(&record);
            match &verdict {
                Verdict::Satisfied(sat) => {
                    obs.add("churn.verdict.satisfied", 1);
                    obs.observe(
                        "churn.largest_class",
                        &[1, 2, 4, 8, 16],
                        sat.largest_agreeing as u64,
                    );
                }
                Verdict::Violated(_) => obs.add("churn.verdict.violated", 1),
                Verdict::BeyondU { .. } => obs.add("churn.verdict.beyond_u", 1),
            }
            records.push(record);
            verdicts.push(verdict);
        }
        obs.add("churn.spoofs_rejected", run.spoofs_rejected);
        out.push(EpochOutcome {
            crashed,
            records,
            verdicts,
            spoofs_rejected: run.spoofs_rejected,
            sent: run.net.sent,
        });
    }
    obs.add("churn.epochs", epochs.len() as u64);
    obs.add("churn.crashes", crashes as u64);
    obs.add("churn.rejoins", rejoins as u64);
    ChurnRun {
        epochs: out,
        crashes,
        rejoins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Val;
    use simnet::{LinkFaultKind, LinkFaultPlan};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn params() -> Params {
        Params::new(1, 2).unwrap()
    }

    fn slot(sender: usize, v: u64) -> BatchInstance<u64> {
        BatchInstance {
            sender: n(sender),
            value: Val::Value(v),
        }
    }

    #[test]
    fn crash_degrades_and_rejoin_restores() {
        // Epoch 0: all alive, f = 0 → D.1. Epoch 1: two crashed, f = 2 →
        // D.3 (degraded but satisfied). Epoch 2: all back → D.1 again.
        let epochs = vec![
            EpochPlan {
                alive: vec![true; 5],
                instances: vec![slot(0, 10)],
            },
            EpochPlan {
                alive: vec![true, true, true, false, false],
                instances: vec![slot(0, 20)],
            },
            EpochPlan {
                alive: vec![true; 5],
                instances: vec![slot(0, 30)],
            },
        ];
        let run = run_churn(
            params(),
            5,
            &epochs,
            &BTreeMap::new(),
            7,
            &mut Obs::disabled(),
        );
        assert_eq!(run.crashes, 2);
        assert_eq!(run.rejoins, 2);
        assert_eq!(run.violations(), 0);
        use crate::conditions::Condition;
        let conditions: Vec<Condition> = run
            .epochs
            .iter()
            .map(|e| match &e.verdicts[0] {
                Verdict::Satisfied(s) => s.condition,
                other => panic!("expected satisfied, got {other:?}"),
            })
            .collect();
        assert_eq!(conditions, [Condition::D1, Condition::D3, Condition::D1]);
    }

    #[test]
    fn crashed_sender_epoch_reads_as_faulty_sender() {
        // The sender crashes for one epoch: every honest receiver must
        // land on V_d (silent sender), judged under D.2 (f = 1 ≤ m).
        let epochs = vec![EpochPlan {
            alive: vec![false, true, true, true, true],
            instances: vec![slot(0, 10)],
        }];
        let run = run_churn(
            params(),
            5,
            &epochs,
            &BTreeMap::new(),
            3,
            &mut Obs::disabled(),
        );
        let epoch = &run.epochs[0];
        assert!(epoch.all_within_model());
        for (r, d) in epoch.records[0].fault_free_decisions() {
            assert_eq!(d, Val::Default, "receiver {r}");
        }
    }

    #[test]
    fn byzantine_plus_crash_counts_into_one_fault_set() {
        // One liar and one crashed node: f = 2 > m, so the verdict is
        // judged under the degraded conditions, not D.1/D.2.
        let strategies: BTreeMap<NodeId, Strategy<u64>> =
            [(n(4), Strategy::ConstantLie(Val::Value(9)))]
                .into_iter()
                .collect();
        let epochs = vec![EpochPlan {
            alive: vec![true, true, true, false, true],
            instances: vec![slot(0, 10), slot(1, 20)],
        }];
        let run = run_churn(params(), 5, &epochs, &strategies, 11, &mut Obs::disabled());
        let epoch = &run.epochs[0];
        assert_eq!(epoch.records[0].f(), 2);
        assert!(epoch.all_within_model(), "{:?}", epoch.verdicts);
    }

    #[test]
    fn spoof_rejection_when_a_crashed_senders_slot_is_reused_after_rejoin() {
        // Node 1 is a sender in epoch 0, crashes in epoch 1, rejoins in
        // epoch 2 reusing its slot. A corrupting relayer in epoch 2
        // re-tags instance-0 envelopes with node 1's reclaimed slot id;
        // the path-root pin must reject every one of them and decisions
        // must match the corruption-as-absence run.
        let epochs = vec![
            EpochPlan {
                alive: vec![true; 5],
                instances: vec![slot(0, 10), slot(1, 20)],
            },
            EpochPlan {
                alive: vec![true, false, true, true, true],
                instances: vec![slot(0, 11)],
            },
            EpochPlan {
                alive: vec![true; 5],
                instances: vec![slot(0, 12), slot(1, 22)],
            },
        ];
        let plan = LinkFaultPlan::uniform_complete(5, &[LinkFaultKind::Corrupt { p: 0.5 }]);
        let spoofing = run_churn_with(
            params(),
            5,
            &epochs,
            &BTreeMap::new(),
            9,
            &mut Obs::disabled(),
            |epoch, eng| {
                if epoch == 2 {
                    // Re-tag instance-0 envelopes with node 1's reclaimed
                    // slot id; pass everything else through untouched so
                    // the two runs keep identical message streams.
                    eng.with_link_faults(plan.clone())
                        .with_corruptor(|msg: &BatchMsg<u64>, _| {
                            Some(BatchMsg {
                                instance: if msg.instance == 0 { 1 } else { msg.instance },
                                path: msg.path.clone(),
                                value: msg.value,
                            })
                        })
                } else {
                    eng
                }
            },
        );
        let absent = run_churn_with(
            params(),
            5,
            &epochs,
            &BTreeMap::new(),
            9,
            &mut Obs::disabled(),
            |epoch, eng| {
                if epoch == 2 {
                    // Absence baseline: drop exactly the envelopes the
                    // spoofing run re-tags, deliver the rest unchanged.
                    eng.with_link_faults(plan.clone())
                        .with_corruptor(|msg: &BatchMsg<u64>, _| {
                            if msg.instance == 0 {
                                None
                            } else {
                                Some(msg.clone())
                            }
                        })
                } else {
                    eng
                }
            },
        );
        assert_eq!(spoofing.epochs[0].spoofs_rejected, 0);
        assert_eq!(spoofing.epochs[1].spoofs_rejected, 0);
        assert!(
            spoofing.epochs[2].spoofs_rejected > 0,
            "re-tagged envelopes must be rejected"
        );
        for k in 0..2 {
            assert_eq!(
                spoofing.epochs[2].records[k].decisions, absent.epochs[2].records[k].decisions,
                "slot {k}: spoofs must read as absence"
            );
        }
    }

    #[test]
    fn adaptive_corruptor_hooks_into_the_epoch_engine() {
        // The simnet-engine hook: an adaptive adversary rides the
        // corruptor, observing traffic on corrupt-flagged links and
        // rewriting claims online. The run must stay within the model
        // (corruption on a link is absence or a re-claim the vote
        // absorbs) and be deterministic across invocations.
        let epochs = vec![
            EpochPlan {
                alive: vec![true; 5],
                instances: vec![slot(0, 10)],
            },
            EpochPlan {
                alive: vec![true, true, true, true, false],
                instances: vec![slot(0, 20)],
            },
        ];
        let plan = LinkFaultPlan::healthy()
            .with(n(3), n(1), LinkFaultKind::Corrupt { p: 1.0 })
            .with(n(3), n(2), LinkFaultKind::Corrupt { p: 1.0 });
        let runs: Vec<ChurnRun<u64>> = (0..2)
            .map(|_| {
                run_churn_with(
                    params(),
                    5,
                    &epochs,
                    &BTreeMap::new(),
                    5,
                    &mut Obs::disabled(),
                    |_, eng| {
                        eng.with_link_faults(plan.clone()).with_corruptor(
                            crate::adaptive::engine_corruptor(crate::adaptive::adversary_by_id::<
                                u64,
                            >(0)),
                        )
                    },
                )
            })
            .collect();
        for epoch in &runs[0].epochs {
            // Link corruption is attributable to the link's source node
            // (node 3 here): with it folded into the fault set the
            // verdicts must hold.
            for record in &epoch.records {
                let mut rec = record.clone();
                rec.faulty.insert(n(3));
                assert!(
                    !matches!(check_degradable(&rec), Verdict::Violated(_)),
                    "{rec:?}"
                );
            }
        }
        let digest = |r: &ChurnRun<u64>| -> Vec<_> {
            r.epochs
                .iter()
                .map(|e| (e.records[0].decisions.clone(), e.spoofs_rejected))
                .collect()
        };
        assert_eq!(digest(&runs[0]), digest(&runs[1]), "determinism");
    }

    #[test]
    fn epoch_observability_is_recorded() {
        let epochs = vec![
            EpochPlan {
                alive: vec![true; 5],
                instances: vec![slot(0, 1)],
            },
            EpochPlan {
                alive: vec![true, true, true, true, false],
                instances: vec![slot(0, 2)],
            },
        ];
        let mut obs = Obs::enabled();
        run_churn(params(), 5, &epochs, &BTreeMap::new(), 1, &mut obs);
        let reg = obs.registry();
        assert_eq!(reg.counter("churn.epochs"), 2);
        assert_eq!(reg.counter("churn.crashes"), 1);
        assert_eq!(reg.counter("churn.rejoins"), 0);
        assert_eq!(reg.counter("churn.verdict.satisfied"), 2);
        assert!(reg.histogram("churn.largest_class").is_some());
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn mask_length_is_checked() {
        let epochs = vec![EpochPlan {
            alive: vec![true; 4],
            instances: vec![slot(0, 1)],
        }];
        run_churn::<u64>(
            params(),
            5,
            &epochs,
            &BTreeMap::new(),
            1,
            &mut Obs::disabled(),
        );
    }
}
