//! Closed-form analysis: resource bounds, trade-off enumeration and message
//! complexity of algorithm BYZ.

use crate::params::Params;
use crate::path::path_count;
use serde::{Deserialize, Serialize};

/// One cell of the paper's Section 2 table (minimum node counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MinNodesCell {
    /// `u < m`: the parameter pair is invalid (printed "-" in the paper).
    Invalid,
    /// Minimum node count `2m + u + 1`.
    Nodes(usize),
}

/// The Section 2 table: minimum number of nodes necessary for
/// `m/u`-degradable agreement, for `m` in `1..=max_m` and `u` in
/// `1..=max_u`. Rows are `m`, columns are `u`.
pub fn min_nodes_table(max_m: usize, max_u: usize) -> Vec<Vec<MinNodesCell>> {
    (1..=max_m)
        .map(|m| {
            (1..=max_u)
                .map(|u| match Params::new(m, u) {
                    Ok(p) => MinNodesCell::Nodes(p.min_nodes()),
                    Err(_) => MinNodesCell::Invalid,
                })
                .collect()
        })
        .collect()
}

/// All maximal `(m, u)` trade-offs available in an `n`-node system: for
/// each `m` with `3m + 1 <= n`, the largest `u` such that `2m + u + 1 <= n`
/// (and `u >= m`). For the paper's 7-node example this yields
/// `(0, 6), (1, 4), (2, 2)`.
pub fn tradeoffs(n: usize) -> Vec<Params> {
    let mut out = Vec::new();
    let mut m = 0usize;
    loop {
        if 2 * m + m + 1 > n {
            break;
        }
        let u = n - 1 - 2 * m;
        if u < m {
            break;
        }
        out.push(Params::new(m, u).expect("u >= m by construction"));
        m += 1;
    }
    out
}

/// Total number of point-to-point messages sent by the EIG unfolding of
/// BYZ(m, m) (or OM(m)) on `n` fully connected nodes:
/// `Σ_{ℓ=1}^{depth} (n-1)(n-2)…(n-ℓ)` — at level `ℓ` every path of length
/// `ℓ` is one message to each of its `n - ℓ` receivers.
pub fn message_complexity(n: usize, depth: usize) -> u128 {
    (1..=depth)
        .map(|l| path_count(n, l) * (n - l) as u128)
        .sum()
}

/// Number of distinct relay paths materialized by a depth-`depth` EIG run
/// (storage complexity per receiver is bounded by this).
pub fn storage_complexity(n: usize, depth: usize) -> u128 {
    (1..=depth).map(|l| path_count(n, l)).sum()
}

/// Messages sent by Crusader agreement on `n` nodes: one sender round plus
/// one full echo round — `(n-1) + (n-1)(n-2)`, independent of `t`.
pub fn crusader_message_complexity(n: usize) -> u128 {
    let n = n as u128;
    (n - 1) + (n - 1) * (n - 2)
}

/// Messages sent by SM(m) in the **fault-free** case: the sender's
/// broadcast plus each receiver relaying the single new value once —
/// `(n-1) + (n-1)(n-2)`, independent of `m` (later rounds carry nothing
/// new). A faulty sender signing `k` distinct values multiplies the relay
/// term by up to `k`.
pub fn sm_honest_message_complexity(n: usize) -> u128 {
    crusader_message_complexity(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_formula() {
        let t = min_nodes_table(3, 6);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].len(), 6);
        // m=1, u=1 -> 4; m=1, u=4 -> 7; m=2, u=1 -> invalid; m=3, u=3 -> 10.
        assert_eq!(t[0][0], MinNodesCell::Nodes(4));
        assert_eq!(t[0][3], MinNodesCell::Nodes(7));
        assert_eq!(t[1][0], MinNodesCell::Invalid);
        assert_eq!(t[2][2], MinNodesCell::Nodes(10));
    }

    #[test]
    fn invalid_cells_below_diagonal() {
        let t = min_nodes_table(3, 6);
        for (mi, row) in t.iter().enumerate() {
            for (ui, cell) in row.iter().enumerate() {
                let (m, u) = (mi + 1, ui + 1);
                if u < m {
                    assert_eq!(*cell, MinNodesCell::Invalid);
                } else {
                    assert_eq!(*cell, MinNodesCell::Nodes(2 * m + u + 1));
                }
            }
        }
    }

    #[test]
    fn seven_node_tradeoffs() {
        let t = tradeoffs(7);
        let pairs: Vec<(usize, usize)> = t.iter().map(|p| (p.m(), p.u())).collect();
        assert_eq!(pairs, vec![(0, 6), (1, 4), (2, 2)]);
    }

    #[test]
    fn four_node_tradeoffs() {
        let t = tradeoffs(4);
        let pairs: Vec<(usize, usize)> = t.iter().map(|p| (p.m(), p.u())).collect();
        assert_eq!(pairs, vec![(0, 3), (1, 1)]);
    }

    #[test]
    fn message_complexity_small_cases() {
        // n=4, depth 2 (BYZ(1,1)): level 1: 3 msgs; level 2: 3 paths x 2
        // receivers = 6. Total 9.
        assert_eq!(message_complexity(4, 2), 9);
        // n=7, depth 3 (BYZ(2,2)): 6 + 6*5 + 30*4 = 156.
        assert_eq!(message_complexity(7, 3), 156);
    }

    #[test]
    fn storage_complexity_counts_paths() {
        assert_eq!(storage_complexity(4, 2), 1 + 3);
        assert_eq!(storage_complexity(7, 3), 1 + 6 + 30);
    }

    #[test]
    fn crusader_formula() {
        assert_eq!(crusader_message_complexity(4), 3 + 6);
        assert_eq!(crusader_message_complexity(7), 6 + 30);
        // Crusader equals the first two EIG levels:
        assert_eq!(crusader_message_complexity(7), message_complexity(7, 2));
    }

    #[test]
    fn byz_dominates_crusader_beyond_two_rounds() {
        for n in [7usize, 10, 13] {
            assert!(message_complexity(n, 3) > crusader_message_complexity(n));
        }
    }

    #[test]
    fn complexity_grows_with_depth() {
        for n in [5usize, 8, 11] {
            let mut prev = 0u128;
            for depth in 1..4 {
                let c = message_complexity(n, depth);
                assert!(c > prev);
                prev = c;
            }
        }
    }
}
