//! The [`Executor`] abstraction: one scenario, many ways to run it.

use crate::scenario::{Scenario, ScenarioError};
use degradable::{run_protocol, RunRecord};

/// Runs a [`Scenario`] to a [`RunRecord`] for condition checking.
///
/// Implementations must be pure functions of the scenario (including its
/// `master_seed`): calling `execute` twice on the same scenario yields the
/// same record. That is what lets [`crate::SweepRunner`] parallelize
/// trials freely and lets equivalence tests compare executors
/// symbolically.
pub trait Executor {
    /// Short stable name for reports and labels.
    fn name(&self) -> &'static str;

    /// Executes the scenario.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] when the scenario violates the executor's
    /// requirements (parameter bounds, node count, topology).
    fn execute(&self, scenario: &Scenario) -> Result<RunRecord<u64>, ScenarioError>;
}

fn require_complete(scenario: &Scenario, executor: &'static str) -> Result<(), ScenarioError> {
    if scenario.is_complete_topology() {
        Ok(())
    } else {
        Err(ScenarioError::TopologyUnsupported {
            topology: scenario.topology.name().to_string(),
            executor,
        })
    }
}

/// The `degradable::eig` reference executor: decisions computed directly
/// from the adversary's behaviour function, no message passing.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceExecutor;

impl Executor for ReferenceExecutor {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn execute(&self, scenario: &Scenario) -> Result<RunRecord<u64>, ScenarioError> {
        require_complete(scenario, self.name())?;
        let instance = scenario.instance()?;
        Ok(degradable::Scenario {
            instance,
            sender_value: scenario.sender_value,
            strategies: scenario.strategies.clone(),
        }
        .run())
    }
}

/// The `degradable::protocol` executor: BYZ as a real message-passing
/// protocol on the `simnet` round engine (envelopes, lock-step rounds,
/// absence detection), driven by the scenario's `master_seed`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProtocolExecutor;

impl Executor for ProtocolExecutor {
    fn name(&self) -> &'static str {
        "protocol"
    }

    fn execute(&self, scenario: &Scenario) -> Result<RunRecord<u64>, ScenarioError> {
        require_complete(scenario, self.name())?;
        let instance = scenario.instance()?;
        let run = run_protocol(
            &instance,
            &scenario.sender_value,
            &scenario.strategies,
            scenario.master_seed,
        );
        Ok(run.record(&instance, scenario.sender_value, scenario.faulty()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degradable::adversary::Strategy;
    use degradable::{check_degradable, Val};
    use simnet::{NodeId, Topology};

    fn lying_scenario() -> Scenario {
        Scenario::new(5, 1, 2)
            .with_sender_value(Val::Value(7))
            .with_strategy(NodeId::new(3), Strategy::ConstantLie(Val::Value(9)))
            .with_strategy(
                NodeId::new(4),
                Strategy::TwoFaced {
                    even: Val::Value(1),
                    odd: Val::Value(2),
                },
            )
    }

    #[test]
    fn executors_agree_and_satisfy_conditions() {
        let scenario = lying_scenario();
        let a = ReferenceExecutor.execute(&scenario).unwrap();
        let b = ProtocolExecutor.execute(&scenario).unwrap();
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.faulty, b.faulty);
        assert!(check_degradable(&a).is_satisfied());
    }

    #[test]
    fn non_complete_topology_is_rejected() {
        let scenario = lying_scenario().with_topology(Topology::ring(5));
        for executor in [&ReferenceExecutor as &dyn Executor, &ProtocolExecutor] {
            let err = executor.execute(&scenario).unwrap_err();
            assert!(
                matches!(err, ScenarioError::TopologyUnsupported { .. }),
                "{err}"
            );
        }
    }

    #[test]
    fn execution_is_deterministic_via_the_trait() {
        let scenario = lying_scenario().with_master_seed(5);
        for executor in [&ReferenceExecutor as &dyn Executor, &ProtocolExecutor] {
            let a = executor.execute(&scenario).unwrap();
            let b = executor.execute(&scenario).unwrap();
            assert_eq!(a.decisions, b.decisions, "{}", executor.name());
        }
    }
}
