//! The [`Executor`] abstraction: one scenario, many ways to run it.

use crate::scenario::{Scenario, ScenarioError};
use degradable::{run_protocol_with, RunRecord};
use transport::{LinkChaos, MeshConfig, TransportRun};

/// Runs a [`Scenario`] to a [`RunRecord`] for condition checking.
///
/// Implementations must be pure functions of the scenario (including its
/// `master_seed`): calling `execute` twice on the same scenario yields the
/// same record. That is what lets [`crate::SweepRunner`] parallelize
/// trials freely and lets equivalence tests compare executors
/// symbolically.
pub trait Executor {
    /// Short stable name for reports and labels.
    fn name(&self) -> &'static str;

    /// Executes the scenario.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] when the scenario violates the executor's
    /// requirements (parameter bounds, node count, topology).
    fn execute(&self, scenario: &Scenario) -> Result<RunRecord<u64>, ScenarioError>;
}

fn require_complete(scenario: &Scenario, executor: &'static str) -> Result<(), ScenarioError> {
    if scenario.is_complete_topology() {
        Ok(())
    } else {
        Err(ScenarioError::TopologyUnsupported {
            topology: scenario.topology.name().to_string(),
            executor,
        })
    }
}

/// The `degradable::eig` reference executor: decisions computed directly
/// from the adversary's behaviour function, no message passing.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceExecutor;

impl Executor for ReferenceExecutor {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn execute(&self, scenario: &Scenario) -> Result<RunRecord<u64>, ScenarioError> {
        require_complete(scenario, self.name())?;
        if scenario.has_link_chaos() {
            return Err(ScenarioError::ChaosUnsupported {
                executor: self.name(),
            });
        }
        let instance = scenario.instance()?;
        Ok(degradable::AdversaryRun {
            instance,
            sender_value: scenario.sender_value,
            strategies: scenario.strategies.clone(),
        }
        .run())
    }
}

/// The `degradable::protocol` executor: BYZ as a real message-passing
/// protocol on the `simnet` round engine (envelopes, lock-step rounds,
/// absence detection), driven by the scenario's `master_seed`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProtocolExecutor;

impl ProtocolExecutor {
    /// Like [`Executor::execute`], but also returns the engine's network
    /// [`Outcome`](simnet::Outcome) — delivery counters plus the
    /// per-trial injected link-fault counts
    /// ([`simnet::Outcome::link_fault_injections`]) that chaos reports
    /// aggregate.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] as for [`Executor::execute`].
    pub fn execute_detailed(
        &self,
        scenario: &Scenario,
    ) -> Result<(RunRecord<u64>, simnet::Outcome), ScenarioError> {
        require_complete(scenario, Executor::name(self))?;
        let instance = scenario.instance()?;
        let plan = scenario.effective_link_plan();
        let run = run_protocol_with(
            &instance,
            &scenario.sender_value,
            &scenario.strategies,
            scenario.master_seed,
            |e| match plan {
                // No corruptor installed: the engine's default drops
                // corrupted envelopes, i.e. corruption reads as absence
                // (`V_d`), the paper's oral-message axiom.
                Some(plan) => e.with_link_faults(plan),
                None => e,
            },
        );
        let record = run.record(&instance, scenario.sender_value, scenario.faulty());
        Ok((record, run.net))
    }
}

impl Executor for ProtocolExecutor {
    fn name(&self) -> &'static str {
        "protocol"
    }

    fn execute(&self, scenario: &Scenario) -> Result<RunRecord<u64>, ScenarioError> {
        self.execute_detailed(scenario).map(|(record, _)| record)
    }
}

/// The `transport` executor: the sans-io node state machine driven over
/// the backend named by [`Scenario::transport`] — deterministic simulator,
/// in-process channel mesh, or loopback TCP mesh.
///
/// Chaos comes from the scenario's [`Scenario::effective_link_plan`],
/// keyed on message identity under `master_seed`
/// ([`transport::LinkChaos`]) so every backend injects the identical fault
/// pattern. Determinism caveat: decisions are deterministic on every
/// backend; sub-decision observables (thread interleavings, wall-clock
/// stats) are deterministic only on the simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportExecutor;

impl TransportExecutor {
    /// Like [`Executor::execute`], but also returns the raw
    /// [`TransportRun`] (per-node EIG views, merged traffic stats) that
    /// differential suites compare across backends.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] as for [`Executor::execute`];
    /// [`ScenarioError::Transport`] when the TCP mesh fails to come up.
    pub fn execute_detailed(
        &self,
        scenario: &Scenario,
    ) -> Result<(RunRecord<u64>, TransportRun), ScenarioError> {
        require_complete(scenario, Executor::name(self))?;
        let instance = scenario.instance()?;
        let chaos = match scenario.effective_link_plan() {
            Some(plan) => LinkChaos::new(plan, scenario.master_seed),
            None => LinkChaos::healthy(),
        };
        let run = transport::run_kind(
            scenario.transport,
            &instance,
            scenario.sender_value,
            &scenario.strategies,
            chaos,
            MeshConfig::default(),
        )
        .map_err(|e| ScenarioError::Transport {
            kind: scenario.transport,
            error: e.to_string(),
        })?;
        let record = RunRecord {
            params: instance.params(),
            n: scenario.n,
            sender: scenario.sender,
            sender_value: scenario.sender_value,
            faulty: scenario.faulty(),
            decisions: run.decisions.clone(),
        };
        Ok((record, run))
    }
}

impl Executor for TransportExecutor {
    fn name(&self) -> &'static str {
        "transport"
    }

    fn execute(&self, scenario: &Scenario) -> Result<RunRecord<u64>, ScenarioError> {
        self.execute_detailed(scenario).map(|(record, _)| record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ChaosConfig;
    use degradable::adversary::Strategy;
    use degradable::{check_degradable, Val};
    use simnet::{NodeId, Topology};

    fn lying_scenario() -> Scenario {
        Scenario::new(5, 1, 2)
            .with_sender_value(Val::Value(7))
            .with_strategy(NodeId::new(3), Strategy::ConstantLie(Val::Value(9)))
            .with_strategy(
                NodeId::new(4),
                Strategy::TwoFaced {
                    even: Val::Value(1),
                    odd: Val::Value(2),
                },
            )
    }

    #[test]
    fn executors_agree_and_satisfy_conditions() {
        let scenario = lying_scenario();
        let a = ReferenceExecutor.execute(&scenario).unwrap();
        let b = ProtocolExecutor.execute(&scenario).unwrap();
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.faulty, b.faulty);
        assert!(check_degradable(&a).is_satisfied());
    }

    #[test]
    fn non_complete_topology_is_rejected() {
        let scenario = lying_scenario().with_topology(Topology::ring(5));
        for executor in [&ReferenceExecutor as &dyn Executor, &ProtocolExecutor] {
            let err = executor.execute(&scenario).unwrap_err();
            assert!(
                matches!(err, ScenarioError::TopologyUnsupported { .. }),
                "{err}"
            );
        }
    }

    #[test]
    fn reference_executor_rejects_chaos() {
        let scenario = lying_scenario().with_chaos(ChaosConfig {
            drop_p: 0.1,
            ..ChaosConfig::quiet()
        });
        let err = ReferenceExecutor.execute(&scenario).unwrap_err();
        assert!(
            matches!(err, ScenarioError::ChaosUnsupported { .. }),
            "{err}"
        );
        // A quiet config is not chaos; the reference executor accepts it.
        let quiet = lying_scenario().with_chaos(ChaosConfig::quiet());
        assert!(ReferenceExecutor.execute(&quiet).is_ok());
    }

    #[test]
    fn protocol_executor_counts_injected_faults() {
        // Pure duplication chaos: decisions are invariant (the protocol's
        // idempotent fold discards duplicates) and every injection shows
        // up in the outcome counters.
        let baseline = ProtocolExecutor.execute(&lying_scenario()).unwrap();
        let chaotic = lying_scenario().with_chaos(ChaosConfig {
            duplicate_p: 1.0,
            ..ChaosConfig::quiet()
        });
        let (record, net) = ProtocolExecutor.execute_detailed(&chaotic).unwrap();
        assert_eq!(record.decisions, baseline.decisions);
        assert!(net.duplicated > 0);
        assert_eq!(net.link_fault_injections(), net.duplicated);
    }

    #[test]
    fn protocol_executor_applies_explicit_link_cuts() {
        use simnet::{LinkFaultKind, LinkFaultPlan};
        let scenario = lying_scenario().with_link_faults(LinkFaultPlan::healthy().with_symmetric(
            NodeId::new(1),
            NodeId::new(2),
            LinkFaultKind::Cut { from_round: 0 },
        ));
        let (_, net) = ProtocolExecutor.execute_detailed(&scenario).unwrap();
        assert!(net.dropped_link_cut > 0);
    }

    #[test]
    fn execution_is_deterministic_via_the_trait() {
        let scenario = lying_scenario().with_master_seed(5);
        for executor in [&ReferenceExecutor as &dyn Executor, &ProtocolExecutor] {
            let a = executor.execute(&scenario).unwrap();
            let b = executor.execute(&scenario).unwrap();
            assert_eq!(a.decisions, b.decisions, "{}", executor.name());
        }
    }

    #[test]
    fn transport_executor_matches_reference_on_every_backend() {
        let oracle = ReferenceExecutor.execute(&lying_scenario()).unwrap();
        for kind in transport::TransportKind::ALL {
            let scenario = lying_scenario().with_transport(kind);
            let record = TransportExecutor.execute(&scenario).unwrap();
            assert_eq!(record.decisions, oracle.decisions, "{kind}");
            assert_eq!(record.faulty, oracle.faulty, "{kind}");
            assert!(check_degradable(&record).is_satisfied(), "{kind}");
        }
    }

    #[test]
    fn transport_executor_applies_keyed_link_cuts() {
        use simnet::{LinkFaultKind, LinkFaultPlan};
        // Cut every edge out of the (fault-free) sender: receivers see
        // nothing from it directly or via relays rooted at round 0, so the
        // unanimous fold lands on the sender-absent default.
        let mut plan = LinkFaultPlan::healthy();
        for r in 1..5 {
            plan = plan.with(
                NodeId::new(0),
                NodeId::new(r),
                LinkFaultKind::Cut { from_round: 0 },
            );
        }
        let scenario = Scenario::new(5, 1, 2).with_link_faults(plan);
        let (record, run) = TransportExecutor.execute_detailed(&scenario).unwrap();
        assert!(run.stats.dropped_cut > 0);
        assert!(
            record.decisions.values().all(|v| *v == Val::Default),
            "{:?}",
            record.decisions
        );
    }

    #[test]
    fn transport_executor_rejects_incomplete_topology() {
        let scenario = lying_scenario().with_topology(Topology::ring(5));
        let err = TransportExecutor.execute(&scenario).unwrap_err();
        assert!(
            matches!(err, ScenarioError::TopologyUnsupported { .. }),
            "{err}"
        );
    }
}
