//! Deterministic parallel trial execution.

use simnet::SimRng;

/// Runs independent trials across worker threads with **worker-count
/// independent** results.
///
/// The design rule that makes this work: a trial's randomness comes from
/// [`SimRng::derive`]`(master_seed, trial_index)` — a pure function of the
/// master seed and the trial's index — never from the worker id or any
/// shared mutable state. Workers own contiguous chunks of the result
/// vector (`split_at_mut`), so the output order is the trial-index order
/// regardless of scheduling, and the whole result is bit-identical for 1,
/// 2, or 64 workers (proved by `tests/determinism.rs`).
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    workers: usize,
}

impl Default for SweepRunner {
    /// One worker per available CPU (at least one).
    fn default() -> Self {
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        SweepRunner::new(cpus)
    }
}

impl SweepRunner {
    /// A runner with the given worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        SweepRunner {
            workers: workers.max(1),
        }
    }

    /// A single-threaded runner (useful as the reference in determinism
    /// checks).
    pub fn single_threaded() -> Self {
        SweepRunner::new(1)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `trials` independent trials, returning their results in trial
    /// order. `trial(index, rng)` receives its own derived generator.
    pub fn run<R, F>(&self, master_seed: u64, trials: usize, trial: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, SimRng) -> R + Sync,
    {
        let mut results: Vec<Option<R>> = (0..trials).map(|_| None).collect();
        let workers = self.workers.min(trials.max(1));
        let per_worker = trials / workers;
        let remainder = trials % workers;

        std::thread::scope(|scope| {
            let trial = &trial;
            let mut rest = results.as_mut_slice();
            let mut start = 0usize;
            for w in 0..workers {
                let len = per_worker + usize::from(w < remainder);
                let (chunk, tail) = rest.split_at_mut(len);
                rest = tail;
                let base = start;
                scope.spawn(move || {
                    for (offset, slot) in chunk.iter_mut().enumerate() {
                        let index = base + offset;
                        let rng = SimRng::derive(master_seed, index as u64);
                        *slot = Some(trial(index, rng));
                    }
                });
                start += len;
            }
        });

        results
            .into_iter()
            .map(|r| r.expect("every trial slot is filled by exactly one worker"))
            .collect()
    }

    /// Maps `f` over `items` in parallel (one derived RNG per item),
    /// returning results in item order. Convenience for grid sweeps where
    /// the "trials" are configuration points rather than repetitions.
    pub fn map<T, R, F>(&self, master_seed: u64, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, SimRng) -> R + Sync,
    {
        self.run(master_seed, items.len(), |i, rng| f(i, &items[i], rng))
    }

    /// Runs `trials` trials and folds the results in trial order —
    /// deterministic even for non-commutative folds.
    pub fn fold<R, A, F, G>(
        &self,
        master_seed: u64,
        trials: usize,
        trial: F,
        init: A,
        mut fold: G,
    ) -> A
    where
        R: Send,
        F: Fn(usize, SimRng) -> R + Sync,
        G: FnMut(A, R) -> A,
    {
        let mut acc = init;
        for r in self.run(master_seed, trials, trial) {
            acc = fold(acc, r);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial_value(i: usize, mut rng: SimRng) -> u64 {
        rng.below(1_000_000) ^ (i as u64)
    }

    #[test]
    fn results_are_in_trial_order_and_worker_independent() {
        let expected: Vec<u64> = (0..37)
            .map(|i| trial_value(i, SimRng::derive(42, i as u64)))
            .collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = SweepRunner::new(workers).run(42, 37, trial_value);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn zero_trials_is_fine() {
        let got: Vec<u64> = SweepRunner::new(4).run(1, 0, trial_value);
        assert!(got.is_empty());
    }

    #[test]
    fn more_workers_than_trials_is_fine() {
        let got = SweepRunner::new(16).run(7, 3, trial_value);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn map_preserves_item_order() {
        let items = ["a", "bb", "ccc"];
        let got = SweepRunner::new(2).map(0, &items, |i, item, _| (i, item.len()));
        assert_eq!(got, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn fold_is_deterministic() {
        let a = SweepRunner::new(1).fold(9, 100, trial_value, 0u64, u64::wrapping_add);
        let b = SweepRunner::new(8).fold(9, 100, trial_value, 0u64, u64::wrapping_add);
        assert_eq!(a, b);
    }
}
