//! Deterministic parallel trial execution.

use obs::{Obs, SpanRecord};
use simnet::SimRng;
use std::time::Instant;

/// Runs independent trials across worker threads with **worker-count
/// independent** results.
///
/// The design rule that makes this work: a trial's randomness comes from
/// [`SimRng::derive`]`(master_seed, trial_index)` — a pure function of the
/// master seed and the trial's index — never from the worker id or any
/// shared mutable state. Workers own contiguous chunks of the result
/// vector (`split_at_mut`), so the output order is the trial-index order
/// regardless of scheduling, and the whole result is bit-identical for 1,
/// 2, or 64 workers (proved by `tests/determinism.rs`).
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    workers: usize,
}

impl Default for SweepRunner {
    /// One worker per available CPU (at least one).
    fn default() -> Self {
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        SweepRunner::new(cpus)
    }
}

impl SweepRunner {
    /// A runner with the given worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        SweepRunner {
            workers: workers.max(1),
        }
    }

    /// A single-threaded runner (useful as the reference in determinism
    /// checks).
    pub fn single_threaded() -> Self {
        SweepRunner::new(1)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `trials` independent trials, returning their results in trial
    /// order. `trial(index, rng)` receives its own derived generator.
    pub fn run<R, F>(&self, master_seed: u64, trials: usize, trial: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, SimRng) -> R + Sync,
    {
        self.run_observed(master_seed, trials, &mut Obs::disabled(), |i, rng, _| {
            trial(i, rng)
        })
    }

    /// [`SweepRunner::run`] with observability. Each trial receives its
    /// own recorder (same enabled state as `obs`); per-trial recorders
    /// are merged back into `obs` in **trial order**, so every
    /// registry-visible artifact stays worker-count independent. On top
    /// of whatever the trial records, the runner contributes:
    ///
    /// * a `sweep.trial` span per trial (logical cost 1, wall = trial
    ///   elapsed), merged in trial order;
    /// * a `sweep.queue_depth` gauge peaking at the number of trials
    ///   queued, and a `sweep.trials` counter;
    /// * one `sweep.worker` span per worker thread (logical cost = its
    ///   chunk length). These are recorded *after* all trial spans, in
    ///   worker order — deterministic for a fixed worker count, but
    ///   necessarily worker-count-*dependent* detail (they describe the
    ///   fan-out itself); they never touch the registry.
    pub fn run_observed<R, F>(
        &self,
        master_seed: u64,
        trials: usize,
        obs: &mut Obs,
        trial: F,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, SimRng, &mut Obs) -> R + Sync,
    {
        let enabled = obs.is_enabled();
        let mut results: Vec<Option<(R, Obs)>> = (0..trials).map(|_| None).collect();
        let workers = self.workers.min(trials.max(1));
        let per_worker = trials / workers;
        let remainder = trials % workers;

        let worker_spans = std::thread::scope(|scope| {
            let trial = &trial;
            let mut handles = Vec::new();
            let mut rest = results.as_mut_slice();
            let mut start = 0usize;
            for w in 0..workers {
                let len = per_worker + usize::from(w < remainder);
                let (chunk, tail) = rest.split_at_mut(len);
                rest = tail;
                let base = start;
                handles.push(scope.spawn(move || {
                    let worker_start = if enabled { Some(Instant::now()) } else { None };
                    for (offset, slot) in chunk.iter_mut().enumerate() {
                        let index = base + offset;
                        let rng = SimRng::derive(master_seed, index as u64);
                        let mut trial_obs = if enabled {
                            Obs::enabled()
                        } else {
                            Obs::disabled()
                        };
                        let timer = trial_obs.span("sweep.trial", vec![("trial", index as u64)]);
                        let result = trial(index, rng, &mut trial_obs);
                        trial_obs.finish(timer, 1);
                        *slot = Some((result, trial_obs));
                    }
                    SpanRecord {
                        name: "sweep.worker".to_string(),
                        args: vec![
                            ("worker".to_string(), w as u64),
                            ("trials".to_string(), len as u64),
                        ],
                        logical: len as u64,
                        wall_nanos: worker_start
                            .map(|s| s.elapsed().as_nanos() as u64)
                            .unwrap_or(0),
                    }
                }));
                start += len;
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect::<Vec<_>>()
        });

        let mut out = Vec::with_capacity(trials);
        for slot in results {
            let (result, trial_obs) =
                slot.expect("every trial slot is filled by exactly one worker");
            obs.merge(&trial_obs);
            out.push(result);
        }
        if enabled {
            obs.add("sweep.trials", trials as u64);
            obs.gauge_max("sweep.queue_depth", trials as i64);
            for span in worker_spans {
                obs.record_span(span);
            }
        }
        out
    }

    /// Maps `f` over `items` in parallel (one derived RNG per item),
    /// returning results in item order. Convenience for grid sweeps where
    /// the "trials" are configuration points rather than repetitions.
    pub fn map<T, R, F>(&self, master_seed: u64, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, SimRng) -> R + Sync,
    {
        self.run(master_seed, items.len(), |i, rng| f(i, &items[i], rng))
    }

    /// [`SweepRunner::map`] with observability — the per-scenario
    /// variant of [`SweepRunner::run_observed`] (each item's `sweep.trial`
    /// span doubles as its scenario span).
    pub fn map_observed<T, R, F>(
        &self,
        master_seed: u64,
        items: &[T],
        obs: &mut Obs,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, SimRng, &mut Obs) -> R + Sync,
    {
        self.run_observed(master_seed, items.len(), obs, |i, rng, trial_obs| {
            f(i, &items[i], rng, trial_obs)
        })
    }

    /// Runs `trials` trials and folds the results in trial order —
    /// deterministic even for non-commutative folds.
    pub fn fold<R, A, F, G>(
        &self,
        master_seed: u64,
        trials: usize,
        trial: F,
        init: A,
        mut fold: G,
    ) -> A
    where
        R: Send,
        F: Fn(usize, SimRng) -> R + Sync,
        G: FnMut(A, R) -> A,
    {
        let mut acc = init;
        for r in self.run(master_seed, trials, trial) {
            acc = fold(acc, r);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::ScrubTiming as _;

    fn trial_value(i: usize, mut rng: SimRng) -> u64 {
        rng.below(1_000_000) ^ (i as u64)
    }

    #[test]
    fn results_are_in_trial_order_and_worker_independent() {
        let expected: Vec<u64> = (0..37)
            .map(|i| trial_value(i, SimRng::derive(42, i as u64)))
            .collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = SweepRunner::new(workers).run(42, 37, trial_value);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn zero_trials_is_fine() {
        let got: Vec<u64> = SweepRunner::new(4).run(1, 0, trial_value);
        assert!(got.is_empty());
    }

    #[test]
    fn more_workers_than_trials_is_fine() {
        let got = SweepRunner::new(16).run(7, 3, trial_value);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn map_preserves_item_order() {
        let items = ["a", "bb", "ccc"];
        let got = SweepRunner::new(2).map(0, &items, |i, item, _| (i, item.len()));
        assert_eq!(got, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn fold_is_deterministic() {
        let a = SweepRunner::new(1).fold(9, 100, trial_value, 0u64, u64::wrapping_add);
        let b = SweepRunner::new(8).fold(9, 100, trial_value, 0u64, u64::wrapping_add);
        assert_eq!(a, b);
    }

    /// Runs an observed sweep and returns its recorder with wall times
    /// scrubbed, so observed output can be compared across worker counts.
    fn observed(workers: usize, trials: usize) -> (Vec<u64>, Obs) {
        let mut obs = Obs::enabled();
        let got = SweepRunner::new(workers).run_observed(5, trials, &mut obs, |i, rng, obs| {
            obs.add("trial.work", (i as u64) + 1);
            trial_value(i, rng)
        });
        obs.scrub_timing();
        (got, obs)
    }

    #[test]
    fn observed_run_records_trial_spans_counters_and_gauge() {
        let (got, obs) = observed(3, 7);
        assert_eq!(got, SweepRunner::new(1).run(5, 7, trial_value));
        // 7 trial spans in trial order, then one span per worker.
        let spans: Vec<_> = obs.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            spans,
            [
                ["sweep.trial"; 7].as_slice(),
                ["sweep.worker"; 3].as_slice()
            ]
            .concat()
        );
        for (i, span) in obs.spans().iter().take(7).enumerate() {
            assert_eq!(span.args, vec![("trial".to_string(), i as u64)]);
            assert_eq!(span.logical, 1);
        }
        let registry = obs.registry();
        assert_eq!(registry.counter("sweep.trials"), 7);
        assert_eq!(registry.counter("trial.work"), (1..=7).sum::<u64>());
        assert_eq!(registry.gauge("sweep.queue_depth"), Some(7));
    }

    #[test]
    fn observed_registry_and_trial_spans_are_worker_count_independent() {
        let (_, reference) = observed(1, 13);
        for workers in [2, 4, 8] {
            let (_, obs) = observed(workers, 13);
            assert_eq!(
                obs.registry(),
                reference.registry(),
                "registry differs at {workers} workers"
            );
            // Trial spans (everything before the worker-fan-out detail)
            // are identical too; only the sweep.worker tail may differ.
            let trial_spans = |o: &Obs| o.spans().iter().take(13).cloned().collect::<Vec<_>>();
            assert_eq!(
                trial_spans(&obs),
                trial_spans(&reference),
                "trial spans differ at {workers} workers"
            );
        }
    }

    #[test]
    fn disabled_obs_records_nothing_in_observed_run() {
        let mut obs = Obs::disabled();
        let got = SweepRunner::new(4).run_observed(5, 9, &mut obs, |i, rng, obs| {
            obs.add("trial.work", 1);
            trial_value(i, rng)
        });
        assert_eq!(got.len(), 9);
        assert!(obs.spans().is_empty());
        assert!(obs.registry().is_empty());
    }

    #[test]
    fn map_observed_passes_items_in_order() {
        let items = [10u64, 20, 30];
        let mut obs = Obs::enabled();
        let got = SweepRunner::new(2).map_observed(0, &items, &mut obs, |i, item, _, _| (i, *item));
        assert_eq!(got, vec![(0, 10), (1, 20), (2, 30)]);
        assert_eq!(obs.registry().counter("sweep.trials"), 3);
    }
}
