//! Experiment reporting: ASCII tables, CSV blocks, and versioned JSON
//! files under `results/`.
//!
//! ## The JSON schema
//!
//! Every report file is a single JSON object:
//!
//! ```json
//! {
//!   "schema": "degradable-harness-report",
//!   "version": 2,
//!   "experiment": "reliability",
//!   "meta": { "master_seed": 232, "trials": 4000, "workers": 8 },
//!   "metrics": { "p_incorrect_overall": 0.0 },
//!   "perf": { "eig_votes_evaluated": 1200, "eig_votes_memo_hit": 3400 },
//!   "obs": { "counters": { "sweep.trials": 4000 } },
//!   "tables": [
//!     { "title": "...", "headers": ["..."], "rows": [["..."]] }
//!   ]
//! }
//! ```
//!
//! `schema`/`version` are bumped together on breaking changes so report
//! consumers can dispatch. Key order is insertion order (deterministic),
//! which keeps byte-identical reports for identical runs — the property
//! the determinism test asserts.
//!
//! ### Version history
//!
//! * **v6** — SLO-aware reports. An optional `slo` object sits between
//!   `obs` and `tables`, carrying an evaluated [`crate::slo::SloSpec`]
//!   (`{"name", "passed", "objectives": [...]}` — see
//!   [`crate::slo::SloReport::to_json`]) recorded via [`Report::set_slo`].
//!   SLO verdicts are integer arithmetic over the deterministic registry,
//!   so the section is bit-identical across worker counts; it is omitted
//!   when no spec was evaluated, leaving a v5-shaped body under the v6
//!   tag.
//! * **v5** — quantile-annotated registry snapshots. Histograms in the
//!   `obs` section gained `count`, `sum`, and fixed-point quantile
//!   estimates (`p50_x100`/`p90_x100`/`p99_x100`) alongside the bucket
//!   arrays (see `obs::Histogram::to_json`). Purely additive inside the
//!   `obs` object, but strict consumers that enumerated histogram keys
//!   must now skip the annotations, hence the bump.
//! * **v4** — observability-aware reports. An optional `obs` object sits
//!   between `perf` and `tables`, carrying an [`obs::Registry`] snapshot
//!   (sorted-name counters/gauges/histograms — see
//!   `obs::Registry::to_json`) recorded via [`Report::set_obs_registry`].
//!   The registry holds only deterministic quantities, so the section is
//!   bit-identical across `--workers` values; it is omitted when the
//!   registry is empty (or never set), leaving a v3-shaped body under the
//!   v4 tag. `JsonValue` is now re-exported from the `obs` crate rather
//!   than defined here — same shape, same serialization.
//! * **v3** — perf-aware reports. An optional `perf` object sits between
//!   `metrics` and `tables`, carrying deterministic work counters from
//!   the arena-backed EIG engine (`simnet::EigPerf`: arena nodes, votes
//!   evaluated, votes memo-hit, messages materialized) and, when the
//!   experiment opts in, aggregated wall times. `perf` is omitted when
//!   empty, so experiments that record nothing there emit a v2-shaped
//!   body under the v3 version tag. Reports remain bit-identical across
//!   `--workers` values: only deterministic counters belong in `perf`
//!   unless the experiment explicitly separates timing output (e.g.
//!   `perf_baseline --no-timing` for the CI comparison).
//! * **v2** — chaos-aware reports. Experiments that inject link faults
//!   record per-trial injected-fault counts in `meta`/`metrics`
//!   (`injected_faults_total`, plus per-kind counters such as
//!   `dropped_link_cut`, `dropped_link_loss`, `duplicated`, `reordered`,
//!   `corrupted`, `dropped_corrupt` where the experiment surfaces them).
//!   The envelope layout (`schema`/`version`/`experiment`/`meta`/
//!   `metrics`/`tables`) is unchanged, so v1 consumers that ignore unknown
//!   keys keep working; strict consumers dispatch on `version`.
//! * **v1** — initial envelope.
//!
//! JSON emission is hand-rolled (the vendored `serde` is derive-only, see
//! `vendor/README.md`): reports build [`JsonValue`] trees, re-exported
//! from the zero-dependency `obs` crate since schema v4 so report bodies
//! and registry snapshots share one value model.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// The JSON value model (insertion-ordered object keys), shared with the
/// observability layer. Re-exported so existing `harness::report::JsonValue`
/// users keep compiling.
pub use obs::JsonValue;

/// Identifier of the report file format.
pub const SCHEMA: &str = "degradable-harness-report";

/// Version of the report file format; bump on breaking layout changes.
/// See the module docs for the version history.
pub const SCHEMA_VERSION: u64 = 6;

/// A titled table: the unit shared by ASCII printing and JSON reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; rows may be wider than the header list.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// A table populated with the given rows (the common case in
    /// experiment binaries that build all rows up front).
    pub fn with_rows(title: impl Into<String>, headers: &[&str], rows: Vec<Vec<String>>) -> Self {
        let mut table = Table::new(title, headers);
        table.rows = rows;
        table
    }

    /// Appends one row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Column widths sized from the widest cell in *any* row — including
    /// rows wider than the header list, which previously fell back to a
    /// hard-coded width of 8.
    fn column_widths(&self) -> Vec<usize> {
        let columns = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }

    /// The table rendered as fixed-width ASCII (title banner, header row,
    /// separator, data rows; trailing newline). [`Table::print`] emits
    /// exactly this string, and `cli obs` reuses it for trace summaries.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let widths = self.column_widths();
        let fmt_row = |out: &mut String, cells: &[String]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                let _ = write!(line, "{:<w$}  ", cell, w = w);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        };
        fmt_row(&mut out, &self.headers);
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Prints the table as fixed-width ASCII to stdout.
    pub fn print(&self) {
        print!("{}", self.to_ascii());
    }

    /// The table as a JSON object (`title`, `headers`, `rows`).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("title".into(), self.title.as_str().into()),
            (
                "headers".into(),
                JsonValue::Array(self.headers.iter().map(|h| h.as_str().into()).collect()),
            ),
            (
                "rows".into(),
                JsonValue::Array(
                    self.rows
                        .iter()
                        .map(|r| JsonValue::Array(r.iter().map(|c| c.as_str().into()).collect()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A versioned experiment report: metadata, scalar metrics, and tables.
///
/// Build one per experiment run, [`Report::print_tables`] for the human,
/// then [`Report::write`] for the machines.
#[derive(Debug, Clone, Default)]
pub struct Report {
    experiment: String,
    meta: Vec<(String, JsonValue)>,
    metrics: Vec<(String, JsonValue)>,
    perf: Vec<(String, JsonValue)>,
    obs: obs::Registry,
    slo: Option<crate::slo::SloReport>,
    tables: Vec<Table>,
}

impl Report {
    /// A report for the named experiment.
    pub fn new(experiment: impl Into<String>) -> Self {
        Report {
            experiment: experiment.into(),
            ..Report::default()
        }
    }

    /// The experiment name.
    pub fn experiment(&self) -> &str {
        &self.experiment
    }

    /// Records a metadata field (seed, trial count, worker count, ...).
    /// Re-setting a key overwrites it in place (order preserved).
    pub fn set_meta(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> &mut Self {
        let (key, value) = (key.into(), value.into());
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.meta.push((key, value));
        }
        self
    }

    /// Records a scalar result metric. Re-setting a key overwrites it.
    pub fn set_metric(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> &mut Self {
        let (key, value) = (key.into(), value.into());
        if let Some(slot) = self.metrics.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.metrics.push((key, value));
        }
        self
    }

    /// Records a perf counter (schema v3). Re-setting a key overwrites
    /// it in place. The `perf` object is emitted only when at least one
    /// counter was recorded. Record deterministic counters here; keep
    /// wall times out unless the experiment explicitly separates timing
    /// output, so reports stay bit-identical across worker counts.
    pub fn set_perf(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> &mut Self {
        let (key, value) = (key.into(), value.into());
        if let Some(slot) = self.perf.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.perf.push((key, value));
        }
        self
    }

    /// Records the six deterministic counters of a
    /// [`simnet::EigPerf`] under `eig_`-prefixed keys. The perf record is
    /// passed through [`obs::scrub_timing`] first, so wall-clock fields
    /// can never leak into the report even if this list grows.
    pub fn set_eig_perf(&mut self, perf: &simnet::EigPerf) -> &mut Self {
        let mut perf = *perf;
        obs::scrub_timing(&mut perf);
        self.set_perf("eig_arena_nodes", perf.arena_nodes)
            .set_perf("eig_votes_evaluated", perf.votes_evaluated)
            .set_perf("eig_votes_memo_hit", perf.votes_memo_hit)
            .set_perf("eig_messages_materialized", perf.messages_materialized)
            .set_perf("eig_subtrees_pruned", perf.subtrees_pruned)
            .set_perf("eig_messages_saved", perf.messages_saved)
    }

    /// Merges an [`obs::Registry`] snapshot into the report's `obs`
    /// section (schema v4). Counters add, gauges keep their max, and
    /// histograms merge bucket-wise, so calling this once per phase
    /// accumulates. The section is emitted only when non-empty. Registries
    /// hold deterministic quantities by construction (wall times live in
    /// spans, not the registry), so this keeps reports bit-identical
    /// across worker counts.
    pub fn set_obs_registry(&mut self, registry: &obs::Registry) -> &mut Self {
        self.obs.merge(registry);
        self
    }

    /// The report's accumulated observability registry.
    pub fn obs_registry(&self) -> &obs::Registry {
        &self.obs
    }

    /// Records an evaluated SLO spec (schema v6). The `slo` section is
    /// emitted only when set; a second call replaces the first (one
    /// verdict per report — evaluate one composite spec if an experiment
    /// gates on several objectives).
    pub fn set_slo(&mut self, slo: crate::slo::SloReport) -> &mut Self {
        self.slo = Some(slo);
        self
    }

    /// The evaluated SLO spec, if one was recorded.
    pub fn slo(&self) -> Option<&crate::slo::SloReport> {
        self.slo.as_ref()
    }

    /// Appends a table.
    pub fn add_table(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// The tables recorded so far.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Prints every table as ASCII to stdout.
    pub fn print_tables(&self) {
        for table in &self.tables {
            table.print();
        }
    }

    /// The full report as a JSON value (see the module docs for the
    /// schema).
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("schema".into(), SCHEMA.into()),
            ("version".into(), SCHEMA_VERSION.into()),
            ("experiment".into(), self.experiment.as_str().into()),
            ("meta".into(), JsonValue::Object(self.meta.clone())),
            ("metrics".into(), JsonValue::Object(self.metrics.clone())),
        ];
        if !self.perf.is_empty() {
            fields.push(("perf".into(), JsonValue::Object(self.perf.clone())));
        }
        if !self.obs.is_empty() {
            fields.push(("obs".into(), self.obs.to_json()));
        }
        if let Some(slo) = &self.slo {
            fields.push(("slo".into(), slo.to_json()));
        }
        fields.push((
            "tables".into(),
            JsonValue::Array(self.tables.iter().map(Table::to_json).collect()),
        ));
        JsonValue::Object(fields)
    }

    /// The full report as compact JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }

    /// The default output path: `results/<experiment>.json`.
    pub fn default_path(&self) -> PathBuf {
        PathBuf::from("results").join(format!("{}.json", self.experiment))
    }

    /// Writes the report to `path` (creating parent directories), or to
    /// [`Report::default_path`] when `path` is `None`. Returns the path
    /// written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory creation or the write.
    pub fn write(&self, path: Option<&Path>) -> io::Result<PathBuf> {
        let path = path.map_or_else(|| self.default_path(), Path::to_path_buf);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut text = self.to_json_string();
        text.push('\n');
        std::fs::write(&path, text)?;
        Ok(path)
    }
}

/// Prints a fixed-width ASCII table with a header row and separator.
/// Column widths cover the widest row, even when rows are wider than the
/// header list.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut table = Table::new(title, headers);
    table.rows = rows.to_vec();
    table.print();
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Emits a CSV block to stdout (for machine-readable capture by `tee`).
pub fn print_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n#csv {name}");
    println!("{}", headers.join(","));
    for row in rows {
        println!("{}", row.join(","));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_json_value_serializes_like_before() {
        // The v4 change swapped the local JsonValue for obs::JsonValue;
        // this pins the serialization contract consumers relied on (the
        // exhaustive escaping tests live in the obs crate).
        let v = JsonValue::Object(vec![
            ("s".into(), "a\"b".into()),
            ("u".into(), JsonValue::UInt(u64::MAX)),
            ("a".into(), vec![1u64, 2].into()),
        ]);
        assert_eq!(
            v.to_json_string(),
            "{\"s\":\"a\\\"b\",\"u\":18446744073709551615,\"a\":[1,2]}"
        );
    }

    #[test]
    fn wide_rows_size_the_columns() {
        // The regression this fixes: a row with more cells than headers
        // used to be printed at a hard-coded width of 8.
        let mut t = Table::new("t", &["a"]);
        t.push_row(vec!["x".into(), "a-cell-much-wider-than-8".into()]);
        let widths = t.column_widths();
        assert_eq!(widths.len(), 2);
        assert_eq!(widths[1], "a-cell-much-wider-than-8".len());
        t.print(); // must not panic
    }

    #[test]
    fn report_json_is_versioned_and_ordered() {
        let mut r = Report::new("smoke");
        r.set_meta("master_seed", 7u64)
            .set_meta("trials", 10usize)
            .set_metric("p", 0.5);
        let mut t = Table::new("tab", &["h"]);
        t.push_row(vec!["v".into()]);
        r.add_table(t);
        let json = r.to_json_string();
        assert!(json.starts_with(
            "{\"schema\":\"degradable-harness-report\",\"version\":6,\"experiment\":\"smoke\""
        ));
        assert!(json.contains("\"meta\":{\"master_seed\":7,\"trials\":10}"));
        assert!(json.contains("\"metrics\":{\"p\":0.5}"));
        assert!(json.contains("\"tables\":[{\"title\":\"tab\""));
        // Nothing recorded in the optional sections: all are omitted.
        assert!(!json.contains("\"perf\""));
        assert!(!json.contains("\"obs\""));
        assert!(!json.contains("\"slo\""));
    }

    #[test]
    fn slo_section_sits_between_obs_and_tables() {
        let mut r = Report::new("gated");
        let mut reg = obs::Registry::default();
        reg.add("sweep.trials", 9);
        r.set_obs_registry(&reg);
        r.set_slo(
            crate::slo::SloSpec::new("gate")
                .counter_at_least("sweep.trials", 9)
                .evaluate(r.obs_registry()),
        );
        let json = r.to_json_string();
        assert!(json.contains(
            "\"obs\":{\"counters\":{\"sweep.trials\":9}},\
             \"slo\":{\"name\":\"gate\",\"passed\":true,\"objectives\":[\
             {\"objective\":\"sweep.trials >= 9\",\"observed\":9,\"pass\":true}]},\"tables\":[]"
        ));
        assert!(r.slo().unwrap().passed());
    }

    #[test]
    fn perf_section_sits_between_metrics_and_tables() {
        let mut r = Report::new("perf");
        r.set_metric("p", 1u64);
        r.set_eig_perf(&simnet::EigPerf {
            arena_nodes: 3,
            votes_evaluated: 4,
            votes_memo_hit: 5,
            messages_materialized: 6,
            subtrees_pruned: 2,
            messages_saved: 8,
            fill_nanos: 999,
            resolve_nanos: 999,
        });
        r.set_perf("eig_votes_memo_hit", 7u64); // overwrite in place
        let json = r.to_json_string();
        assert!(json.contains(
            "\"metrics\":{\"p\":1},\"perf\":{\"eig_arena_nodes\":3,\"eig_votes_evaluated\":4,\
             \"eig_votes_memo_hit\":7,\"eig_messages_materialized\":6,\
             \"eig_subtrees_pruned\":2,\"eig_messages_saved\":8},\"tables\":[]"
        ));
        // Wall times never leak through set_eig_perf (scrub_timing).
        assert!(!json.contains("999"));
    }

    #[test]
    fn obs_section_sits_between_perf_and_tables_and_accumulates() {
        let mut r = Report::new("obs");
        r.set_metric("p", 1u64);
        r.set_perf("eig_arena_nodes", 3u64);
        let mut phase1 = obs::Registry::default();
        phase1.add("sweep.trials", 10);
        let mut phase2 = obs::Registry::default();
        phase2.add("sweep.trials", 5);
        phase2.set_gauge("sweep.queue_depth", 5);
        r.set_obs_registry(&phase1).set_obs_registry(&phase2);
        let json = r.to_json_string();
        // Counters added across the two merges; section between perf and
        // tables.
        assert!(json.contains(
            "\"perf\":{\"eig_arena_nodes\":3},\
             \"obs\":{\"counters\":{\"sweep.trials\":15},\
             \"gauges\":{\"sweep.queue_depth\":5}},\"tables\":[]"
        ));
    }

    #[test]
    fn to_ascii_matches_print_shape() {
        let mut t = Table::new("title", &["h1", "long-header"]);
        t.push_row(vec!["a".into(), "b".into()]);
        let ascii = t.to_ascii();
        assert!(ascii.starts_with("\n== title ==\n"));
        assert!(ascii.contains("h1  long-header"));
        assert!(ascii.contains("--  -----------"));
        assert!(ascii.ends_with("a   b\n"));
    }

    #[test]
    fn set_meta_overwrites_in_place() {
        let mut r = Report::new("x");
        r.set_meta("k", 1u64)
            .set_meta("j", 2u64)
            .set_meta("k", 3u64);
        let json = r.to_json_string();
        assert!(json.contains("\"meta\":{\"k\":3,\"j\":2}"));
    }

    #[test]
    fn write_creates_results_dir() {
        let dir = std::env::temp_dir().join(format!("harness-report-{}", std::process::id()));
        let path = dir.join("nested").join("r.json");
        let r = Report::new("t");
        let written = r.write(Some(&path)).unwrap();
        let text = std::fs::read_to_string(&written).unwrap();
        assert!(text.ends_with("}\n"));
        assert_eq!(written, path);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_path_is_under_results() {
        assert_eq!(
            Report::new("reliability").default_path(),
            PathBuf::from("results/reliability.json")
        );
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
