//! # harness — the experiment-execution layer
//!
//! Every experiment in this workspace is some composition of the same four
//! ingredients, which this crate owns end to end:
//!
//! * [`Scenario`] — a declarative description of one agreement experiment:
//!   `(n, m, u)`, the sender and its value, per-node Byzantine
//!   [`Strategy`](degradable::Strategy) assignments, a
//!   [`Topology`](simnet::Topology), and a master seed.
//! * [`Executor`] — the "how to run it" abstraction with two
//!   implementations: [`ReferenceExecutor`] (the `degradable::eig`
//!   behaviour-function executor) and [`ProtocolExecutor`] (the real
//!   message-passing protocol on the `simnet` round engine). Equivalence
//!   checks and sweeps are written once against the trait.
//! * [`SweepRunner`] — deterministic parallel trial execution. Each
//!   trial's RNG is derived as
//!   [`SimRng::derive(master_seed, trial_index)`](simnet::SimRng::derive),
//!   never from the worker id, so results are **bit-identical for any
//!   worker count** (see `tests/determinism.rs`).
//! * [`report`] — ASCII tables, CSV, and versioned JSON reports written to
//!   `results/*.json` (schema [`report::SCHEMA`], version
//!   [`report::SCHEMA_VERSION`]).
//!
//! ```
//! use harness::{Executor, ReferenceExecutor, Scenario, SweepRunner};
//!
//! // P(agreement) under one random faulty node, over 64 seeded trials —
//! // identical results whether run on 1 worker or 8.
//! let runner = SweepRunner::new(4);
//! let outcomes = runner.run(0xD1CE, 64, |_trial, mut rng| {
//!     let scenario = Scenario::new(5, 1, 2).randomize_faults(1, &mut rng);
//!     ReferenceExecutor.execute(&scenario).expect("valid scenario")
//! });
//! assert_eq!(outcomes.len(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod batch;
pub mod executor;
pub mod fuzz;
pub mod report;
pub mod scenario;
pub mod slo;
pub mod sweep;

pub use args::RunArgs;
pub use batch::BatchScenario;
pub use executor::{Executor, ProtocolExecutor, ReferenceExecutor, TransportExecutor};
pub use fuzz::{
    fuzz, fuzz_trial, replay, run_plan, shrink, write_repro, ExecReport, FaultSpec, FuzzConfig,
    FuzzFailure, FuzzOutcome, FuzzPlan, FuzzViolation, Mutation, ReplayOutcome,
};
pub use report::{pct, print_csv, print_table, JsonValue, Report, Table};
pub use scenario::{ChaosConfig, Scenario, ScenarioError};
pub use slo::{SloObjective, SloReport, SloResult, SloSpec};
pub use sweep::SweepRunner;
pub use transport::TransportKind;
