//! Minimal command-line overrides shared by every experiment binary.

use std::path::PathBuf;

/// Overrides parsed from an experiment binary's command line.
///
/// Recognized flags (both `--flag value` and `--flag=value`):
///
/// * `--trials N` — trial count override (CI smoke runs use a small one);
/// * `--workers N` — worker-thread count for [`crate::SweepRunner`];
/// * `--seed N` — master seed;
/// * `--out PATH` — where to write the JSON report (default
///   `results/<experiment>.json`);
/// * `--trace-out PATH` — where to write a Chrome `trace_event` file of
///   the run's observability spans (off when absent; `cli obs PATH`
///   summarizes the result).
///
/// Unknown arguments are ignored so binaries can add their own flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunArgs {
    /// `--trials` override.
    pub trials: Option<usize>,
    /// `--workers` override.
    pub workers: Option<usize>,
    /// `--seed` override.
    pub seed: Option<u64>,
    /// `--out` override.
    pub out: Option<PathBuf>,
    /// `--trace-out` override.
    pub trace_out: Option<PathBuf>,
}

impl RunArgs {
    /// Parses the process's command line (skipping `argv[0]`).
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used by tests).
    pub fn parse_from<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = RunArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let arg = arg.as_ref();
            let (flag, value) = if let Some((flag, value)) = arg.split_once('=') {
                (flag.to_string(), value.to_string())
            } else if matches!(
                arg,
                "--trials" | "--workers" | "--seed" | "--out" | "--trace-out"
            ) {
                match iter.next() {
                    Some(v) => (arg.to_string(), v.as_ref().to_string()),
                    None => break,
                }
            } else {
                continue;
            };
            match flag.as_str() {
                "--trials" => out.trials = value.parse().ok(),
                "--workers" => out.workers = value.parse().ok(),
                "--seed" => out.seed = value.parse().ok(),
                "--out" => out.out = Some(PathBuf::from(value)),
                "--trace-out" => out.trace_out = Some(PathBuf::from(value)),
                _ => {}
            }
        }
        out
    }

    /// The trial count, with `default` when not overridden.
    pub fn trials_or(&self, default: usize) -> usize {
        self.trials.unwrap_or(default)
    }

    /// The worker count, with `default` when not overridden.
    pub fn workers_or(&self, default: usize) -> usize {
        self.workers.unwrap_or(default)
    }

    /// The master seed, with `default` when not overridden.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// The report output path override, if any.
    pub fn out_path(&self) -> Option<&std::path::Path> {
        self.out.as_deref()
    }

    /// The trace output path, if `--trace-out` was given.
    pub fn trace_out_path(&self) -> Option<&std::path::Path> {
        self.trace_out.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_flag_styles() {
        let a = RunArgs::parse_from(["--trials", "50", "--seed=9", "--out", "results/x.json"]);
        assert_eq!(a.trials, Some(50));
        assert_eq!(a.seed, Some(9));
        assert_eq!(a.out, Some(PathBuf::from("results/x.json")));
        assert_eq!(a.workers, None);
    }

    #[test]
    fn unknown_flags_are_ignored() {
        let a = RunArgs::parse_from(["--verbose", "--workers=3", "positional"]);
        assert_eq!(a.workers, Some(3));
        assert_eq!(a.trials, None);
    }

    #[test]
    fn defaults_apply() {
        let a = RunArgs::default();
        assert_eq!(a.trials_or(100), 100);
        assert_eq!(a.workers_or(4), 4);
        assert_eq!(a.seed_or(7), 7);
        assert!(a.out_path().is_none());
    }

    #[test]
    fn garbage_values_fall_back_to_none() {
        let a = RunArgs::parse_from(["--trials", "not-a-number"]);
        assert_eq!(a.trials, None);
    }

    #[test]
    fn trace_out_parses_in_both_styles() {
        let a = RunArgs::parse_from(["--trace-out", "trace.json"]);
        assert_eq!(a.trace_out_path(), Some(std::path::Path::new("trace.json")));
        let b = RunArgs::parse_from(["--trace-out=t.json"]);
        assert_eq!(b.trace_out, Some(PathBuf::from("t.json")));
        assert!(RunArgs::default().trace_out_path().is_none());
    }
}
