//! Declarative description of one agreement experiment.

use degradable::adversary::Strategy;
use degradable::{ByzError, ByzInstance, Params, ParamsError, Val};
use serde::{Deserialize, Serialize};
use simnet::{LinkFaultKind, LinkFaultPlan, NodeId, SimRng, Topology};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use transport::TransportKind;

/// Uniform link-chaos intensity knobs, applied to **every** directed edge
/// of the execution topology on top of any explicit
/// [`Scenario::link_faults`] plan.
///
/// Each non-zero knob becomes one [`LinkFaultKind`] per directed edge;
/// [`ChaosConfig::quiet`] (all zeros) injects nothing, so a scenario with a
/// quiet config is byte-identical in behaviour to one with no config.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Per-message silent-loss probability.
    pub drop_p: f64,
    /// Per-message duplication probability.
    pub duplicate_p: f64,
    /// Maximum extra rounds a message may be delayed (0 disables
    /// reordering).
    pub reorder_window: usize,
    /// Per-message corruption probability; corrupted envelopes are
    /// *detectably* garbled and read as absent (`V_d`), never as a wrong
    /// value — the paper's oral-message axiom.
    pub corrupt_p: f64,
}

impl ChaosConfig {
    /// No chaos at all.
    pub fn quiet() -> Self {
        ChaosConfig {
            drop_p: 0.0,
            duplicate_p: 0.0,
            reorder_window: 0,
            corrupt_p: 0.0,
        }
    }

    /// Whether every knob is zero (nothing would be injected).
    pub fn is_quiet(&self) -> bool {
        self.drop_p == 0.0
            && self.duplicate_p == 0.0
            && self.reorder_window == 0
            && self.corrupt_p == 0.0
    }

    /// The non-zero knobs as link-fault kinds (in a fixed application
    /// order: drop, duplicate, reorder, corrupt).
    pub fn kinds(&self) -> Vec<LinkFaultKind> {
        let mut kinds = Vec::new();
        if self.drop_p > 0.0 {
            kinds.push(LinkFaultKind::Drop { p: self.drop_p });
        }
        if self.duplicate_p > 0.0 {
            kinds.push(LinkFaultKind::Duplicate {
                p: self.duplicate_p,
            });
        }
        if self.reorder_window > 0 {
            kinds.push(LinkFaultKind::Reorder {
                window: self.reorder_window,
            });
        }
        if self.corrupt_p > 0.0 {
            kinds.push(LinkFaultKind::Corrupt { p: self.corrupt_p });
        }
        kinds
    }

    /// Expands the knobs into a plan covering every directed pair of `n`
    /// nodes (the complete execution topology of the protocol executor).
    pub fn plan_for_complete(&self, n: usize) -> LinkFaultPlan {
        LinkFaultPlan::uniform_complete(n, &self.kinds())
    }
}

/// A fully specified agreement experiment, independent of how it is
/// executed (see [`crate::Executor`]).
///
/// Construction is builder-style from [`Scenario::new`]; every field is
/// public so sweeps can also mutate scenarios in place.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of nodes.
    pub n: usize,
    /// Full-agreement fault tolerance `m`.
    pub m: usize,
    /// Degraded-agreement fault tolerance `u` (`m <= u`).
    pub u: usize,
    /// The designated sender.
    pub sender: NodeId,
    /// The sender's nominal value.
    pub sender_value: Val,
    /// Strategy per faulty node; the key set *is* the fault set.
    pub strategies: BTreeMap<NodeId, Strategy<u64>>,
    /// Network topology. Executors for the fully-connected protocol
    /// (reference and message-passing BYZ) require a complete graph and
    /// report the mismatch as an error; the field exists so sparse-network
    /// executors and reports share the same scenario type.
    pub topology: Topology,
    /// Master seed: drives every derived random choice (engine schedules,
    /// fault placement via [`Scenario::randomize_faults`]).
    pub master_seed: u64,
    /// Explicit link-fault plan (cuts, per-edge chaos) injected into the
    /// message-passing executor's engine. `None` means healthy links.
    pub link_faults: Option<LinkFaultPlan>,
    /// Uniform chaos intensity applied to every directed edge, layered on
    /// top of `link_faults`. `None` (or a quiet config) injects nothing.
    pub chaos: Option<ChaosConfig>,
    /// Which network backend [`crate::TransportExecutor`] runs the
    /// scenario on. Defaults to the deterministic simulator; absent from
    /// older serialized scenarios, which deserialize to the default.
    #[serde(default)]
    pub transport: TransportKind,
}

/// Why a [`Scenario`] cannot be instantiated or executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// `(m, u)` is not a valid parameter pair (`u < m`).
    Params(ParamsError),
    /// The instance violates the node-count or sender-range bound.
    Instance(ByzError),
    /// The executor requires a complete topology but the scenario names a
    /// different one.
    TopologyUnsupported {
        /// The topology's name.
        topology: String,
        /// The executor that rejected it.
        executor: &'static str,
    },
    /// The scenario requests link faults or chaos, but the executor has no
    /// message layer to inject them into (e.g. the reference executor
    /// computes decisions directly from the behaviour function).
    ChaosUnsupported {
        /// The executor that rejected the scenario.
        executor: &'static str,
    },
    /// The selected network backend failed to come up (socket setup on the
    /// TCP mesh — the only backend that can actually fail).
    Transport {
        /// The backend that failed.
        kind: transport::TransportKind,
        /// The underlying failure, rendered.
        error: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Params(e) => write!(f, "invalid parameters: {e}"),
            ScenarioError::Instance(e) => write!(f, "invalid instance: {e}"),
            ScenarioError::TopologyUnsupported { topology, executor } => {
                write!(
                    f,
                    "executor {executor} requires a complete topology, got {topology}"
                )
            }
            ScenarioError::ChaosUnsupported { executor } => {
                write!(
                    f,
                    "executor {executor} has no message layer to inject link faults into"
                )
            }
            ScenarioError::Transport { kind, error } => {
                write!(f, "transport backend {kind} failed: {error}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ParamsError> for ScenarioError {
    fn from(e: ParamsError) -> Self {
        ScenarioError::Params(e)
    }
}

impl From<ByzError> for ScenarioError {
    fn from(e: ByzError) -> Self {
        ScenarioError::Instance(e)
    }
}

impl Scenario {
    /// A scenario with `n` nodes and parameters `(m, u)`: sender 0 holding
    /// value 1, no faults, complete topology, master seed 0.
    pub fn new(n: usize, m: usize, u: usize) -> Self {
        Scenario {
            n,
            m,
            u,
            sender: NodeId::new(0),
            sender_value: Val::Value(1),
            strategies: BTreeMap::new(),
            topology: Topology::complete(n),
            master_seed: 0,
            link_faults: None,
            chaos: None,
            transport: TransportKind::default(),
        }
    }

    /// Replaces the sender.
    pub fn with_sender(mut self, sender: NodeId) -> Self {
        self.sender = sender;
        self
    }

    /// Replaces the sender's value.
    pub fn with_sender_value(mut self, value: Val) -> Self {
        self.sender_value = value;
        self
    }

    /// Replaces the full strategy map.
    pub fn with_strategies(mut self, strategies: BTreeMap<NodeId, Strategy<u64>>) -> Self {
        self.strategies = strategies;
        self
    }

    /// Marks one node faulty with the given strategy.
    pub fn with_strategy(mut self, node: NodeId, strategy: Strategy<u64>) -> Self {
        self.strategies.insert(node, strategy);
        self
    }

    /// Replaces the topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Replaces the master seed.
    pub fn with_master_seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// Installs an explicit link-fault plan (cuts, per-edge chaos).
    pub fn with_link_faults(mut self, plan: LinkFaultPlan) -> Self {
        self.link_faults = Some(plan);
        self
    }

    /// Installs uniform chaos intensity knobs.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Selects the network backend for [`crate::TransportExecutor`].
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Whether this scenario asks for any link-level fault injection.
    pub fn has_link_chaos(&self) -> bool {
        self.link_faults.as_ref().is_some_and(|p| !p.is_empty())
            || self.chaos.is_some_and(|c| !c.is_quiet())
    }

    /// The merged link-fault plan the message-passing executor installs:
    /// the explicit [`Scenario::link_faults`] plan with the uniform
    /// [`Scenario::chaos`] knobs layered on every directed pair. `None`
    /// when nothing would be injected.
    pub fn effective_link_plan(&self) -> Option<LinkFaultPlan> {
        if !self.has_link_chaos() {
            return None;
        }
        let mut plan = self.link_faults.clone().unwrap_or_default();
        if let Some(chaos) = self.chaos.filter(|c| !c.is_quiet()) {
            plan = plan.stacked_with(&chaos.plan_for_complete(self.n));
        }
        Some(plan)
    }

    /// Assigns `f` uniformly-placed faulty nodes, each with a strategy
    /// drawn from the standard [`Strategy::battery`], consuming randomness
    /// from `rng` only (so placement is reproducible from the trial seed).
    pub fn randomize_faults(mut self, f: usize, rng: &mut SimRng) -> Self {
        let alpha = match self.sender_value {
            Val::Value(v) => v,
            Val::Default => 0,
        };
        let battery = Strategy::battery(alpha, alpha ^ 0xBAD, rng.below(u64::MAX));
        self.strategies = rng
            .choose_indices(self.n, f.min(self.n))
            .into_iter()
            .map(|i| {
                let (_, s) = battery[rng.below(battery.len() as u64) as usize].clone();
                (NodeId::new(i), s)
            })
            .collect();
        self
    }

    /// The `(m, u)` parameter pair.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Params`] when `u < m`.
    pub fn params(&self) -> Result<Params, ScenarioError> {
        Ok(Params::new(self.m, self.u)?)
    }

    /// The validated BYZ instance for this scenario.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Params`] or [`ScenarioError::Instance`] when the
    /// scenario violates the parameter or node-count bounds.
    pub fn instance(&self) -> Result<ByzInstance, ScenarioError> {
        Ok(ByzInstance::new(self.n, self.params()?, self.sender)?)
    }

    /// The fault set (the strategy map's key set).
    pub fn faulty(&self) -> BTreeSet<NodeId> {
        self.strategies.keys().copied().collect()
    }

    /// Number of faulty nodes.
    pub fn f(&self) -> usize {
        self.strategies.len()
    }

    /// Whether the scenario's topology is the complete graph on `n` nodes.
    pub fn is_complete_topology(&self) -> bool {
        let g = self.topology.graph();
        self.topology.node_count() == self.n && g.edge_count() == self.n * (self.n - 1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let s = Scenario::new(5, 1, 2)
            .with_sender(NodeId::new(2))
            .with_sender_value(Val::Value(9))
            .with_strategy(NodeId::new(4), Strategy::Silent)
            .with_master_seed(7);
        assert_eq!(s.sender, NodeId::new(2));
        assert_eq!(s.sender_value, Val::Value(9));
        assert_eq!(s.f(), 1);
        assert!(s.faulty().contains(&NodeId::new(4)));
        assert_eq!(s.master_seed, 7);
        assert!(s.is_complete_topology());
        assert!(s.instance().is_ok());
    }

    #[test]
    fn invalid_bounds_surface_as_errors() {
        assert!(matches!(
            Scenario::new(4, 1, 2).instance(),
            Err(ScenarioError::Instance(_))
        ));
        assert!(matches!(
            Scenario::new(9, 3, 1).instance(),
            Err(ScenarioError::Params(_))
        ));
    }

    #[test]
    fn quiet_chaos_injects_nothing() {
        let s = Scenario::new(5, 1, 2).with_chaos(ChaosConfig::quiet());
        assert!(!s.has_link_chaos());
        assert!(s.effective_link_plan().is_none());
        assert!(Scenario::new(5, 1, 2).effective_link_plan().is_none());
        assert!(!Scenario::new(5, 1, 2)
            .with_link_faults(LinkFaultPlan::healthy())
            .has_link_chaos());
    }

    #[test]
    fn chaos_knobs_expand_to_every_directed_pair() {
        let chaos = ChaosConfig {
            drop_p: 0.1,
            duplicate_p: 0.2,
            reorder_window: 0,
            corrupt_p: 0.0,
        };
        let s = Scenario::new(4, 1, 1).with_chaos(chaos);
        assert!(s.has_link_chaos());
        let plan = s.effective_link_plan().unwrap();
        assert_eq!(plan.faulty_link_count(), 4 * 3);
        let kinds = plan.kinds(NodeId::new(0), NodeId::new(3));
        assert_eq!(
            kinds,
            &[
                LinkFaultKind::Drop { p: 0.1 },
                LinkFaultKind::Duplicate { p: 0.2 }
            ]
        );
    }

    #[test]
    fn explicit_plan_and_chaos_knobs_merge() {
        let plan = LinkFaultPlan::healthy().with(
            NodeId::new(0),
            NodeId::new(1),
            LinkFaultKind::Cut { from_round: 0 },
        );
        let chaos = ChaosConfig {
            drop_p: 0.5,
            ..ChaosConfig::quiet()
        };
        let merged = Scenario::new(5, 1, 2)
            .with_link_faults(plan)
            .with_chaos(chaos)
            .effective_link_plan()
            .unwrap();
        let kinds = merged.kinds(NodeId::new(0), NodeId::new(1));
        assert_eq!(
            kinds,
            &[
                LinkFaultKind::Cut { from_round: 0 },
                LinkFaultKind::Drop { p: 0.5 }
            ]
        );
        assert_eq!(merged.faulty_link_count(), 5 * 4);
    }

    #[test]
    fn transport_knob_defaults_to_sim_and_round_trips() {
        let s = Scenario::new(5, 1, 2);
        assert_eq!(s.transport, TransportKind::Sim);
        let s = s.with_transport(TransportKind::Tcp);
        assert_eq!(s.transport, TransportKind::Tcp);
        // The knob never leaks into chaos/topology validity.
        assert!(s.instance().is_ok());
    }

    #[test]
    fn randomize_faults_is_reproducible_and_bounded() {
        let mut r1 = SimRng::seed(11);
        let mut r2 = SimRng::seed(11);
        let a = Scenario::new(7, 1, 4).randomize_faults(3, &mut r1);
        let b = Scenario::new(7, 1, 4).randomize_faults(3, &mut r2);
        assert_eq!(a.faulty(), b.faulty());
        assert_eq!(a.strategies, b.strategies);
        assert_eq!(a.f(), 3);
        assert!(a.faulty().iter().all(|x| x.index() < 7));
    }
}
