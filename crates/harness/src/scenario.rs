//! Declarative description of one agreement experiment.

use degradable::adversary::Strategy;
use degradable::{ByzError, ByzInstance, Params, ParamsError, Val};
use serde::{Deserialize, Serialize};
use simnet::{NodeId, SimRng, Topology};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A fully specified agreement experiment, independent of how it is
/// executed (see [`crate::Executor`]).
///
/// Construction is builder-style from [`Scenario::new`]; every field is
/// public so sweeps can also mutate scenarios in place.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of nodes.
    pub n: usize,
    /// Full-agreement fault tolerance `m`.
    pub m: usize,
    /// Degraded-agreement fault tolerance `u` (`m <= u`).
    pub u: usize,
    /// The designated sender.
    pub sender: NodeId,
    /// The sender's nominal value.
    pub sender_value: Val,
    /// Strategy per faulty node; the key set *is* the fault set.
    pub strategies: BTreeMap<NodeId, Strategy<u64>>,
    /// Network topology. Executors for the fully-connected protocol
    /// (reference and message-passing BYZ) require a complete graph and
    /// report the mismatch as an error; the field exists so sparse-network
    /// executors and reports share the same scenario type.
    pub topology: Topology,
    /// Master seed: drives every derived random choice (engine schedules,
    /// fault placement via [`Scenario::randomize_faults`]).
    pub master_seed: u64,
}

/// Why a [`Scenario`] cannot be instantiated or executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// `(m, u)` is not a valid parameter pair (`u < m`).
    Params(ParamsError),
    /// The instance violates the node-count or sender-range bound.
    Instance(ByzError),
    /// The executor requires a complete topology but the scenario names a
    /// different one.
    TopologyUnsupported {
        /// The topology's name.
        topology: String,
        /// The executor that rejected it.
        executor: &'static str,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Params(e) => write!(f, "invalid parameters: {e}"),
            ScenarioError::Instance(e) => write!(f, "invalid instance: {e}"),
            ScenarioError::TopologyUnsupported { topology, executor } => {
                write!(
                    f,
                    "executor {executor} requires a complete topology, got {topology}"
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ParamsError> for ScenarioError {
    fn from(e: ParamsError) -> Self {
        ScenarioError::Params(e)
    }
}

impl From<ByzError> for ScenarioError {
    fn from(e: ByzError) -> Self {
        ScenarioError::Instance(e)
    }
}

impl Scenario {
    /// A scenario with `n` nodes and parameters `(m, u)`: sender 0 holding
    /// value 1, no faults, complete topology, master seed 0.
    pub fn new(n: usize, m: usize, u: usize) -> Self {
        Scenario {
            n,
            m,
            u,
            sender: NodeId::new(0),
            sender_value: Val::Value(1),
            strategies: BTreeMap::new(),
            topology: Topology::complete(n),
            master_seed: 0,
        }
    }

    /// Replaces the sender.
    pub fn with_sender(mut self, sender: NodeId) -> Self {
        self.sender = sender;
        self
    }

    /// Replaces the sender's value.
    pub fn with_sender_value(mut self, value: Val) -> Self {
        self.sender_value = value;
        self
    }

    /// Replaces the full strategy map.
    pub fn with_strategies(mut self, strategies: BTreeMap<NodeId, Strategy<u64>>) -> Self {
        self.strategies = strategies;
        self
    }

    /// Marks one node faulty with the given strategy.
    pub fn with_strategy(mut self, node: NodeId, strategy: Strategy<u64>) -> Self {
        self.strategies.insert(node, strategy);
        self
    }

    /// Replaces the topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Replaces the master seed.
    pub fn with_master_seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// Assigns `f` uniformly-placed faulty nodes, each with a strategy
    /// drawn from the standard [`Strategy::battery`], consuming randomness
    /// from `rng` only (so placement is reproducible from the trial seed).
    pub fn randomize_faults(mut self, f: usize, rng: &mut SimRng) -> Self {
        let alpha = match self.sender_value {
            Val::Value(v) => v,
            Val::Default => 0,
        };
        let battery = Strategy::battery(alpha, alpha ^ 0xBAD, rng.below(u64::MAX));
        self.strategies = rng
            .choose_indices(self.n, f.min(self.n))
            .into_iter()
            .map(|i| {
                let (_, s) = battery[rng.below(battery.len() as u64) as usize].clone();
                (NodeId::new(i), s)
            })
            .collect();
        self
    }

    /// The `(m, u)` parameter pair.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Params`] when `u < m`.
    pub fn params(&self) -> Result<Params, ScenarioError> {
        Ok(Params::new(self.m, self.u)?)
    }

    /// The validated BYZ instance for this scenario.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Params`] or [`ScenarioError::Instance`] when the
    /// scenario violates the parameter or node-count bounds.
    pub fn instance(&self) -> Result<ByzInstance, ScenarioError> {
        Ok(ByzInstance::new(self.n, self.params()?, self.sender)?)
    }

    /// The fault set (the strategy map's key set).
    pub fn faulty(&self) -> BTreeSet<NodeId> {
        self.strategies.keys().copied().collect()
    }

    /// Number of faulty nodes.
    pub fn f(&self) -> usize {
        self.strategies.len()
    }

    /// Whether the scenario's topology is the complete graph on `n` nodes.
    pub fn is_complete_topology(&self) -> bool {
        let g = self.topology.graph();
        self.topology.node_count() == self.n && g.edge_count() == self.n * (self.n - 1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let s = Scenario::new(5, 1, 2)
            .with_sender(NodeId::new(2))
            .with_sender_value(Val::Value(9))
            .with_strategy(NodeId::new(4), Strategy::Silent)
            .with_master_seed(7);
        assert_eq!(s.sender, NodeId::new(2));
        assert_eq!(s.sender_value, Val::Value(9));
        assert_eq!(s.f(), 1);
        assert!(s.faulty().contains(&NodeId::new(4)));
        assert_eq!(s.master_seed, 7);
        assert!(s.is_complete_topology());
        assert!(s.instance().is_ok());
    }

    #[test]
    fn invalid_bounds_surface_as_errors() {
        assert!(matches!(
            Scenario::new(4, 1, 2).instance(),
            Err(ScenarioError::Instance(_))
        ));
        assert!(matches!(
            Scenario::new(9, 3, 1).instance(),
            Err(ScenarioError::Params(_))
        ));
    }

    #[test]
    fn randomize_faults_is_reproducible_and_bounded() {
        let mut r1 = SimRng::seed(11);
        let mut r2 = SimRng::seed(11);
        let a = Scenario::new(7, 1, 4).randomize_faults(3, &mut r1);
        let b = Scenario::new(7, 1, 4).randomize_faults(3, &mut r2);
        assert_eq!(a.faulty(), b.faulty());
        assert_eq!(a.strategies, b.strategies);
        assert_eq!(a.f(), 3);
        assert!(a.faulty().iter().all(|x| x.index() < 7));
    }
}
