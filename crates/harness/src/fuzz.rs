//! Conformance fuzzing: randomized executions judged by the abstract spec.
//!
//! The referee lives in [`degradable::SpecChecker`] — an executable
//! restatement of algorithm BYZ(m, u) that shares no code with the
//! optimized executors. This module supplies everything around it:
//!
//! * [`FuzzPlan`] — one randomized execution shape (`n`, `(m, u)`, sender,
//!   fault assignments, link chaos, adaptive overlays, churn crashes),
//!   generated from a [`SimRng`] so the whole campaign replays from one
//!   seed, and round-trippable through JSON for repro files;
//! * [`run_plan`] — the lockstep driver: it advances `n` real
//!   [`NodeStateMachine`]s round by round, routes their sends through the
//!   message-keyed [`LinkChaos`] layer (including online
//!   [`HotEdgeCutter`] overlays), lets adaptive adversaries rewrite the
//!   claims of faulty nodes, crashes churned nodes mid-run — and validates
//!   **every delivery, every round close, every decision and every final
//!   view** against the spec machine, recording the first divergent step;
//! * [`Mutation`] — deliberate implementation bugs (relay suppression)
//!   injected *without telling the checker*, proving the referee actually
//!   catches non-conformance (the CI `fuzz-smoke` mutant gate);
//! * [`shrink`] — greedy minimization of a failing plan (drop faults,
//!   silence chaos, strip overlays) to a fixpoint that still fails;
//! * repro files — minimized `(seed, plan)` pairs written to
//!   `results/repros/` as schema-tagged JSON and replayed by
//!   `dagree fuzz --replay`, printing the first divergent step.
//!
//! Every random choice is derived from `(master_seed, trial)` via
//! [`SimRng::derive`], and every online component (adaptive adversaries,
//! adaptive link overlays) mutates state only inside the lockstep driver's
//! fixed total order — so campaigns are bit-identical across worker
//! counts, which experiment E18 asserts.

use crate::report::JsonValue;
use degradable::{
    adversary_by_id, check_degradable, run_batch_traced, AdaptiveAdversary, BatchInstance,
    BatchTraceEvent, ByzInstance, ByzMsg, NodeAction, NodeEvent, NodeStateMachine, Params,
    RunRecord, SpecChecker, SpecInstance, SpecViolation, Strategy, Val, Verdict,
};
use simnet::{LinkFaultKind, LinkFaultPlan, NodeId, SimRng};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::{Path as FsPath, PathBuf};
use transport::{
    Disposition, HotEdgeCutter, LinkChaos, LoggedEvent, MeshConfig, RunOptions, TransportKind,
};

/// The smallest cluster BYZ(1, 1) admits (`n ≥ 2m + u + 1`).
pub const MIN_N: usize = 4;

/// Default cluster-size ceiling for generated plans (inclusive).
pub const DEFAULT_MAX_N: usize = 9;

/// How one faulty node misbehaves in a generated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// A strategy from [`Strategy::battery`], by index.
    Static(usize),
    /// An online adversary from [`degradable::adversary_by_id`], by id: it
    /// watches delivered traffic and picks equivocations/withholdings from
    /// what it observed.
    Adaptive(usize),
    /// Churn: the node behaves honestly, then crashes at the close of
    /// `at_round` and never sends again (it still receives — a rejoining
    /// observer — but counts as faulty for the whole execution).
    Crash {
        /// First round whose close emits nothing.
        at_round: usize,
    },
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpec::Static(i) => write!(f, "static:{i}"),
            FaultSpec::Adaptive(i) => write!(f, "adaptive:{i}"),
            FaultSpec::Crash { at_round } => write!(f, "crash@{at_round}"),
        }
    }
}

/// A deliberate implementation bug injected into an otherwise-honest
/// execution, *without* informing the spec checker — the checker must
/// catch it on its own (the CI mutant gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The first honest node with outgoing relays silently drops one of
    /// them (once per execution).
    SuppressRelay,
    /// The first honest node with outgoing sends garbles the value of
    /// one of them (once per execution) — a corrupted relay the checker
    /// must flag against its expected relay multiset.
    WrongValueRelay,
    /// The first honest non-sender node snapshots its fold one round
    /// before the tree is complete and reports that stale value as its
    /// decision — a premature termination bug.
    EarlyDecision,
    /// The first honest non-sender decision is recomputed with the vote
    /// threshold shifted by one (`VOTE(n-ℓ-m+1, ·)`), the classic
    /// boundary slip in the fold.
    VoteOffByOne,
}

/// Every mutation, in CLI help order.
pub const ALL_MUTATIONS: [Mutation; 4] = [
    Mutation::SuppressRelay,
    Mutation::WrongValueRelay,
    Mutation::EarlyDecision,
    Mutation::VoteOffByOne,
];

impl Mutation {
    /// Stable name used in repro files and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::SuppressRelay => "relay-suppression",
            Mutation::WrongValueRelay => "wrong-value-relay",
            Mutation::EarlyDecision => "early-decision",
            Mutation::VoteOffByOne => "vote-off-by-one",
        }
    }

    /// Parses a CLI/repro mutation name.
    pub fn from_name(name: &str) -> Result<Mutation, String> {
        ALL_MUTATIONS
            .into_iter()
            .find(|m| m.name() == name)
            .ok_or_else(|| {
                let names: Vec<&str> = ALL_MUTATIONS.iter().map(|m| m.name()).collect();
                format!(
                    "unknown mutation '{name}' (expected one of {})",
                    names.join(", ")
                )
            })
    }
}

/// One fully specified fuzz execution, generated from a trial RNG and
/// round-trippable through JSON (repro files).
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzPlan {
    /// Cluster size (`MIN_N..=max_n`).
    pub n: usize,
    /// Full-agreement threshold.
    pub m: usize,
    /// Degraded-agreement threshold (`m ≤ u`, `2m + u + 1 ≤ n`).
    pub u: usize,
    /// The designated sender.
    pub sender: NodeId,
    /// The sender's nominal value.
    pub sender_value: u64,
    /// Fault assignment; the key set is the declared fault set (`|·| ≤ u`).
    pub faults: BTreeMap<NodeId, FaultSpec>,
    /// Uniform per-envelope loss probability on every directed edge
    /// (message-keyed, so identical under any driver schedule).
    pub drop_p: f64,
    /// When set, a [`HotEdgeCutter`] overlay with this threshold rides on
    /// the link layer — the online adversary no offline plan can express.
    pub hot_edge_threshold: Option<usize>,
    /// Seed for the chaos layer and any seeded static strategies.
    pub seed: u64,
    /// When set, every machine *and* the checker run with
    /// certified-fault-set early stopping armed (DESIGN.md §5h): pruned
    /// relays become required omissions the referee enforces.
    pub early_stop: bool,
}

impl FuzzPlan {
    /// Generates one plan from a trial RNG. All choices (shape, faults,
    /// chaos intensity) consume randomness only from `rng`.
    pub fn generate(rng: &mut SimRng, max_n: usize) -> FuzzPlan {
        let max_n = max_n.max(MIN_N);
        let n = MIN_N + rng.below((max_n - MIN_N + 1) as u64) as usize;
        let mut pairs = Vec::new();
        for m in 1..n {
            for u in m..n {
                if 2 * m + u < n {
                    pairs.push((m, u));
                }
            }
        }
        let (m, u) = *rng.pick(&pairs).expect("n >= 4 admits (1, 1)");
        let sender = NodeId::new(rng.below(n as u64) as usize);
        let sender_value = 1 + rng.below(99);
        let battery_len = Strategy::battery(0, 1, 0).len() as u64;
        let f = rng.below(u as u64 + 1) as usize;
        let faults = rng
            .choose_indices(n, f)
            .into_iter()
            .map(|i| {
                let spec = match rng.below(3) {
                    0 => FaultSpec::Static(rng.below(battery_len) as usize),
                    1 => FaultSpec::Adaptive(rng.below(degradable::ADAPTIVE_KINDS as u64) as usize),
                    _ => FaultSpec::Crash {
                        at_round: rng.below(m as u64 + 2) as usize,
                    },
                };
                (NodeId::new(i), spec)
            })
            .collect();
        let drop_p = *rng.pick(&[0.0, 0.0, 0.05, 0.2]).expect("non-empty");
        let hot_edge_threshold = (rng.below(4) == 0).then(|| 2 + rng.below(4) as usize);
        let seed = rng.below(u64::MAX);
        let early_stop = rng.below(2) == 0;
        FuzzPlan {
            n,
            m,
            u,
            sender,
            sender_value,
            faults,
            drop_p,
            hot_edge_threshold,
            seed,
            early_stop,
        }
    }

    /// The validated BYZ instance for this plan.
    pub fn instance(&self) -> ByzInstance {
        ByzInstance::new(
            self.n,
            Params::new(self.m, self.u).expect("generated plans satisfy m <= u"),
            self.sender,
        )
        .expect("generated plans satisfy n >= 2m + u + 1")
    }

    /// Whether the plan injects no link-level noise, i.e. links between
    /// fault-free nodes are reliable as the paper assumes — only then may
    /// the driver additionally hold decisions to the degradable-agreement
    /// verdict (with chaos on, a dropped honest→honest envelope is a fault
    /// outside the declared set and D.1–D.4 legitimately need not hold).
    pub fn is_model_clean(&self) -> bool {
        self.drop_p == 0.0 && self.hot_edge_threshold.is_none()
    }

    /// The chaos layer this plan installs.
    fn chaos(&self) -> LinkChaos {
        let plan = if self.drop_p > 0.0 {
            LinkFaultPlan::uniform_complete(self.n, &[LinkFaultKind::Drop { p: self.drop_p }])
        } else {
            LinkFaultPlan::healthy()
        };
        let chaos = LinkChaos::new(plan, self.seed);
        match self.hot_edge_threshold {
            Some(t) => chaos.with_adaptive(HotEdgeCutter::new(t)),
            None => chaos,
        }
    }

    /// Serializes the plan for repro files (stable field order).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("n".into(), self.n.into()),
            ("m".into(), self.m.into()),
            ("u".into(), self.u.into()),
            ("sender".into(), self.sender.index().into()),
            ("sender_value".into(), self.sender_value.into()),
            (
                "faults".into(),
                JsonValue::Array(
                    self.faults
                        .iter()
                        .map(|(node, spec)| {
                            let mut fields = vec![("node".into(), JsonValue::from(node.index()))];
                            match spec {
                                FaultSpec::Static(i) => {
                                    fields.push(("kind".into(), "static".into()));
                                    fields.push(("id".into(), (*i).into()));
                                }
                                FaultSpec::Adaptive(i) => {
                                    fields.push(("kind".into(), "adaptive".into()));
                                    fields.push(("id".into(), (*i).into()));
                                }
                                FaultSpec::Crash { at_round } => {
                                    fields.push(("kind".into(), "crash".into()));
                                    fields.push(("at_round".into(), (*at_round).into()));
                                }
                            }
                            JsonValue::Object(fields)
                        })
                        .collect(),
                ),
            ),
            ("drop_p".into(), self.drop_p.into()),
            (
                "hot_edge_threshold".into(),
                match self.hot_edge_threshold {
                    Some(t) => t.into(),
                    None => JsonValue::Null,
                },
            ),
            ("seed".into(), self.seed.into()),
            ("early_stop".into(), u64::from(self.early_stop).into()),
        ])
    }

    /// Deserializes a plan from repro-file JSON.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(v: &JsonValue) -> Result<FuzzPlan, String> {
        let field = |name: &str| v.get(name).ok_or_else(|| format!("missing field `{name}`"));
        let uint = |name: &str| {
            field(name)?
                .as_u64()
                .ok_or_else(|| format!("field `{name}` is not an unsigned integer"))
        };
        let mut faults = BTreeMap::new();
        for (i, entry) in field("faults")?
            .as_array()
            .ok_or("field `faults` is not an array")?
            .iter()
            .enumerate()
        {
            let sub = |name: &str| {
                entry
                    .get(name)
                    .ok_or_else(|| format!("fault #{i}: missing field `{name}`"))
            };
            let sub_uint = |name: &str| {
                sub(name)?
                    .as_u64()
                    .ok_or_else(|| format!("fault #{i}: field `{name}` is not an integer"))
            };
            let node = NodeId::new(sub_uint("node")? as usize);
            let spec = match sub("kind")?.as_str() {
                Some("static") => FaultSpec::Static(sub_uint("id")? as usize),
                Some("adaptive") => FaultSpec::Adaptive(sub_uint("id")? as usize),
                Some("crash") => FaultSpec::Crash {
                    at_round: sub_uint("at_round")? as usize,
                },
                other => return Err(format!("fault #{i}: unknown kind {other:?}")),
            };
            faults.insert(node, spec);
        }
        let drop_p = match field("drop_p")? {
            JsonValue::Float(f) => *f,
            JsonValue::UInt(0) => 0.0,
            other => return Err(format!("field `drop_p` is not a number: {other:?}")),
        };
        Ok(FuzzPlan {
            n: uint("n")? as usize,
            m: uint("m")? as usize,
            u: uint("u")? as usize,
            sender: NodeId::new(uint("sender")? as usize),
            sender_value: uint("sender_value")?,
            faults,
            drop_p,
            hot_edge_threshold: match field("hot_edge_threshold")? {
                JsonValue::Null => None,
                other => Some(
                    other
                        .as_u64()
                        .ok_or("field `hot_edge_threshold` is not an integer")?
                        as usize,
                ),
            },
            seed: uint("seed")?,
            // Absent in version-1 repro files written before early
            // stopping existed: those executions ran without it.
            early_stop: match v.get("early_stop") {
                None | Some(JsonValue::Null) => false,
                Some(other) => {
                    other
                        .as_u64()
                        .ok_or("field `early_stop` is not an integer")?
                        != 0
                }
            },
        })
    }
}

/// The first step at which an execution departed from the spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzViolation {
    /// Ordinal of the divergent driver step (deliveries, closes,
    /// decisions and view checks all count).
    pub step: usize,
    /// What the driver was doing at that step.
    pub step_desc: String,
    /// The spec's complaint, rendered.
    pub violation: String,
    /// Causal context of the first divergent step, as an
    /// [`obs::TraceCtx`]: the relay path the spec's complaint names
    /// (unexpected relay, missing relay, view divergence), or — when the
    /// divergence surfaced at a delivery — the delivered envelope's
    /// claimed path. Carried into repro files (format v2) so a minimized
    /// repro pins the exact causal chain that first diverged. `None` for
    /// complaints that name no envelope (wrong decision, phase skew,
    /// model check).
    pub trace: Option<obs::TraceCtx>,
}

/// The causal context of a delivery step: the envelope's claimed relay
/// path, as the trace layer would have stamped it.
fn delivery_ctx(instance: u64, msg: &ByzMsg<u64>) -> obs::TraceCtx {
    obs::TraceCtx::new(
        instance,
        msg.path
            .as_slice()
            .iter()
            .map(|id| id.index() as u64)
            .collect(),
    )
}

/// The causal chain a spec complaint names, when it names one: the
/// offending relay path of `instance` as a trace context.
fn violation_ctx(instance: u64, v: &SpecViolation) -> Option<obs::TraceCtx> {
    let path = match v {
        SpecViolation::UnexpectedRelay { path, .. }
        | SpecViolation::MissingRelay { path, .. }
        | SpecViolation::ViewDivergence { path, .. } => path,
        SpecViolation::WrongDecision { .. } | SpecViolation::PhaseSkew { .. } => return None,
    };
    Some(obs::TraceCtx::new(
        instance,
        path.as_slice().iter().map(|id| id.index() as u64).collect(),
    ))
}

impl fmt::Display for FuzzViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {} ({}): {}",
            self.step, self.step_desc, self.violation
        )
    }
}

/// What one checked execution produced.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Total driver steps performed.
    pub steps: usize,
    /// The first divergence, if any.
    pub violation: Option<FuzzViolation>,
    /// Every deciding receiver's decision.
    pub decisions: BTreeMap<NodeId, Val>,
    /// Whether the degradable-agreement verdict was additionally checked
    /// (only on model-clean plans without mutations).
    pub verdict_checked: bool,
}

/// Runs `plan` through real [`NodeStateMachine`]s in lockstep with the
/// spec checker, optionally injecting `mutation`. Every delivered envelope,
/// round close, decision and final view is validated; on model-clean plans
/// the fault-free decisions are additionally held to
/// [`degradable::check_degradable`].
pub fn run_plan(plan: &FuzzPlan, mutation: Option<Mutation>) -> ExecReport {
    let inst = plan.instance();
    let n = plan.n;
    let depth = inst.depth();
    let faulty: BTreeSet<NodeId> = plan.faults.keys().copied().collect();
    let mut checker = SpecChecker::new(
        SpecInstance::of(&inst),
        Val::Value(plan.sender_value),
        faulty.clone(),
    );
    if plan.early_stop {
        checker = checker.with_early_stop();
    }
    let chaos = plan.chaos();
    let battery = Strategy::battery(plan.sender_value, plan.sender_value ^ 0xBAD, plan.seed);
    let mut adversaries: BTreeMap<NodeId, Box<dyn AdaptiveAdversary<u64>>> = BTreeMap::new();
    let mut machines: Vec<NodeStateMachine<u64>> = (0..n)
        .map(|i| {
            let node = NodeId::new(i);
            let strategy = match plan.faults.get(&node) {
                Some(FaultSpec::Static(idx)) => Some(battery[idx % battery.len()].1.clone()),
                Some(FaultSpec::Adaptive(id)) => {
                    adversaries.insert(node, adversary_by_id(*id));
                    None
                }
                // Crashed nodes run honest machinery; the driver severs
                // their sends at the crash round.
                Some(FaultSpec::Crash { .. }) | None => None,
            };
            let machine =
                NodeStateMachine::new(&inst, node, Val::Value(plan.sender_value), strategy);
            if plan.early_stop {
                machine.with_early_stop(&faulty)
            } else {
                machine
            }
        })
        .collect();

    let mut step = 0usize;
    let mut first: Option<FuzzViolation> = None;
    let mut note = |checker: &SpecChecker<u64>,
                    step: usize,
                    trace: Option<obs::TraceCtx>,
                    desc: &dyn Fn() -> String| {
        if first.is_none() {
            if let Some(v) = checker.first_violation() {
                first = Some(FuzzViolation {
                    step,
                    step_desc: desc(),
                    violation: v.to_string(),
                    trace: violation_ctx(0, v).or(trace),
                });
            }
        }
    };

    // deliveries[r][i]: envelopes folding at node i's close of round r.
    type Mailboxes = Vec<Vec<Vec<(NodeId, ByzMsg<u64>)>>>;
    let mut deliveries: Mailboxes = vec![vec![Vec::new(); n]; depth + 1];
    let mut decisions: BTreeMap<NodeId, Val> = BTreeMap::new();
    let mut mutated = false;
    let mut early_decision: Option<(NodeId, Val)> = None;
    for round in 0..=depth {
        for i in 0..n {
            let node = NodeId::new(i);
            for (src, msg) in std::mem::take(&mut deliveries[round][i]) {
                step += 1;
                checker.deliver(node, src, &msg, round);
                note(&checker, step, Some(delivery_ctx(0, &msg)), &|| {
                    format!(
                        "deliver round={round} to={node} src={src} path={}",
                        msg.path
                    )
                });
                if let Some(adv) = adversaries.get_mut(&node) {
                    adv.observe(round, src, &msg.path, &msg.value);
                }
                machines[i].on_event(NodeEvent::Deliver { src, msg });
            }
        }
        let mut outgoing: Vec<(NodeId, NodeId, ByzMsg<u64>)> = Vec::new();
        for (i, machine) in machines.iter_mut().enumerate() {
            let node = NodeId::new(i);
            let mut sends = Vec::new();
            let mut decided = None;
            for action in machine.on_event(NodeEvent::Timeout { round }) {
                match action {
                    NodeAction::Send { to, msg } => sends.push((to, msg)),
                    NodeAction::Decide { value } => decided = Some(value),
                }
            }
            if let Some(FaultSpec::Crash { at_round }) = plan.faults.get(&node) {
                if round >= *at_round {
                    sends.clear();
                }
            }
            if let Some(adv) = adversaries.get_mut(&node) {
                sends = sends
                    .into_iter()
                    .filter_map(|(to, mut msg)| {
                        adv.claim(round, &msg.path, to, &msg.value).map(|v| {
                            msg.value = v;
                            (to, msg)
                        })
                    })
                    .collect();
            }
            // The implementation bugs under test, injected once per
            // execution into an honest node. The checker is NOT told.
            match mutation {
                Some(Mutation::SuppressRelay)
                    if !mutated && checker.is_honest(node) && !sends.is_empty() =>
                {
                    // One relay silently never leaves the node.
                    sends.pop();
                    mutated = true;
                }
                Some(Mutation::WrongValueRelay)
                    if !mutated && checker.is_honest(node) && !sends.is_empty() =>
                {
                    // One outgoing claim is garbled in flight out of an
                    // honest node.
                    sends[0].1.value = match &sends[0].1.value {
                        Val::Value(x) => Val::Value(x ^ 0x5A),
                        Val::Default => Val::Value(0x5A),
                    };
                    mutated = true;
                }
                Some(Mutation::EarlyDecision)
                    if early_decision.is_none()
                        && round + 1 == depth
                        && checker.is_honest(node)
                        && node != plan.sender =>
                {
                    // Snapshot the fold one round before the leaves
                    // arrive; this stale value is reported at decide.
                    let rule = degradable::VoteRule::Degradable { m: plan.m };
                    let stale = machine.view().resolve(plan.sender, rule);
                    early_decision = Some((node, stale));
                }
                _ => {}
            }
            step += 1;
            checker.close_round(node, round, &sends);
            note(&checker, step, None, &|| {
                format!("close node={node} round={round}")
            });
            for (to, msg) in sends {
                outgoing.push((node, to, msg));
            }
            if round == depth {
                let mut reported = decided;
                match mutation {
                    Some(Mutation::EarlyDecision) => {
                        if let Some((who, stale)) = &early_decision {
                            if *who == node {
                                reported = Some(*stale);
                            }
                        }
                    }
                    Some(Mutation::VoteOffByOne)
                        if !mutated
                            && checker.is_honest(node)
                            && node != plan.sender
                            && reported.is_some() =>
                    {
                        // Re-fold with the vote threshold raised by one
                        // (`m - 1` in the rule shifts every alpha up).
                        let rule = degradable::VoteRule::Degradable { m: plan.m - 1 };
                        reported = Some(match plan.early_stop {
                            true => machine.view().resolve_pruned(plan.sender, rule, &faulty),
                            false => machine.view().resolve(plan.sender, rule),
                        });
                        mutated = true;
                    }
                    _ => {}
                }
                step += 1;
                checker.decide(node, reported.as_ref());
                note(&checker, step, None, &|| format!("decide node={node}"));
                if let Some(d) = reported {
                    decisions.insert(node, d);
                }
            }
        }
        for (from, to, msg) in outgoing {
            match chaos.disposition(round, from, to, &msg.path) {
                Disposition::Dropped(_) => {}
                Disposition::Deliver {
                    copies,
                    delay_rounds,
                } => {
                    let at = round + 1 + delay_rounds;
                    if at <= depth {
                        for _ in 0..copies {
                            deliveries[at][to.index()].push((from, msg.clone()));
                        }
                    }
                }
            }
        }
    }
    for (i, machine) in machines.iter().enumerate() {
        let node = NodeId::new(i);
        step += 1;
        checker.check_view(node, machine.view().entries());
        note(&checker, step, None, &|| format!("check-view node={node}"));
    }

    let verdict_checked = plan.is_model_clean() && mutation.is_none() && first.is_none();
    if verdict_checked {
        let record = RunRecord {
            params: Params::new(plan.m, plan.u).expect("valid plan"),
            n,
            sender: plan.sender,
            sender_value: Val::Value(plan.sender_value),
            faulty,
            decisions: decisions.clone(),
        };
        if let Verdict::Violated(v) = check_degradable(&record) {
            step += 1;
            first = Some(FuzzViolation {
                step,
                step_desc: "model-check".into(),
                violation: format!("degradable agreement violated with f <= u: {v:?}"),
                trace: None,
            });
        }
    }
    ExecReport {
        steps: step,
        violation: first,
        decisions,
        verdict_checked,
    }
}

/// Coerces a plan's fault assignment to the static strategies the
/// threaded transport backends and the batch service support: adaptive
/// adversaries map to their battery cousin by index, churn crashes to
/// permanent silence. The *set* of faulty nodes is preserved, which is
/// all conformance checking constrains — faulty behavior is arbitrary
/// by definition.
fn static_strategies(plan: &FuzzPlan) -> BTreeMap<NodeId, Strategy<u64>> {
    let battery = Strategy::battery(plan.sender_value, plan.sender_value ^ 0xBAD, plan.seed);
    plan.faults
        .iter()
        .map(|(node, spec)| {
            let s = match spec {
                FaultSpec::Static(idx) => battery[idx % battery.len()].1.clone(),
                FaultSpec::Adaptive(id) => battery[id % battery.len()].1.clone(),
                FaultSpec::Crash { .. } => Strategy::Silent,
            };
            (*node, s)
        })
        .collect()
}

/// Runs `plan` (coerced to static faults) over a real transport backend
/// with event recording, then replays every node's log through a fresh
/// [`SpecChecker`] in the driver's canonical `(round, node)` order — so
/// the threaded meshes answer to the same referee as the in-process
/// lockstep driver. Early stopping arms machines and checker together.
pub fn run_plan_transport(plan: &FuzzPlan, kind: TransportKind) -> ExecReport {
    let inst = plan.instance();
    let n = plan.n;
    let depth = inst.depth();
    let strategies = static_strategies(plan);
    let faulty: BTreeSet<NodeId> = plan.faults.keys().copied().collect();
    let options = RunOptions {
        early_stop: plan.early_stop,
        record_events: true,
        ..RunOptions::default()
    };
    let run = transport::run_kind_with(
        kind,
        &inst,
        Val::Value(plan.sender_value),
        &strategies,
        plan.chaos(),
        MeshConfig::default(),
        options,
    )
    .expect("loopback transports are available");

    let mut checker = SpecChecker::new(
        SpecInstance::of(&inst),
        Val::Value(plan.sender_value),
        faulty.clone(),
    );
    if plan.early_stop {
        checker = checker.with_early_stop();
    }
    // Segment each node's log into per-round (deliveries, close)
    // batches: deliveries recorded after the close of round r-1 fold at
    // the close of round r, which is exactly the log order.
    type Segment = (
        Vec<(NodeId, ByzMsg<u64>)>,
        Vec<(NodeId, ByzMsg<u64>)>,
        Option<Val>,
    );
    let mut per_node: BTreeMap<NodeId, BTreeMap<usize, Segment>> = BTreeMap::new();
    for (node, events) in &run.node_events {
        let slots = per_node.entry(*node).or_default();
        let mut pending: Vec<(NodeId, ByzMsg<u64>)> = Vec::new();
        for ev in events {
            match ev {
                LoggedEvent::Deliver { src, msg } => pending.push((*src, msg.clone())),
                LoggedEvent::Close {
                    round,
                    sends,
                    decided,
                } => {
                    slots.insert(
                        *round,
                        (std::mem::take(&mut pending), sends.clone(), *decided),
                    );
                }
            }
        }
    }

    let mut step = 0usize;
    let mut first: Option<FuzzViolation> = None;
    let mut note = |checker: &SpecChecker<u64>,
                    step: usize,
                    trace: Option<obs::TraceCtx>,
                    desc: &dyn Fn() -> String| {
        if first.is_none() {
            if let Some(v) = checker.first_violation() {
                first = Some(FuzzViolation {
                    step,
                    step_desc: desc(),
                    violation: v.to_string(),
                    trace: violation_ctx(0, v).or(trace),
                });
            }
        }
    };
    let mut decisions: BTreeMap<NodeId, Val> = BTreeMap::new();
    for round in 0..=depth {
        for i in 0..n {
            let node = NodeId::new(i);
            let Some((delivers, sends, decided)) =
                per_node.get(&node).and_then(|slots| slots.get(&round))
            else {
                continue;
            };
            for (src, msg) in delivers {
                step += 1;
                checker.deliver(node, *src, msg, round);
                note(&checker, step, Some(delivery_ctx(0, msg)), &|| {
                    format!(
                        "{kind:?} deliver round={round} to={node} src={src} path={}",
                        msg.path
                    )
                });
            }
            step += 1;
            checker.close_round(node, round, sends);
            note(&checker, step, None, &|| {
                format!("{kind:?} close node={node} round={round}")
            });
            if round == depth {
                step += 1;
                checker.decide(node, decided.as_ref());
                note(&checker, step, None, &|| {
                    format!("{kind:?} decide node={node}")
                });
                if let Some(d) = decided {
                    decisions.insert(node, *d);
                }
            }
        }
    }
    for (node, view) in &run.views {
        step += 1;
        checker.check_view(*node, view.entries());
        note(&checker, step, None, &|| {
            format!("{kind:?} check-view node={node}")
        });
    }

    let verdict_checked = plan.is_model_clean() && first.is_none();
    if verdict_checked {
        let record = RunRecord {
            params: Params::new(plan.m, plan.u).expect("valid plan"),
            n,
            sender: plan.sender,
            sender_value: Val::Value(plan.sender_value),
            faulty,
            decisions: decisions.clone(),
        };
        if let Verdict::Violated(v) = check_degradable(&record) {
            step += 1;
            first = Some(FuzzViolation {
                step,
                step_desc: format!("{kind:?} model-check"),
                violation: format!("degradable agreement violated with f <= u: {v:?}"),
                trace: None,
            });
        }
    }
    ExecReport {
        steps: step,
        violation: first,
        decisions,
        verdict_checked,
    }
}

/// Runs `plan` as a two-instance batched-service execution
/// ([`run_batch_traced`]) and replays the trace through one
/// [`SpecChecker`] per instance. The second instance shifts the sender
/// by one and perturbs the value, so the multiplexer is exercised with
/// genuinely distinct concurrent trees. Link chaos is not installed —
/// the subject under test here is the multiplexer itself.
pub fn run_plan_batch(plan: &FuzzPlan) -> ExecReport {
    let params = Params::new(plan.m, plan.u).expect("valid plan");
    let strategies = static_strategies(plan);
    let faulty: BTreeSet<NodeId> = plan.faults.keys().copied().collect();
    let sender2 = NodeId::new((plan.sender.index() + 1) % plan.n);
    let instances = vec![
        BatchInstance {
            sender: plan.sender,
            value: Val::Value(plan.sender_value),
        },
        BatchInstance {
            sender: sender2,
            value: Val::Value(plan.sender_value ^ 1),
        },
    ];
    let mut checkers: Vec<SpecChecker<u64>> = instances
        .iter()
        .map(|bi| {
            let inst = ByzInstance::new(plan.n, params, bi.sender).expect("valid plan");
            let mut c = SpecChecker::new(SpecInstance::of(&inst), bi.value, faulty.clone());
            if plan.early_stop {
                c = c.with_early_stop();
            }
            c
        })
        .collect();

    let mut step = 0usize;
    let mut first: Option<FuzzViolation> = None;
    let (run, views) = run_batch_traced(
        params,
        plan.n,
        &instances,
        &strategies,
        plan.seed,
        plan.early_stop,
        |e| e,
        &mut |ev| {
            step += 1;
            let (k, trace) = match ev {
                BatchTraceEvent::Deliver {
                    instance,
                    to,
                    src,
                    path,
                    value,
                    round,
                } => {
                    let msg = ByzMsg { path, value };
                    checkers[instance].deliver(to, src, &msg, round);
                    (instance, Some(delivery_ctx(instance as u64, &msg)))
                }
                BatchTraceEvent::Close {
                    instance,
                    node,
                    round,
                    sends,
                } => {
                    let sends: Vec<(NodeId, ByzMsg<u64>)> = sends
                        .into_iter()
                        .map(|(to, path, value)| (to, ByzMsg { path, value }))
                        .collect();
                    checkers[instance].close_round(node, round, &sends);
                    (instance, None)
                }
            };
            if first.is_none() {
                if let Some(v) = checkers[k].first_violation() {
                    first = Some(FuzzViolation {
                        step,
                        step_desc: format!("batch event instance={k}"),
                        violation: v.to_string(),
                        trace: violation_ctx(k as u64, v).or(trace),
                    });
                }
            }
        },
    );
    let mut note =
        |checkers: &[SpecChecker<u64>], k: usize, step: usize, desc: &dyn Fn() -> String| {
            if first.is_none() {
                if let Some(v) = checkers[k].first_violation() {
                    first = Some(FuzzViolation {
                        step,
                        step_desc: desc(),
                        violation: v.to_string(),
                        trace: violation_ctx(k as u64, v),
                    });
                }
            }
        };
    for (k, _) in instances.iter().enumerate() {
        for i in 0..plan.n {
            let node = NodeId::new(i);
            step += 1;
            checkers[k].decide(node, run.decisions[k].get(&node));
            note(&checkers, k, step, &|| {
                format!("batch decide instance={k} node={node}")
            });
        }
        for (node, view) in &views[k] {
            step += 1;
            checkers[k].check_view(*node, view.entries());
            note(&checkers, k, step, &|| {
                format!("batch check-view instance={k} node={node}")
            });
        }
    }

    let verdict_checked = first.is_none();
    if verdict_checked {
        let record = RunRecord {
            params,
            n: plan.n,
            sender: plan.sender,
            sender_value: Val::Value(plan.sender_value),
            faulty,
            decisions: run.decisions[0].clone(),
        };
        if let Verdict::Violated(v) = check_degradable(&record) {
            step += 1;
            first = Some(FuzzViolation {
                step,
                step_desc: "batch model-check".into(),
                violation: format!("degradable agreement violated with f <= u: {v:?}"),
                trace: None,
            });
        }
    }
    ExecReport {
        steps: step,
        violation: first,
        decisions: run.decisions[0].clone(),
        verdict_checked,
    }
}

/// The simplification ladder: each candidate is `plan` with one knob
/// removed or silenced, in decreasing order of expected blast radius.
fn shrink_candidates(plan: &FuzzPlan) -> Vec<FuzzPlan> {
    let mut out = Vec::new();
    // Remove a fault-free bystander node entirely, remapping every
    // NodeId above it down by one — the biggest single simplification,
    // so it is tried first. Only legal while the shrunk cluster still
    // admits BYZ(m, u).
    if plan.n > MIN_N && 2 * plan.m + plan.u < plan.n - 1 {
        let remap = |id: NodeId, gone: usize| {
            if id.index() > gone {
                NodeId::new(id.index() - 1)
            } else {
                id
            }
        };
        for x in (0..plan.n).rev() {
            let node = NodeId::new(x);
            if node == plan.sender || plan.faults.contains_key(&node) {
                continue;
            }
            let mut p = plan.clone();
            p.n -= 1;
            p.sender = remap(p.sender, x);
            p.faults = p
                .faults
                .iter()
                .map(|(k, v)| (remap(*k, x), v.clone()))
                .collect();
            out.push(p);
        }
    }
    for node in plan.faults.keys() {
        let mut p = plan.clone();
        p.faults.remove(node);
        out.push(p);
    }
    for (node, spec) in &plan.faults {
        if *spec != FaultSpec::Static(0) {
            let mut p = plan.clone();
            p.faults.insert(*node, FaultSpec::Static(0));
            out.push(p);
        }
    }
    if plan.early_stop {
        let mut p = plan.clone();
        p.early_stop = false;
        out.push(p);
    }
    if plan.hot_edge_threshold.is_some() {
        let mut p = plan.clone();
        p.hot_edge_threshold = None;
        out.push(p);
    }
    if plan.drop_p > 0.0 {
        let mut p = plan.clone();
        p.drop_p = 0.0;
        out.push(p);
    }
    if plan.sender_value != 1 {
        let mut p = plan.clone();
        p.sender_value = 1;
        out.push(p);
    }
    if plan.seed != 0 {
        let mut p = plan.clone();
        p.seed = 0;
        out.push(p);
    }
    out
}

/// Greedily minimizes a failing plan: repeatedly applies the first
/// simplification that still fails, to a fixpoint. Returns the shrunk plan
/// and the number of candidate executions spent.
pub fn shrink(plan: &FuzzPlan, mutation: Option<Mutation>) -> (FuzzPlan, usize) {
    let mut current = plan.clone();
    let mut spent = 0usize;
    loop {
        let mut improved = false;
        for candidate in shrink_candidates(&current) {
            spent += 1;
            if run_plan(&candidate, mutation).violation.is_some() {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return (current, spent);
        }
    }
}

/// One fuzz failure: the original plan, its shrunk fixpoint, and the
/// divergence the shrunk plan still reproduces.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The trial index within the campaign.
    pub trial: usize,
    /// The plan as generated.
    pub plan: FuzzPlan,
    /// The minimized plan (still failing).
    pub shrunk: FuzzPlan,
    /// The shrunk plan's first divergent step.
    pub violation: FuzzViolation,
    /// Candidate executions the shrinker spent.
    pub shrink_iters: usize,
}

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed; trial `t` uses `SimRng::derive(seed, t)`.
    pub seed: u64,
    /// Number of executions.
    pub budget: usize,
    /// Cluster-size ceiling (inclusive).
    pub max_n: usize,
    /// Deliberate bug to inject into every execution (mutant gate).
    pub mutation: Option<Mutation>,
    /// Force [`FuzzPlan::early_stop`] on in every generated plan (the CI
    /// fuzz-smoke early-stop campaign), instead of the generator's coin.
    pub force_early_stop: bool,
    /// Additionally replay every 4th mutation-free trial through the
    /// batched service and the loopback TCP mesh, under the same
    /// referee (counted in [`FuzzOutcome::backend_executions`]).
    pub backends: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xF055_F0CC,
            budget: 200,
            max_n: DEFAULT_MAX_N,
            mutation: None,
            force_early_stop: false,
            backends: true,
        }
    }
}

/// Campaign outcome.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Executions actually performed (= budget unless the failure cap
    /// stopped the campaign early).
    pub executions: usize,
    /// Batched-service and TCP-mesh replays performed on top (zero
    /// unless [`FuzzConfig::backends`]).
    pub backend_executions: usize,
    /// Every failure found, shrunk.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzOutcome {
    /// Whether the campaign saw no divergence at all.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs one trial of a campaign: generate a plan from
/// `SimRng::derive(seed, trial)`-compatible `rng`, execute it, and shrink
/// on failure. Pure: campaigns are bit-identical however trials are
/// scheduled (E18 runs this under [`crate::SweepRunner`]).
pub fn fuzz_trial(
    trial: usize,
    mut rng: SimRng,
    max_n: usize,
    mutation: Option<Mutation>,
    force_early_stop: bool,
) -> Option<FuzzFailure> {
    let mut plan = FuzzPlan::generate(&mut rng, max_n);
    if force_early_stop {
        plan.early_stop = true;
    }
    let report = run_plan(&plan, mutation);
    report.violation.as_ref()?;
    let (shrunk, shrink_iters) = shrink(&plan, mutation);
    let violation = run_plan(&shrunk, mutation)
        .violation
        .expect("the shrinker only returns failing plans");
    Some(FuzzFailure {
        trial,
        plan,
        shrunk,
        violation,
        shrink_iters,
    })
}

/// Runs a whole campaign sequentially. Stops early once 8 failures are
/// collected (each is shrunk, which costs executions of its own).
pub fn fuzz(config: &FuzzConfig) -> FuzzOutcome {
    let mut failures = Vec::new();
    let mut executions = 0usize;
    let mut backend_executions = 0usize;
    for trial in 0..config.budget {
        executions += 1;
        let rng = SimRng::derive(config.seed, trial as u64);
        if let Some(failure) = fuzz_trial(
            trial,
            rng,
            config.max_n,
            config.mutation,
            config.force_early_stop,
        ) {
            failures.push(failure);
            if failures.len() >= 8 {
                break;
            }
        }
        if config.backends && config.mutation.is_none() && trial % 4 == 0 {
            // Same derivation, same plan — the backend replays exercise
            // the trial's exact shape.
            let mut rng = SimRng::derive(config.seed, trial as u64);
            let mut plan = FuzzPlan::generate(&mut rng, config.max_n);
            if config.force_early_stop {
                plan.early_stop = true;
            }
            for report in [
                run_plan_batch(&plan),
                run_plan_transport(&plan, TransportKind::Tcp),
            ] {
                backend_executions += 1;
                if let Some(violation) = report.violation {
                    failures.push(FuzzFailure {
                        trial,
                        plan: plan.clone(),
                        shrunk: plan.clone(),
                        violation,
                        shrink_iters: 0,
                    });
                }
            }
            if failures.len() >= 8 {
                break;
            }
        }
    }
    FuzzOutcome {
        executions,
        backend_executions,
        failures,
    }
}

/// Schema tag of repro files.
pub const REPRO_SCHEMA: &str = "dagree-fuzz-repro";
/// Version of the repro file format. v2 added the `trace` field: the
/// causal [`obs::TraceCtx`] of the first divergent step (`null` when the
/// step was not a delivery). v1 files still replay — the field is
/// optional on read.
pub const REPRO_VERSION: u64 = 2;

/// Renders a failure as a repro file: the minimized `(seed, plan)` pair
/// plus enough context to re-run it bit-identically.
pub fn repro_json(
    failure: &FuzzFailure,
    master_seed: u64,
    mutation: Option<Mutation>,
) -> JsonValue {
    JsonValue::Object(vec![
        ("schema".into(), REPRO_SCHEMA.into()),
        ("version".into(), REPRO_VERSION.into()),
        ("master_seed".into(), master_seed.into()),
        ("trial".into(), failure.trial.into()),
        (
            "mutation".into(),
            match mutation {
                Some(m) => m.name().into(),
                None => JsonValue::Null,
            },
        ),
        ("plan".into(), failure.shrunk.to_json()),
        ("original_plan".into(), failure.plan.to_json()),
        (
            "violation".into(),
            failure.violation.violation.as_str().into(),
        ),
        ("step".into(), failure.violation.step.into()),
        (
            "step_desc".into(),
            failure.violation.step_desc.as_str().into(),
        ),
        (
            "trace".into(),
            match &failure.violation.trace {
                Some(ctx) => ctx.to_json(),
                None => JsonValue::Null,
            },
        ),
        ("shrink_iters".into(), failure.shrink_iters.into()),
    ])
}

/// Writes a failure's repro file under `dir` (created if missing), named
/// `repro-<master_seed>-<trial>.json`. Returns the path written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_repro(
    dir: &FsPath,
    failure: &FuzzFailure,
    master_seed: u64,
    mutation: Option<Mutation>,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("repro-{master_seed:016x}-{}.json", failure.trial));
    std::fs::write(
        &path,
        repro_json(failure, master_seed, mutation).to_json_string(),
    )?;
    Ok(path)
}

/// What replaying a repro file produced.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The plan the repro file carried.
    pub plan: FuzzPlan,
    /// The mutation it was recorded under.
    pub mutation: Option<Mutation>,
    /// The divergence recorded in the file.
    pub recorded: String,
    /// The causal chain of the recorded first divergent step, when the
    /// repro carries one (format v2+; `None` for v1 files and
    /// non-delivery steps).
    pub recorded_trace: Option<obs::TraceCtx>,
    /// The fresh execution's report (its `violation` is the live first
    /// divergent step; `None` means the repro no longer reproduces).
    pub report: ExecReport,
}

/// Parses a repro file and re-runs its minimized plan.
///
/// # Errors
///
/// A message describing the parse failure or schema mismatch.
pub fn replay(text: &str) -> Result<ReplayOutcome, String> {
    let v = JsonValue::parse(text)?;
    match v.get("schema").and_then(JsonValue::as_str) {
        Some(REPRO_SCHEMA) => {}
        other => return Err(format!("not a {REPRO_SCHEMA} file (schema = {other:?})")),
    }
    let mutation = match v.get("mutation") {
        None | Some(JsonValue::Null) => None,
        Some(m) => Some(Mutation::from_name(
            m.as_str().ok_or("field `mutation` is not a string")?,
        )?),
    };
    let plan = FuzzPlan::from_json(v.get("plan").ok_or("missing field `plan`")?)?;
    let recorded = v
        .get("violation")
        .and_then(JsonValue::as_str)
        .unwrap_or("")
        .to_string();
    let recorded_trace = match v.get("trace") {
        None | Some(JsonValue::Null) => None,
        Some(t) => Some(obs::TraceCtx::from_json(t)?),
    };
    let report = run_plan(&plan, mutation);
    Ok(ReplayOutcome {
        plan,
        mutation,
        recorded,
        recorded_trace,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_plans_are_valid_and_reproducible() {
        for trial in 0..64u64 {
            let mut r1 = SimRng::derive(7, trial);
            let mut r2 = SimRng::derive(7, trial);
            let a = FuzzPlan::generate(&mut r1, DEFAULT_MAX_N);
            let b = FuzzPlan::generate(&mut r2, DEFAULT_MAX_N);
            assert_eq!(a, b);
            assert!((MIN_N..=DEFAULT_MAX_N).contains(&a.n));
            assert!(2 * a.m + a.u < a.n, "{a:?}");
            assert!(a.faults.len() <= a.u, "{a:?}");
            assert!(a.sender.index() < a.n);
            let _ = a.instance();
        }
    }

    #[test]
    fn plan_json_round_trips() {
        let mut rng = SimRng::seed(42);
        for _ in 0..32 {
            let plan = FuzzPlan::generate(&mut rng, DEFAULT_MAX_N);
            let text = plan.to_json().to_json_string();
            let back = FuzzPlan::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
            assert_eq!(back, plan);
        }
    }

    #[test]
    fn honest_plan_is_conformant() {
        let plan = FuzzPlan {
            n: 5,
            m: 1,
            u: 2,
            sender: NodeId::new(0),
            sender_value: 7,
            faults: BTreeMap::new(),
            drop_p: 0.0,
            hot_edge_threshold: None,
            seed: 3,
            early_stop: false,
        };
        let report = run_plan(&plan, None);
        assert_eq!(report.violation, None);
        assert!(report.verdict_checked);
        assert_eq!(report.decisions.len(), 4);
        for d in report.decisions.values() {
            assert_eq!(*d, Val::Value(7));
        }
    }

    #[test]
    fn a_fuzz_campaign_is_clean_and_deterministic() {
        let config = FuzzConfig {
            seed: 0xD06,
            budget: 48,
            max_n: 7,
            mutation: None,
            force_early_stop: false,
            backends: false,
        };
        let a = fuzz(&config);
        assert!(
            a.clean(),
            "unexpected violations: {:#?}",
            a.failures
                .iter()
                .map(|f| (&f.shrunk, &f.violation))
                .collect::<Vec<_>>()
        );
        assert_eq!(a.executions, 48);
        let b = fuzz(&config);
        assert_eq!(b.clean(), a.clean());
        assert_eq!(b.executions, a.executions);
    }

    #[test]
    fn the_seeded_mutant_is_caught_and_shrunk() {
        let config = FuzzConfig {
            seed: 0xBEEF,
            budget: 16,
            max_n: 6,
            mutation: Some(Mutation::SuppressRelay),
            force_early_stop: false,
            backends: false,
        };
        let outcome = fuzz(&config);
        assert!(!outcome.clean(), "relay suppression must be detected");
        let failure = &outcome.failures[0];
        assert!(
            failure.violation.violation.contains("failed to relay"),
            "{}",
            failure.violation
        );
        // The shrunk plan is no more complex than the original.
        assert!(failure.shrunk.faults.len() <= failure.plan.faults.len());
        assert!(failure.shrunk.drop_p <= failure.plan.drop_p);
    }

    #[test]
    fn repro_files_round_trip_and_replay() {
        let config = FuzzConfig {
            seed: 0xBEEF,
            budget: 8,
            max_n: 6,
            mutation: Some(Mutation::SuppressRelay),
            force_early_stop: false,
            backends: false,
        };
        let outcome = fuzz(&config);
        let failure = &outcome.failures[0];
        let text = repro_json(failure, config.seed, config.mutation).to_json_string();
        let replayed = replay(&text).unwrap();
        assert_eq!(replayed.plan, failure.shrunk);
        assert_eq!(replayed.mutation, Some(Mutation::SuppressRelay));
        let live = replayed.report.violation.expect("repro must still fail");
        assert_eq!(live, failure.violation, "divergent step is stable");
        // The causal chain recorded in the file (format v2) survives the
        // JSON round trip and matches the live re-execution's.
        assert_eq!(replayed.recorded_trace, failure.violation.trace);
        assert_eq!(replayed.recorded_trace, live.trace);
    }

    #[test]
    fn delivery_divergence_carries_its_causal_chain() {
        // A garbled relay out of an honest node is caught when the bogus
        // envelope is *delivered*, so its repro names the exact relay
        // path that first diverged.
        let config = FuzzConfig {
            seed: 0xCAFE,
            budget: 16,
            max_n: 6,
            mutation: Some(Mutation::WrongValueRelay),
            force_early_stop: false,
            backends: false,
        };
        let outcome = fuzz(&config);
        assert!(!outcome.clean());
        let traced = outcome
            .failures
            .iter()
            .find(|f| f.violation.trace.is_some())
            .expect("some failure diverges at a delivery");
        let ctx = traced.violation.trace.as_ref().unwrap();
        assert_eq!(ctx.instance, 0, "single-instance driver");
        assert!(!ctx.path.is_empty());
        assert_eq!(ctx.hop as usize, ctx.path.len());
        // The chain in the repro file is the same object.
        let text = repro_json(traced, config.seed, config.mutation).to_json_string();
        let v = JsonValue::parse(&text).unwrap();
        let back = obs::TraceCtx::from_json(v.get("trace").unwrap()).unwrap();
        assert_eq!(&back, ctx);
    }

    #[test]
    fn adaptive_and_crash_faults_stay_conformant() {
        // Online adversaries and churn crashes are *faults*: honest nodes
        // must still conform and (model-clean) decisions must still pass
        // the degradable verdict.
        let mut faults = BTreeMap::new();
        faults.insert(NodeId::new(2), FaultSpec::Adaptive(0));
        faults.insert(NodeId::new(4), FaultSpec::Crash { at_round: 1 });
        let plan = FuzzPlan {
            n: 7,
            m: 1,
            u: 4,
            sender: NodeId::new(0),
            sender_value: 9,
            faults,
            drop_p: 0.0,
            hot_edge_threshold: None,
            seed: 11,
            early_stop: false,
        };
        let report = run_plan(&plan, None);
        assert_eq!(report.violation, None, "{:?}", report.violation);
        assert!(report.verdict_checked);
    }

    #[test]
    fn chaos_plans_stay_conformant_but_skip_the_model_check() {
        let plan = FuzzPlan {
            n: 5,
            m: 1,
            u: 2,
            sender: NodeId::new(0),
            sender_value: 7,
            faults: BTreeMap::new(),
            drop_p: 0.2,
            hot_edge_threshold: Some(2),
            seed: 5,
            early_stop: false,
        };
        let report = run_plan(&plan, None);
        assert_eq!(report.violation, None, "{:?}", report.violation);
        assert!(!report.verdict_checked);
    }

    #[test]
    fn shrinking_reaches_a_fixpoint_on_a_mutant() {
        let mut rng = SimRng::derive(0xBEEF, 0);
        let plan = FuzzPlan::generate(&mut rng, 6);
        if run_plan(&plan, Some(Mutation::SuppressRelay))
            .violation
            .is_none()
        {
            // This seed's first trial happens to be immune (e.g. the only
            // honest sends are dropped); the campaign-level test covers
            // detection. Nothing to shrink here.
            return;
        }
        let (shrunk, spent) = shrink(&plan, Some(Mutation::SuppressRelay));
        assert!(run_plan(&shrunk, Some(Mutation::SuppressRelay))
            .violation
            .is_some());
        // A fixpoint: no further simplification of the shrunk plan fails.
        for candidate in shrink_candidates(&shrunk) {
            assert!(
                run_plan(&candidate, Some(Mutation::SuppressRelay))
                    .violation
                    .is_none(),
                "shrinker stopped before the fixpoint at {candidate:?}"
            );
        }
        assert!(spent >= shrink_candidates(&shrunk).len());
    }

    #[test]
    fn every_mutant_in_the_battery_is_caught() {
        for mutation in ALL_MUTATIONS {
            let config = FuzzConfig {
                seed: 7,
                budget: 16,
                max_n: 6,
                mutation: Some(mutation),
                force_early_stop: false,
                backends: false,
            };
            let outcome = fuzz(&config);
            assert!(
                !outcome.clean(),
                "{} must be detected by the spec checker",
                mutation.name()
            );
            let failure = &outcome.failures[0];
            // The shrunk plan still reproduces.
            assert!(
                run_plan(&failure.shrunk, Some(mutation))
                    .violation
                    .is_some(),
                "{}: shrunk plan no longer fails",
                mutation.name()
            );
        }
    }

    #[test]
    fn honest_early_stop_plan_is_conformant() {
        let plan = FuzzPlan {
            n: 5,
            m: 1,
            u: 2,
            sender: NodeId::new(0),
            sender_value: 7,
            faults: BTreeMap::new(),
            drop_p: 0.0,
            hot_edge_threshold: None,
            seed: 3,
            early_stop: true,
        };
        let report = run_plan(&plan, None);
        assert_eq!(report.violation, None, "{:?}", report.violation);
        assert!(report.verdict_checked);
        for d in report.decisions.values() {
            assert_eq!(*d, Val::Value(7));
        }
    }

    #[test]
    fn backend_replays_match_the_spec_on_an_honest_plan() {
        for early_stop in [false, true] {
            let plan = FuzzPlan {
                n: 5,
                m: 1,
                u: 2,
                sender: NodeId::new(1),
                sender_value: 4,
                faults: BTreeMap::new(),
                drop_p: 0.0,
                hot_edge_threshold: None,
                seed: 9,
                early_stop,
            };
            let batch = run_plan_batch(&plan);
            assert_eq!(batch.violation, None, "batch: {:?}", batch.violation);
            let sim = run_plan_transport(&plan, TransportKind::Sim);
            assert_eq!(sim.violation, None, "sim: {:?}", sim.violation);
        }
    }

    #[test]
    fn a_backend_campaign_is_clean_and_counts_replays() {
        let config = FuzzConfig {
            seed: 0xD06,
            budget: 8,
            max_n: 6,
            mutation: None,
            force_early_stop: true,
            backends: true,
        };
        let outcome = fuzz(&config);
        assert!(
            outcome.clean(),
            "unexpected violations: {:#?}",
            outcome
                .failures
                .iter()
                .map(|f| (&f.shrunk, &f.violation))
                .collect::<Vec<_>>()
        );
        assert_eq!(outcome.executions, 8);
        // Trials 0 and 4 replay through the batched service and the TCP mesh.
        assert_eq!(outcome.backend_executions, 4);
    }

    #[test]
    fn the_shrinker_can_reduce_n() {
        let mut faults = BTreeMap::new();
        faults.insert(NodeId::new(5), FaultSpec::Static(0));
        let plan = FuzzPlan {
            n: 7,
            m: 1,
            u: 3,
            sender: NodeId::new(0),
            sender_value: 7,
            faults,
            drop_p: 0.0,
            hot_edge_threshold: None,
            seed: 1,
            early_stop: false,
        };
        let reduced: Vec<_> = shrink_candidates(&plan)
            .into_iter()
            .filter(|c| c.n < plan.n)
            .collect();
        assert!(!reduced.is_empty(), "n-reduction must produce candidates");
        for c in &reduced {
            assert!(2 * c.m + c.u < c.n, "shape invariant broken: {c:?}");
            assert!(c.sender.index() < c.n, "sender out of range: {c:?}");
            for id in c.faults.keys() {
                assert!(id.index() < c.n, "fault id out of range: {c:?}");
            }
            assert_eq!(c.faults.len(), plan.faults.len(), "faults dropped: {c:?}");
        }
    }

    #[test]
    fn mutation_names_round_trip() {
        assert_eq!(
            Mutation::from_name(Mutation::SuppressRelay.name()),
            Ok(Mutation::SuppressRelay)
        );
        assert!(Mutation::from_name("nope").is_err());
    }
}
