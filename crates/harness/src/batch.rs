//! Batched scenarios: many agreement slots over one [`Scenario`] network.
//!
//! A [`BatchScenario`] wraps a base [`Scenario`] (which contributes the
//! node count, fault set, link-fault plan / chaos config, and master
//! seed) with a list of `(sender, value)` slots, and executes all slots
//! concurrently through the arena-backed batch service
//! ([`degradable::run_batch`]). The two common shapes have constructors:
//!
//! * [`BatchScenario::stream`] — K slots from the base scenario's sender
//!   (a replicated-log / sensor-stream workload; one shared arena).
//! * [`BatchScenario::interactive_consistency`] — one slot per node
//!   (the IC workload of the paper's Section 6; one arena per sender).
//!
//! [`BatchScenario::run_sequential`] executes the same slots one at a
//! time through [`degradable::run_protocol_with`] under the same link
//! plan — the baseline for experiment E16. With healthy links or a
//! deterministic plan (cuts, `p = 1.0` duplication) the sequential
//! decisions are bit-identical to the batch; under probabilistic chaos
//! the two draw the shared link RNG in different orders, so identity is
//! instead asserted between the batch arena fold and per-receiver
//! [`degradable::EigView`] folds of the same observations
//! (`degradable::run_batch_full`).

use crate::scenario::{Scenario, ScenarioError};
use degradable::{
    run_batch_observed, run_protocol_with, BatchInstance, BatchRun, ByzInstance, ProtocolRun, Val,
};
use obs::Obs;
use simnet::NodeId;

/// A batch of agreement slots executed over one scenario's network.
#[derive(Debug, Clone)]
pub struct BatchScenario {
    /// The base scenario: `(n, m, u)`, fault strategies, topology,
    /// link-fault plan and chaos config, master seed. The base's own
    /// `sender`/`sender_value` are *not* implicitly a slot — `slots`
    /// alone defines the workload.
    pub base: Scenario,
    /// `(sender, value)` per slot, in execution order.
    pub slots: Vec<(NodeId, Val)>,
}

impl BatchScenario {
    /// K-slot stream: every value sent by the base scenario's sender.
    #[must_use]
    pub fn stream(base: Scenario, values: Vec<Val>) -> Self {
        let sender = base.sender;
        Self {
            slots: values.into_iter().map(|v| (sender, v)).collect(),
            base,
        }
    }

    /// Interactive consistency: slot `i` sent by node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != base.n`.
    #[must_use]
    pub fn interactive_consistency(base: Scenario, values: Vec<Val>) -> Self {
        assert_eq!(values.len(), base.n, "IC needs one value per node");
        Self {
            slots: values
                .into_iter()
                .enumerate()
                .map(|(i, v)| (NodeId::new(i), v))
                .collect(),
            base,
        }
    }

    /// The slots as batch-service instances.
    #[must_use]
    pub fn instances(&self) -> Vec<BatchInstance<u64>> {
        self.slots
            .iter()
            .map(|(sender, value)| BatchInstance {
                sender: *sender,
                value: *value,
            })
            .collect()
    }

    /// Checks parameters, topology (the batch service multiplexes the
    /// fully-connected protocol, so the base must be complete), and every
    /// distinct slot sender against the instance bounds.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let params = self.base.params()?;
        if !self.base.is_complete_topology() {
            return Err(ScenarioError::TopologyUnsupported {
                topology: self.base.topology.name().to_string(),
                executor: "batch",
            });
        }
        for (sender, _) in &self.slots {
            ByzInstance::new(self.base.n, params, *sender).map_err(ScenarioError::Instance)?;
        }
        Ok(())
    }

    /// Runs every slot concurrently through the arena-backed batch
    /// service, with the base scenario's effective link plan installed.
    pub fn run(&self) -> Result<BatchRun<u64>, ScenarioError> {
        self.run_observed(1, &mut Obs::disabled())
    }

    /// [`BatchScenario::run`] with a resolve worker count and an obs
    /// recorder (decisions are worker-count-independent).
    pub fn run_observed(
        &self,
        workers: usize,
        obs: &mut Obs,
    ) -> Result<BatchRun<u64>, ScenarioError> {
        self.validate()?;
        let params = self.base.params()?;
        let plan = self.base.effective_link_plan();
        let (run, ..) = run_batch_observed(
            params,
            self.base.n,
            &self.instances(),
            &self.base.strategies,
            self.base.master_seed,
            workers,
            |e| match plan {
                Some(plan) => e.with_link_faults(plan),
                None => e,
            },
            obs,
        );
        Ok(run)
    }

    /// The one-at-a-time baseline: each slot as its own
    /// [`run_protocol_with`] execution under the same link plan and the
    /// same master seed.
    pub fn run_sequential(&self) -> Result<Vec<ProtocolRun<u64>>, ScenarioError> {
        self.validate()?;
        let params = self.base.params()?;
        self.slots
            .iter()
            .map(|(sender, value)| {
                let instance = ByzInstance::new(self.base.n, params, *sender)
                    .map_err(ScenarioError::Instance)?;
                let plan = self.base.effective_link_plan();
                Ok(run_protocol_with(
                    &instance,
                    value,
                    &self.base.strategies,
                    self.base.master_seed,
                    |e| match plan {
                        Some(plan) => e.with_link_faults(plan),
                        None => e,
                    },
                ))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ChaosConfig;
    use degradable::Strategy;
    use simnet::{SimRng, Topology};

    fn base() -> Scenario {
        let mut s = Scenario::new(5, 1, 2);
        s.strategies
            .insert(NodeId::new(3), Strategy::ConstantLie(Val::Value(9)));
        s.master_seed = 0xBA7C;
        s
    }

    fn vals(k: usize) -> Vec<Val> {
        (0..k).map(|i| Val::Value(100 + i as u64)).collect()
    }

    #[test]
    fn stream_batch_matches_sequential_on_healthy_links() {
        let batch = BatchScenario::stream(base(), vals(6));
        let run = batch.run().expect("valid");
        assert_eq!(run.arena_builds, 1, "one sender, one arena");
        let seq = batch.run_sequential().expect("valid");
        for (k, solo) in seq.iter().enumerate() {
            assert_eq!(run.decisions[k], solo.decisions, "slot {k}");
        }
        assert_eq!(
            run.net.sent,
            seq.iter().map(|r| r.net.sent).sum::<usize>(),
            "multiplexing sends exactly the union of the solo traffic"
        );
    }

    #[test]
    fn ic_batch_builds_one_arena_per_sender() {
        let batch = BatchScenario::interactive_consistency(base(), vals(5));
        let run = batch.run().expect("valid");
        assert_eq!(run.arena_builds, 5);
        let seq = batch.run_sequential().expect("valid");
        for (k, solo) in seq.iter().enumerate() {
            assert_eq!(run.decisions[k], solo.decisions, "slot {k}");
        }
    }

    #[test]
    fn chaotic_batch_is_worker_count_invariant() {
        let mut b = base();
        b.chaos = Some(ChaosConfig {
            drop_p: 0.2,
            duplicate_p: 0.2,
            reorder_window: 2,
            corrupt_p: 0.1,
        });
        let mut rng = SimRng::derive(b.master_seed, 0);
        let b = b.randomize_faults(1, &mut rng);
        let batch = BatchScenario::stream(b, vals(4));
        let one = batch.run_observed(1, &mut Obs::disabled()).expect("valid");
        let eight = batch.run_observed(8, &mut Obs::disabled()).expect("valid");
        assert_eq!(one.decisions, eight.decisions);
        assert_eq!(one.net.eig, eight.net.eig);
        assert!(one.net.link_fault_injections() > 0);
    }

    #[test]
    fn sparse_topology_is_rejected() {
        let mut s = base();
        s.topology = Topology::ring(5);
        let batch = BatchScenario::stream(s, vals(2));
        assert!(matches!(
            batch.run(),
            Err(ScenarioError::TopologyUnsupported {
                executor: "batch",
                ..
            })
        ));
    }

    #[test]
    fn out_of_range_slot_sender_is_rejected() {
        let mut batch = BatchScenario::stream(base(), vals(2));
        batch.slots.push((NodeId::new(9), Val::Value(1)));
        assert!(matches!(batch.run(), Err(ScenarioError::Instance(_))));
    }
}
