//! Declarative service-level objectives evaluated against
//! [`obs::Registry`] snapshots.
//!
//! An [`SloSpec`] is a named list of objectives over the deterministic
//! quantities an experiment records in its registry — latency-quantile
//! bounds on histograms, ceilings and floors on counters, minimum ratios
//! between counters, and "must be zero" invariants. Evaluating a spec
//! ([`SloSpec::evaluate`]) produces an [`SloReport`]: one pass/fail row
//! per objective plus an overall verdict, which lands in the report JSON
//! as the schema-v6 `slo` section (see [`crate::report`]) so bench
//! binaries can gate on it (`dagree`'s CI does exactly this for E20).
//!
//! Everything here is integer arithmetic over registry contents:
//! quantiles compare in `×100` fixed point ([`obs::Histogram::quantile_x100`])
//! and ratios cross-multiply, so an SLO verdict is bit-identical across
//! worker counts and reruns whenever the registry is — the same
//! determinism contract the rest of the reporting stack keeps.
//!
//! Missing instrumentation fails closed: an objective over a histogram
//! that was never observed is a **violation**, not a vacuous pass, because
//! in a gating context "no data" almost always means the recorder was
//! accidentally disabled.

use crate::report::JsonValue;

/// One objective over a registry snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SloObjective {
    /// The `q`-quantile estimate of histogram `hist` must be ≤ `bound`
    /// (value units; the comparison happens in ×100 fixed point).
    /// Fails if the histogram is absent or empty.
    QuantileAtMost {
        /// Histogram name in the registry.
        hist: String,
        /// Quantile in ×100 fixed point (50 = p50, 99 = p99).
        q_x100: u64,
        /// Inclusive upper bound, in the histogram's value units.
        bound: u64,
    },
    /// Counter `counter` must be ≤ `bound`. An absent counter reads 0.
    CounterAtMost {
        /// Counter name in the registry.
        counter: String,
        /// Inclusive upper bound.
        bound: u64,
    },
    /// Counter `counter` must be ≥ `bound`. An absent counter reads 0.
    CounterAtLeast {
        /// Counter name in the registry.
        counter: String,
        /// Inclusive lower bound.
        bound: u64,
    },
    /// `num / den ≥ min_x100 / 100`, evaluated as
    /// `num * 100 ≥ den * min_x100` (no floats). Fails when `den` is 0:
    /// a ratio floor over an empty denominator means the instrumentation
    /// the spec assumed never ran.
    RatioAtLeast {
        /// Numerator counter name.
        num: String,
        /// Denominator counter name.
        den: String,
        /// Minimum ratio in ×100 fixed point (10 = 10%).
        min_x100: u64,
    },
    /// Counter `counter` must be exactly 0 (absent counts as 0). The
    /// shape for "zero spec violations" invariants.
    CounterZero {
        /// Counter name in the registry.
        counter: String,
    },
}

impl SloObjective {
    /// A stable, human-readable label for report rows
    /// (e.g. `p99(svc.instance.logical) <= 4096`).
    pub fn label(&self) -> String {
        match self {
            SloObjective::QuantileAtMost {
                hist,
                q_x100,
                bound,
            } => {
                format!("p{q_x100}({hist}) <= {bound}")
            }
            SloObjective::CounterAtMost { counter, bound } => format!("{counter} <= {bound}"),
            SloObjective::CounterAtLeast { counter, bound } => format!("{counter} >= {bound}"),
            SloObjective::RatioAtLeast { num, den, min_x100 } => {
                format!("{num}/{den} >= {min_x100}%")
            }
            SloObjective::CounterZero { counter } => format!("{counter} == 0"),
        }
    }

    /// Evaluates this objective against `registry`, returning the
    /// observed value (`None` when the quantity does not exist) and the
    /// verdict.
    pub fn evaluate(&self, registry: &obs::Registry) -> SloResult {
        let (observed, pass) = match self {
            SloObjective::QuantileAtMost {
                hist,
                q_x100,
                bound,
            } => {
                let q = *q_x100 as f64 / 100.0;
                match registry.histogram(hist).and_then(|h| h.quantile_x100(q)) {
                    Some(est_x100) => (Some(est_x100), est_x100 <= bound * 100),
                    None => (None, false),
                }
            }
            SloObjective::CounterAtMost { counter, bound } => {
                let v = registry.counter(counter);
                (Some(v), v <= *bound)
            }
            SloObjective::CounterAtLeast { counter, bound } => {
                let v = registry.counter(counter);
                (Some(v), v >= *bound)
            }
            SloObjective::RatioAtLeast { num, den, min_x100 } => {
                let n = registry.counter(num);
                let d = registry.counter(den);
                // Ratio in ×100 fixed point, floor-rounded; the pass
                // verdict cross-multiplies so it never rounds at all. A
                // zero denominator fails closed.
                match (n * 100).checked_div(d) {
                    Some(ratio) => (Some(ratio), n * 100 >= d * min_x100),
                    None => (None, false),
                }
            }
            SloObjective::CounterZero { counter } => {
                let v = registry.counter(counter);
                (Some(v), v == 0)
            }
        };
        SloResult {
            label: self.label(),
            observed,
            pass,
        }
    }
}

/// A named bundle of objectives — the declarative SLO contract one
/// experiment (or one fault regime within it) promises to meet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SloSpec {
    name: String,
    objectives: Vec<SloObjective>,
}

impl SloSpec {
    /// An empty spec with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SloSpec {
            name: name.into(),
            objectives: Vec::new(),
        }
    }

    /// The spec's name (becomes the `name` field of the `slo` section).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The objectives in declaration order.
    pub fn objectives(&self) -> &[SloObjective] {
        &self.objectives
    }

    /// Adds an arbitrary objective.
    pub fn objective(mut self, o: SloObjective) -> Self {
        self.objectives.push(o);
        self
    }

    /// p50 of `hist` must be ≤ `bound` (value units).
    pub fn p50_at_most(self, hist: impl Into<String>, bound: u64) -> Self {
        self.objective(SloObjective::QuantileAtMost {
            hist: hist.into(),
            q_x100: 50,
            bound,
        })
    }

    /// p99 of `hist` must be ≤ `bound` (value units).
    pub fn p99_at_most(self, hist: impl Into<String>, bound: u64) -> Self {
        self.objective(SloObjective::QuantileAtMost {
            hist: hist.into(),
            q_x100: 99,
            bound,
        })
    }

    /// Counter ceiling: `counter ≤ bound` (e.g. max messages).
    pub fn counter_at_most(self, counter: impl Into<String>, bound: u64) -> Self {
        self.objective(SloObjective::CounterAtMost {
            counter: counter.into(),
            bound,
        })
    }

    /// Counter floor: `counter ≥ bound`.
    pub fn counter_at_least(self, counter: impl Into<String>, bound: u64) -> Self {
        self.objective(SloObjective::CounterAtLeast {
            counter: counter.into(),
            bound,
        })
    }

    /// Ratio floor: `num/den ≥ min_x100 %` (e.g. minimum pruning ratio).
    pub fn ratio_at_least(
        self,
        num: impl Into<String>,
        den: impl Into<String>,
        min_x100: u64,
    ) -> Self {
        self.objective(SloObjective::RatioAtLeast {
            num: num.into(),
            den: den.into(),
            min_x100,
        })
    }

    /// Invariant: `counter == 0` (e.g. zero spec violations).
    pub fn zero(self, counter: impl Into<String>) -> Self {
        self.objective(SloObjective::CounterZero {
            counter: counter.into(),
        })
    }

    /// Evaluates every objective against `registry`.
    pub fn evaluate(&self, registry: &obs::Registry) -> SloReport {
        SloReport {
            name: self.name.clone(),
            results: self
                .objectives
                .iter()
                .map(|o| o.evaluate(registry))
                .collect(),
        }
    }
}

/// One evaluated objective: its label, what the registry held, and the
/// verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloResult {
    /// The objective's [`SloObjective::label`].
    pub label: String,
    /// The observed value the bound compared against — a counter value, a
    /// quantile estimate in ×100 fixed point, or a ratio in ×100 fixed
    /// point. `None` when the quantity was absent (which fails).
    pub observed: Option<u64>,
    /// Whether the objective held.
    pub pass: bool,
}

/// The outcome of evaluating an [`SloSpec`]: per-objective rows plus an
/// overall verdict. Serializes as the schema-v6 `slo` report section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloReport {
    /// The spec's name.
    pub name: String,
    /// Per-objective outcomes, in declaration order.
    pub results: Vec<SloResult>,
}

impl SloReport {
    /// `true` when every objective held. An empty spec passes vacuously.
    pub fn passed(&self) -> bool {
        self.results.iter().all(|r| r.pass)
    }

    /// The failing objectives' labels, for error messages and gate logs.
    pub fn failures(&self) -> Vec<&str> {
        self.results
            .iter()
            .filter(|r| !r.pass)
            .map(|r| r.label.as_str())
            .collect()
    }

    /// The section as JSON:
    /// `{"name":...,"passed":bool,"objectives":[{"objective":...,"observed":...,"pass":bool}]}`.
    /// Absent observations serialize as the string `"absent"` so strict
    /// integer consumers notice them.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("name".into(), self.name.as_str().into()),
            ("passed".into(), JsonValue::Bool(self.passed())),
            (
                "objectives".into(),
                JsonValue::Array(
                    self.results
                        .iter()
                        .map(|r| {
                            JsonValue::Object(vec![
                                ("objective".into(), r.label.as_str().into()),
                                (
                                    "observed".into(),
                                    match r.observed {
                                        Some(v) => JsonValue::UInt(v),
                                        None => "absent".into(),
                                    },
                                ),
                                ("pass".into(), JsonValue::Bool(r.pass)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> obs::Registry {
        let mut reg = obs::Registry::new();
        reg.add("net.sent", 120);
        reg.add("eig.subtrees_pruned", 30);
        reg.add("eig.arena_nodes", 100);
        for v in [1u64, 2, 3, 4, 100] {
            reg.observe("lat", &[1, 2, 4, 8, 16, 128], v);
        }
        reg
    }

    #[test]
    fn objectives_evaluate_against_the_registry() {
        let reg = registry();
        let report = SloSpec::new("smoke")
            .p50_at_most("lat", 4)
            .p99_at_most("lat", 128)
            .counter_at_most("net.sent", 200)
            .counter_at_least("net.sent", 100)
            .ratio_at_least("eig.subtrees_pruned", "eig.arena_nodes", 25)
            .zero("spec.violations")
            .evaluate(&reg);
        assert!(report.passed(), "{:?}", report.failures());
        assert_eq!(report.results.len(), 6);
        // Counters observe their raw value; ratios observe ×100.
        assert_eq!(report.results[2].observed, Some(120));
        assert_eq!(report.results[4].observed, Some(30));
    }

    #[test]
    fn each_objective_kind_can_fail() {
        let reg = registry();
        for spec in [
            SloSpec::new("q").p50_at_most("lat", 1),
            SloSpec::new("max").counter_at_most("net.sent", 10),
            SloSpec::new("min").counter_at_least("net.sent", 1000),
            SloSpec::new("ratio").ratio_at_least("eig.subtrees_pruned", "eig.arena_nodes", 31),
            SloSpec::new("zero").zero("net.sent"),
        ] {
            let report = spec.evaluate(&reg);
            assert!(!report.passed(), "{} should fail", report.name);
            assert_eq!(report.failures().len(), 1);
        }
    }

    #[test]
    fn missing_instrumentation_fails_closed() {
        let reg = obs::Registry::new();
        let report = SloSpec::new("absent")
            .p99_at_most("no.such.hist", 1_000_000)
            .ratio_at_least("a", "b", 1)
            .evaluate(&reg);
        assert!(!report.passed());
        assert_eq!(report.results[0].observed, None);
        assert_eq!(report.results[1].observed, None);
        // But absent counters read 0, so ceilings and zero-invariants
        // over them pass.
        assert!(SloSpec::new("ok")
            .counter_at_most("no.such.counter", 5)
            .zero("no.such.counter")
            .evaluate(&reg)
            .passed());
    }

    #[test]
    fn report_serializes_with_verdict_and_absent_marker() {
        let reg = registry();
        let json = SloSpec::new("gate")
            .zero("net.sent")
            .p50_at_most("missing", 1)
            .evaluate(&reg)
            .to_json()
            .to_json_string();
        assert_eq!(
            json,
            "{\"name\":\"gate\",\"passed\":false,\"objectives\":[\
             {\"objective\":\"net.sent == 0\",\"observed\":120,\"pass\":false},\
             {\"objective\":\"p50(missing) <= 1\",\"observed\":\"absent\",\"pass\":false}]}"
        );
    }

    #[test]
    fn verdicts_are_integer_exact_at_the_boundary() {
        let mut reg = obs::Registry::new();
        reg.add("num", 1);
        reg.add("den", 3);
        // 1/3 ≥ 33%? cross-multiplied: 100 ≥ 99 — yes, with no float
        // round-trip to get it wrong. 1/3 ≥ 34%: 100 < 102 — no.
        assert!(SloSpec::new("b")
            .ratio_at_least("num", "den", 33)
            .evaluate(&reg)
            .passed());
        assert!(!SloSpec::new("b")
            .ratio_at_least("num", "den", 34)
            .evaluate(&reg)
            .passed());
    }
}
