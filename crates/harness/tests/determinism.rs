//! The harness's central promise, proved end to end: a sweep's **report**
//! is a pure function of the master seed — the worker count changes only
//! wall-clock time, never a byte of the JSON.

use degradable::check_degradable;
use harness::report::Table;
use harness::{
    ChaosConfig, Executor, ProtocolExecutor, ReferenceExecutor, Report, Scenario, SweepRunner,
};

/// Runs a small randomized sweep and renders it as a full JSON report.
fn sweep_report(workers: usize) -> String {
    let runner = SweepRunner::new(workers);
    let records = runner.run(0xD1CE, 64, |trial, mut rng| {
        let f = (trial % 3).min(2);
        let scenario = Scenario::new(6, 1, 3)
            .with_master_seed(rng.below(u64::MAX))
            .randomize_faults(f, &mut rng);
        let record = ReferenceExecutor
            .execute(&scenario)
            .expect("valid scenario");
        (f, check_degradable(&record).is_satisfied())
    });

    let mut table = Table::new("per-trial verdicts", &["trial", "f", "satisfied"]);
    let mut satisfied = 0usize;
    for (trial, (f, ok)) in records.iter().enumerate() {
        satisfied += usize::from(*ok);
        table.push_row(vec![trial.to_string(), f.to_string(), ok.to_string()]);
    }
    let mut report = Report::new("determinism-probe");
    report
        .set_meta("master_seed", 0xD1CEu64)
        .set_meta("trials", records.len())
        .set_metric("satisfied", satisfied)
        .add_table(table);
    report.to_json_string()
}

#[test]
fn report_json_is_identical_for_1_2_and_8_workers() {
    let reference = sweep_report(1);
    assert_eq!(sweep_report(2), reference, "2 workers diverged from 1");
    assert_eq!(sweep_report(8), reference, "8 workers diverged from 1");
}

/// The same promise with link-level chaos in the loop: chaos draws come
/// from the trial-derived seed only, so injected-fault counts and
/// decisions are equally worker-count independent.
fn chaotic_sweep_report(workers: usize) -> String {
    let runner = SweepRunner::new(workers);
    let results = runner.run(0xCA05, 24, |trial, mut rng| {
        let scenario = Scenario::new(6, 1, 2)
            .with_master_seed(rng.below(u64::MAX))
            .randomize_faults(trial % 2, &mut rng)
            .with_chaos(ChaosConfig {
                drop_p: 0.1,
                duplicate_p: 0.4,
                reorder_window: 2,
                corrupt_p: 0.1,
            });
        let (record, net) = ProtocolExecutor
            .execute_detailed(&scenario)
            .expect("valid scenario");
        (
            net.link_fault_injections(),
            check_degradable(&record).is_satisfied(),
        )
    });

    let mut table = Table::new("per-trial chaos", &["trial", "injected", "satisfied"]);
    let mut injected_total = 0usize;
    for (trial, (injected, ok)) in results.iter().enumerate() {
        injected_total += injected;
        table.push_row(vec![
            trial.to_string(),
            injected.to_string(),
            ok.to_string(),
        ]);
    }
    let mut report = Report::new("determinism-probe-chaos");
    report
        .set_meta("master_seed", 0xCA05u64)
        .set_meta("trials", results.len())
        .set_metric("injected_faults_total", injected_total)
        .add_table(table);
    report.to_json_string()
}

#[test]
fn chaotic_report_json_is_identical_for_1_2_and_8_workers() {
    let reference = chaotic_sweep_report(1);
    assert!(reference.contains("injected_faults_total"));
    // Chaos must actually fire, otherwise this proves nothing.
    assert!(!reference.contains("\"injected_faults_total\":0"));
    assert_eq!(chaotic_sweep_report(2), reference, "2 workers diverged");
    assert_eq!(chaotic_sweep_report(8), reference, "8 workers diverged");
}

#[test]
fn reports_change_when_the_master_seed_does() {
    // Guard against the degenerate way to pass the test above: the sweep
    // must actually depend on its randomness.
    let a = SweepRunner::single_threaded().run(1, 16, |_, mut rng| rng.below(u64::MAX));
    let b = SweepRunner::single_threaded().run(2, 16, |_, mut rng| rng.below(u64::MAX));
    assert_ne!(a, b);
}
