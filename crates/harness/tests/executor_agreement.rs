//! Property test: the two [`Executor`] implementations are equivalent on
//! random scenarios — same decisions, same fault set, same verdict — when
//! driven through the trait object interface the sweeps use.

use degradable::check_degradable;
use harness::{Executor, ProtocolExecutor, ReferenceExecutor, Scenario};
use proptest::prelude::*;
use simnet::SimRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random (n, m, u, fault count, strategies): reference and protocol
    /// executors produce identical records.
    #[test]
    fn executors_agree_on_random_scenarios(
        m in 0usize..3,
        extra_u in 0usize..3,
        extra_n in 0usize..2,
        f_raw in 0usize..5,
        seed in 0u64..1_000_000,
    ) {
        let u = (m + extra_u).max(1);
        let n = 2 * m + u + 1 + extra_n;
        let f = f_raw.min(u);
        let mut rng = SimRng::seed(seed);
        let scenario = Scenario::new(n, m, u)
            .with_master_seed(seed)
            .randomize_faults(f, &mut rng);

        let executors: [&dyn Executor; 2] = [&ReferenceExecutor, &ProtocolExecutor];
        let a = executors[0].execute(&scenario);
        let b = executors[1].execute(&scenario);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.decisions, &b.decisions);
                prop_assert_eq!(&a.faulty, &b.faulty);
                prop_assert_eq!(
                    check_degradable(&a).is_satisfied(),
                    check_degradable(&b).is_satisfied()
                );
            }
            (a, b) => {
                // Both executors must reject the same scenarios.
                prop_assert!(a.is_err() && b.is_err(), "only one executor failed");
            }
        }
    }

    /// The protocol executor is a pure function of the scenario, including
    /// its master seed.
    #[test]
    fn protocol_executor_is_seed_deterministic(
        seed in 0u64..1_000_000,
        f in 0usize..3,
    ) {
        let mut rng = SimRng::seed(seed);
        let scenario = Scenario::new(6, 1, 3)
            .with_master_seed(seed)
            .randomize_faults(f, &mut rng);
        let a = ProtocolExecutor.execute(&scenario).expect("valid");
        let b = ProtocolExecutor.execute(&scenario).expect("valid");
        prop_assert_eq!(a.decisions, b.decisions);
    }
}
