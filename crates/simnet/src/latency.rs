//! Per-message latency models and round deadlines.
//!
//! The paper's synchronous model assumes the absence of a message is
//! detectable, which in practice means a round deadline (timeout). Section 6
//! observes that when clock synchronization degrades (more than `m` faulty
//! nodes), a fault-free node may *falsely* time out a message from another
//! fault-free node — and that algorithm BYZ remains correct under this
//! relaxation. [`LatencyModel`] plus [`crate::engine::RoundEngine`]'s
//! deadline reproduce exactly that failure mode: a message whose sampled
//! latency exceeds the deadline is treated as absent by the receiver.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Distribution of message latencies, in abstract time units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LatencyModel {
    /// All messages arrive instantly (never late). The paper's base model.
    #[default]
    Zero,
    /// Every message takes exactly `units`.
    Fixed(u64),
    /// Uniform in `[lo, hi]` (inclusive).
    Uniform {
        /// Minimum latency.
        lo: u64,
        /// Maximum latency.
        hi: u64,
    },
    /// Mostly `base`, but with probability `spike_p` the message takes
    /// `base + spike` instead — a simple heavy-tail used to trigger
    /// occasional timeouts between fault-free nodes.
    Spike {
        /// Common-case latency.
        base: u64,
        /// Probability of a slow message.
        spike_p: f64,
        /// Additional latency of a slow message.
        spike: u64,
    },
}

impl LatencyModel {
    /// Samples a latency for one message.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        match *self {
            LatencyModel::Zero => 0,
            LatencyModel::Fixed(units) => units,
            LatencyModel::Uniform { lo, hi } => {
                debug_assert!(lo <= hi, "uniform bounds inverted");
                lo + rng.below(hi - lo + 1)
            }
            LatencyModel::Spike {
                base,
                spike_p,
                spike,
            } => {
                if rng.chance(spike_p) {
                    base + spike
                } else {
                    base
                }
            }
        }
    }

    /// The largest latency this model can produce (used to pick safe
    /// deadlines).
    pub fn worst_case(&self) -> u64 {
        match *self {
            LatencyModel::Zero => 0,
            LatencyModel::Fixed(units) => units,
            LatencyModel::Uniform { hi, .. } => hi,
            LatencyModel::Spike { base, spike, .. } => base + spike,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_always_zero() {
        let mut rng = SimRng::seed(1);
        assert_eq!(LatencyModel::Zero.sample(&mut rng), 0);
        assert_eq!(LatencyModel::Zero.worst_case(), 0);
    }

    #[test]
    fn fixed_is_constant() {
        let mut rng = SimRng::seed(1);
        let m = LatencyModel::Fixed(17);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), 17);
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = SimRng::seed(2);
        let m = LatencyModel::Uniform { lo: 3, hi: 9 };
        for _ in 0..500 {
            let v = m.sample(&mut rng);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(m.worst_case(), 9);
    }

    #[test]
    fn spike_hits_both_branches() {
        let mut rng = SimRng::seed(3);
        let m = LatencyModel::Spike {
            base: 1,
            spike_p: 0.5,
            spike: 10,
        };
        let mut saw_base = false;
        let mut saw_spike = false;
        for _ in 0..200 {
            match m.sample(&mut rng) {
                1 => saw_base = true,
                11 => saw_spike = true,
                other => panic!("unexpected latency {other}"),
            }
        }
        assert!(saw_base && saw_spike);
        assert_eq!(m.worst_case(), 11);
    }
}
