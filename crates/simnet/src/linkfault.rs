//! Link-level fault plans (the chaos layer).
//!
//! Node faults ([`crate::fault`]) model misbehaving *processes*; this
//! module models a misbehaving *network*. A [`LinkFaultPlan`] maps each
//! directed edge to a list of [`LinkFaultKind`]s that the round engine
//! applies to every message crossing that edge, after node faults and the
//! topology check but before the round deadline:
//!
//! * [`LinkFaultKind::Cut`] — the link goes down permanently from a round
//!   (partitions, Theorem 3 experiments);
//! * [`LinkFaultKind::Drop`] — each message is lost independently with
//!   probability `p`;
//! * [`LinkFaultKind::Duplicate`] — each message is delivered twice with
//!   probability `p`;
//! * [`LinkFaultKind::Reorder`] — each message is delayed a uniformly
//!   random `0..=window` extra rounds (0 = on time), so later traffic can
//!   overtake it;
//! * [`LinkFaultKind::Corrupt`] — each message is garbled in flight with
//!   probability `p`. What "garbled" means is decided by the protocol crate
//!   via [`crate::engine::RoundEngine::with_corruptor`]; without a
//!   corruptor the message is dropped, which matches the paper's
//!   oral-message axiom that a detectably damaged message reads as
//!   **absent**.
//!
//! [`Partition`] computes a minimum vertex separator from
//! [`crate::connectivity`] and expresses it as a plan of link cuts — the
//! link-level realisation of "remove the cut set" used by the connectivity
//! bound experiments.

use crate::connectivity::minimum_vertex_cut;
use crate::graph::Graph;
use crate::id::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One kind of fault on a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkFaultKind {
    /// The link carries nothing from `from_round` on.
    Cut {
        /// First round (inclusive) in which the link is down.
        from_round: usize,
    },
    /// Each crossing message is lost independently with probability `p`.
    Drop {
        /// Per-message loss probability.
        p: f64,
    },
    /// Each crossing message is delivered twice with probability `p`.
    Duplicate {
        /// Per-message duplication probability.
        p: f64,
    },
    /// Each crossing message is delayed `0..=window` extra rounds (drawn
    /// uniformly; 0 keeps it on time), letting later traffic overtake it.
    Reorder {
        /// Maximum extra delay in rounds.
        window: usize,
    },
    /// Each crossing message is garbled with probability `p` (mapped
    /// through the engine's corruptor; absent a corruptor it is dropped).
    Corrupt {
        /// Per-message corruption probability.
        p: f64,
    },
}

impl fmt::Display for LinkFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LinkFaultKind::Cut { from_round } => write!(f, "cut(from r{from_round})"),
            LinkFaultKind::Drop { p } => write!(f, "drop(p={p})"),
            LinkFaultKind::Duplicate { p } => write!(f, "duplicate(p={p})"),
            LinkFaultKind::Reorder { window } => write!(f, "reorder(window={window})"),
            LinkFaultKind::Corrupt { p } => write!(f, "corrupt(p={p})"),
        }
    }
}

/// Link faults keyed by directed edge `(from, to)`.
///
/// Multiple kinds may stack on one edge; the engine applies them in the
/// order they were added (cuts always win, since a cut message goes no
/// further).
///
/// ```
/// use simnet::prelude::*;
///
/// let plan = LinkFaultPlan::healthy()
///     .with(NodeId::new(0), NodeId::new(1), LinkFaultKind::Drop { p: 0.5 })
///     .with_symmetric(NodeId::new(1), NodeId::new(2), LinkFaultKind::Cut { from_round: 2 });
/// assert!(plan.is_cut(NodeId::new(2), NodeId::new(1), 2));
/// assert!(!plan.is_cut(NodeId::new(2), NodeId::new(1), 1));
/// assert_eq!(plan.faulty_link_count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultPlan {
    links: BTreeMap<(NodeId, NodeId), Vec<LinkFaultKind>>,
}

impl LinkFaultPlan {
    /// A plan with no link faults.
    pub fn healthy() -> Self {
        LinkFaultPlan::default()
    }

    /// Adds `kind` to the directed edge `from -> to`.
    #[must_use]
    pub fn with(mut self, from: NodeId, to: NodeId, kind: LinkFaultKind) -> Self {
        self.links.entry((from, to)).or_default().push(kind);
        self
    }

    /// Adds `kind` to both directions of the edge `{a, b}`.
    #[must_use]
    pub fn with_symmetric(self, a: NodeId, b: NodeId, kind: LinkFaultKind) -> Self {
        self.with(a, b, kind).with(b, a, kind)
    }

    /// Applies every kind in `kinds`, in order, to every directed edge of
    /// the complete graph on `n` nodes — the uniform-background chaos
    /// shape used by the harness knobs and the batched-agreement tests.
    #[must_use]
    pub fn uniform_complete(n: usize, kinds: &[LinkFaultKind]) -> Self {
        let mut plan = LinkFaultPlan::healthy();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                for &kind in kinds {
                    plan = plan.with(NodeId::new(a), NodeId::new(b), kind);
                }
            }
        }
        plan
    }

    /// Cuts (both directions, from `from_round`) every edge between a node
    /// in `a_side` and a node in `b_side`.
    #[must_use]
    pub fn cut_between(mut self, a_side: &[NodeId], b_side: &[NodeId], from_round: usize) -> Self {
        for &a in a_side {
            for &b in b_side {
                if a != b {
                    self = self.with_symmetric(a, b, LinkFaultKind::Cut { from_round });
                }
            }
        }
        self
    }

    /// Appends every kind of `other` onto this plan, edge by edge, after
    /// this plan's own kinds — explicit per-edge faults first, layered
    /// background chaos second.
    #[must_use]
    pub fn stacked_with(mut self, other: &LinkFaultPlan) -> Self {
        for ((from, to), kinds) in other.iter() {
            for &kind in kinds {
                self = self.with(from, to, kind);
            }
        }
        self
    }

    /// Whether no link has any fault.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Number of directed edges carrying at least one fault.
    pub fn faulty_link_count(&self) -> usize {
        self.links.len()
    }

    /// The fault kinds on the directed edge `from -> to` (empty when the
    /// link is healthy), in the order they were added.
    pub fn kinds(&self, from: NodeId, to: NodeId) -> &[LinkFaultKind] {
        self.links.get(&(from, to)).map_or(&[], Vec::as_slice)
    }

    /// Whether the directed edge `from -> to` is cut in `round`.
    pub fn is_cut(&self, from: NodeId, to: NodeId, round: usize) -> bool {
        self.kinds(from, to)
            .iter()
            .any(|k| matches!(k, LinkFaultKind::Cut { from_round } if round >= *from_round))
    }

    /// Iterator over `((from, to), kinds)` in edge order.
    pub fn iter(&self) -> impl Iterator<Item = ((NodeId, NodeId), &[LinkFaultKind])> {
        self.links.iter().map(|(&e, ks)| (e, ks.as_slice()))
    }

    /// The *effective topology* at `round`: `g` minus every undirected edge
    /// with at least one cut direction. Probabilistic kinds do not remove
    /// edges (a lossy link is degraded, not absent); a one-way cut removes
    /// the undirected edge because the paper's links are bidirectional.
    pub fn apply_cuts(&self, g: &Graph, round: usize) -> Graph {
        let mut out = g.clone();
        for (a, b) in g.edges() {
            if self.is_cut(a, b, round) || self.is_cut(b, a, round) {
                out.remove_edge(a, b);
            }
        }
        out
    }
}

/// A minimum vertex separator of a graph, expressed as link cuts.
///
/// Removing a vertex cut `S` disconnects the survivors; at the link level
/// the same effect is achieved by cutting every edge incident to `S`
/// (isolating exactly the separator nodes). This is the adversary shape of
/// the paper's Theorem 3: place the cut on `S`, `|S| = m+u`, and traffic
/// between the two sides is entirely under its control.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    separator: BTreeSet<NodeId>,
}

impl Partition {
    /// Computes a minimum vertex separator of `g` via
    /// [`minimum_vertex_cut`]. `None` when `g` is complete (no separator
    /// exists).
    pub fn of(g: &Graph) -> Option<Self> {
        minimum_vertex_cut(g).map(|separator| Partition { separator })
    }

    /// A partition along an explicitly chosen separator.
    pub fn along(separator: BTreeSet<NodeId>) -> Self {
        Partition { separator }
    }

    /// The separator vertices.
    pub fn separator(&self) -> &BTreeSet<NodeId> {
        &self.separator
    }

    /// Size of the separator.
    pub fn len(&self) -> usize {
        self.separator.len()
    }

    /// Whether the separator is empty.
    pub fn is_empty(&self) -> bool {
        self.separator.is_empty()
    }

    /// The plan cutting every edge of `g` incident to the separator (both
    /// directions) from `from_round` on — the link-level realisation of
    /// deleting the separator vertices.
    pub fn isolating_plan(&self, g: &Graph, from_round: usize) -> LinkFaultPlan {
        let mut plan = LinkFaultPlan::healthy();
        for &s in &self.separator {
            for nb in g.neighbors(s) {
                plan = plan.with_symmetric(s, nb, LinkFaultKind::Cut { from_round });
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::vertex_connectivity;
    use crate::topology::Topology;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn healthy_plan_is_empty() {
        let plan = LinkFaultPlan::healthy();
        assert!(plan.is_empty());
        assert_eq!(plan.faulty_link_count(), 0);
        assert!(plan.kinds(n(0), n(1)).is_empty());
        assert!(!plan.is_cut(n(0), n(1), 0));
    }

    #[test]
    fn cut_is_directional_and_round_gated() {
        let plan = LinkFaultPlan::healthy().with(n(0), n(1), LinkFaultKind::Cut { from_round: 3 });
        assert!(!plan.is_cut(n(0), n(1), 2));
        assert!(plan.is_cut(n(0), n(1), 3));
        assert!(plan.is_cut(n(0), n(1), 7));
        assert!(!plan.is_cut(n(1), n(0), 7), "reverse direction unaffected");
    }

    #[test]
    fn kinds_stack_in_insertion_order() {
        let plan = LinkFaultPlan::healthy()
            .with(n(0), n(1), LinkFaultKind::Drop { p: 0.1 })
            .with(n(0), n(1), LinkFaultKind::Duplicate { p: 0.2 });
        assert_eq!(
            plan.kinds(n(0), n(1)),
            &[
                LinkFaultKind::Drop { p: 0.1 },
                LinkFaultKind::Duplicate { p: 0.2 }
            ]
        );
    }

    #[test]
    fn stacked_plans_keep_per_edge_order() {
        let explicit =
            LinkFaultPlan::healthy().with(n(0), n(1), LinkFaultKind::Cut { from_round: 0 });
        let chaos = LinkFaultPlan::uniform_complete(3, &[LinkFaultKind::Drop { p: 0.5 }]);
        let merged = explicit.stacked_with(&chaos);
        assert_eq!(
            merged.kinds(n(0), n(1)),
            &[
                LinkFaultKind::Cut { from_round: 0 },
                LinkFaultKind::Drop { p: 0.5 }
            ]
        );
        assert_eq!(merged.kinds(n(1), n(2)), &[LinkFaultKind::Drop { p: 0.5 }]);
        assert_eq!(merged.faulty_link_count(), 6);
    }

    #[test]
    fn uniform_complete_covers_every_directed_pair_in_order() {
        let kinds = [
            LinkFaultKind::Drop { p: 0.1 },
            LinkFaultKind::Duplicate { p: 0.2 },
        ];
        let plan = LinkFaultPlan::uniform_complete(4, &kinds);
        assert_eq!(plan.faulty_link_count(), 4 * 3);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert_eq!(plan.kinds(n(a), n(b)), &kinds, "{a}->{b}");
                }
            }
        }
        assert!(LinkFaultPlan::uniform_complete(4, &[]).is_empty());
        assert!(LinkFaultPlan::uniform_complete(0, &kinds).is_empty());
    }

    #[test]
    fn cut_between_cuts_all_cross_edges_symmetrically() {
        let plan = LinkFaultPlan::healthy().cut_between(&[n(0), n(1)], &[n(2)], 0);
        for (a, b) in [(0, 2), (2, 0), (1, 2), (2, 1)] {
            assert!(plan.is_cut(n(a), n(b), 0), "{a}->{b}");
        }
        assert!(!plan.is_cut(n(0), n(1), 0));
    }

    #[test]
    fn apply_cuts_respects_rounds() {
        let topo = Topology::complete(4);
        let plan = LinkFaultPlan::healthy().with_symmetric(
            n(0),
            n(1),
            LinkFaultKind::Cut { from_round: 2 },
        );
        assert_eq!(plan.apply_cuts(topo.graph(), 1).edge_count(), 6);
        let after = plan.apply_cuts(topo.graph(), 2);
        assert_eq!(after.edge_count(), 5);
        assert!(!after.has_edge(n(0), n(1)));
    }

    #[test]
    fn one_way_cut_removes_undirected_edge() {
        let topo = Topology::complete(3);
        let plan = LinkFaultPlan::healthy().with(n(0), n(1), LinkFaultKind::Cut { from_round: 0 });
        assert!(!plan.apply_cuts(topo.graph(), 0).has_edge(n(0), n(1)));
    }

    #[test]
    fn probabilistic_kinds_do_not_remove_edges() {
        let topo = Topology::complete(3);
        let plan = LinkFaultPlan::healthy()
            .with(n(0), n(1), LinkFaultKind::Drop { p: 1.0 })
            .with(n(1), n(2), LinkFaultKind::Corrupt { p: 1.0 });
        assert_eq!(plan.apply_cuts(topo.graph(), 0).edge_count(), 3);
    }

    #[test]
    fn partition_isolates_minimum_separator() {
        // A ring has connectivity 2: the separator has 2 nodes, and the
        // isolating plan's cuts drop the effective connectivity to 0.
        let topo = Topology::ring(6);
        let part = Partition::of(topo.graph()).expect("ring is not complete");
        assert_eq!(part.len(), 2);
        let plan = part.isolating_plan(topo.graph(), 0);
        let effective = plan.apply_cuts(topo.graph(), 0);
        assert!(!effective.is_connected());
        assert_eq!(vertex_connectivity(&effective), 0);
    }

    #[test]
    fn complete_graph_has_no_partition() {
        assert!(Partition::of(Topology::complete(4).graph()).is_none());
    }

    #[test]
    fn explicit_separator_partition() {
        let topo = Topology::path(3); // 0-1-2: node 1 separates
        let part = Partition::along([n(1)].into_iter().collect());
        let plan = part.isolating_plan(topo.graph(), 0);
        assert!(plan.is_cut(n(1), n(0), 0));
        assert!(plan.is_cut(n(0), n(1), 0));
        assert!(!plan.apply_cuts(topo.graph(), 0).is_connected());
    }
}
