//! Point-to-point relay over vertex-disjoint paths with *degradable
//! delivery* semantics.
//!
//! Algorithm BYZ assumes a fully connected network. Theorem 3 of the paper
//! shows connectivity `m+u+1` is necessary, and remarks it is also
//! sufficient. Sufficiency is realised by the classic technique of sending
//! each point-to-point message over `k >= m+u+1` internally-vertex-disjoint
//! paths (Menger) and letting the receiver vote over the arriving copies.
//!
//! The acceptance rule implemented by [`DegradableLink`] is:
//!
//! > accept ω iff at least `k - m` copies carry ω **and** no other value is
//! > carried by `m+1` or more copies; otherwise treat the message as
//! > **absent**.
//!
//! With `k >= m+u+1` disjoint paths and at most `f` faulty nodes (each
//! faulty node can corrupt at most one path, by disjointness; endpoints are
//! excluded), this yields exactly the relaxed message assumptions of
//! Section 6.1 of the paper:
//!
//! * `f <= m`  → every fault-free → fault-free message is delivered
//!   correctly (at least `k-m` honest copies; corrupt values reach at most
//!   `m < m+1` copies);
//! * `m < f <= u` → a fault-free → fault-free message is delivered
//!   correctly **or declared absent**, never altered (a wrong value would
//!   need `k-m >= u+1 > f` corrupt copies).
//!
//! BYZ remains `m/u`-degradably correct under exactly these conditions, so
//! composing BYZ with this relay gives degradable agreement on any topology
//! of connectivity at least `m+u+1`.

use crate::connectivity::vertex_disjoint_paths;
use crate::id::NodeId;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Outcome of transmitting one logical message over a degradable link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Delivery<V> {
    /// The receiver accepted this value.
    Accepted(V),
    /// The receiver could not authenticate any value; the message is
    /// treated as absent (protocols map this to the default value `V_d`).
    Absent,
}

impl<V> Delivery<V> {
    /// The accepted value, if any.
    pub fn accepted(self) -> Option<V> {
        match self {
            Delivery::Accepted(v) => Some(v),
            Delivery::Absent => None,
        }
    }
}

/// What a faulty relay node does to a copy passing through it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CopyAction<V> {
    /// Forward unchanged (a faulty node may behave correctly).
    Forward,
    /// Drop the copy.
    Drop,
    /// Replace the payload.
    Replace(V),
}

/// Context handed to a relay adversary for each (faulty node, path copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelayHop {
    /// The faulty node the copy is passing through.
    pub node: NodeId,
    /// Original sender of the logical message.
    pub src: NodeId,
    /// Final destination.
    pub dst: NodeId,
    /// Index of the disjoint path carrying this copy.
    pub path_index: usize,
}

/// The degradable acceptance rule, parameterized by `m` (the strong fault
/// threshold).
///
/// `resolve` takes the per-path copies that reached the receiver (`None`
/// for dropped copies) and applies the rule documented at module level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradableLink {
    m: usize,
}

impl DegradableLink {
    /// Creates the rule for strong threshold `m`.
    pub fn new(m: usize) -> Self {
        DegradableLink { m }
    }

    /// Applies the acceptance rule to the copies received over `k` disjoint
    /// paths.
    pub fn resolve<V: Clone + Ord>(&self, copies: &[Option<V>]) -> Delivery<V> {
        let k = copies.len();
        if k == 0 {
            return Delivery::Absent;
        }
        let mut counts: BTreeMap<&V, usize> = BTreeMap::new();
        for v in copies.iter().flatten() {
            *counts.entry(v).or_insert(0) += 1;
        }
        let accept_threshold = k.saturating_sub(self.m);
        let mut winner: Option<&V> = None;
        for (&v, &c) in &counts {
            if c >= accept_threshold {
                if winner.is_some() {
                    return Delivery::Absent; // two values above threshold: ambiguous
                }
                winner = Some(v);
            }
        }
        match winner {
            None => Delivery::Absent,
            Some(w) => {
                // Block if any *other* value has m+1 or more copies.
                for (&v, &c) in &counts {
                    if v != w && c > self.m {
                        return Delivery::Absent;
                    }
                }
                Delivery::Accepted(w.clone())
            }
        }
    }
}

/// Error constructing a [`RelayNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayError {
    /// Some ordered pair has fewer than the required number of disjoint
    /// paths (connectivity below `m+u+1`).
    InsufficientConnectivity {
        /// The deficient pair.
        pair: (NodeId, NodeId),
        /// Paths found.
        found: usize,
        /// Paths required.
        required: usize,
    },
}

impl fmt::Display for RelayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelayError::InsufficientConnectivity {
                pair,
                found,
                required,
            } => write!(
                f,
                "pair {}-{} has only {found} disjoint paths, {required} required",
                pair.0, pair.1
            ),
        }
    }
}

impl std::error::Error for RelayError {}

/// A relay fabric: precomputed vertex-disjoint paths for every ordered node
/// pair plus the degradable acceptance rule.
#[derive(Debug, Clone)]
pub struct RelayNetwork {
    paths: BTreeMap<(NodeId, NodeId), Vec<Vec<NodeId>>>,
    link: DegradableLink,
    required: usize,
}

impl RelayNetwork {
    /// Builds a relay fabric for `m/u` agreement over `topo`.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::InsufficientConnectivity`] if some pair of
    /// nodes is joined by fewer than `m+u+1` internally-disjoint paths —
    /// i.e. the topology violates the Theorem 3 bound.
    pub fn new(topo: &Topology, m: usize, u: usize) -> Result<Self, RelayError> {
        let required = m + u + 1;
        let net = Self::new_unchecked(topo, m, u);
        for (&pair, paths) in &net.paths {
            if paths.len() < required {
                return Err(RelayError::InsufficientConnectivity {
                    pair,
                    found: paths.len(),
                    required,
                });
            }
        }
        Ok(net)
    }

    /// Builds the fabric without enforcing the connectivity bound; pairs
    /// simply use however many disjoint paths exist. Used by experiments
    /// that demonstrate failure *below* the Theorem 3 bound.
    pub fn new_unchecked(topo: &Topology, m: usize, _u: usize) -> Self {
        let g = topo.graph();
        let n = g.node_count();
        let mut paths = BTreeMap::new();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (s, t) = (NodeId::new(a), NodeId::new(b));
                paths.insert((s, t), vertex_disjoint_paths(g, s, t));
            }
        }
        RelayNetwork {
            paths,
            link: DegradableLink::new(m),
            required: m + _u + 1,
        }
    }

    /// Number of disjoint paths available between `src` and `dst`.
    pub fn path_count(&self, src: NodeId, dst: NodeId) -> usize {
        self.paths.get(&(src, dst)).map_or(0, Vec::len)
    }

    /// The disjoint paths used for `src -> dst`.
    pub fn paths(&self, src: NodeId, dst: NodeId) -> &[Vec<NodeId>] {
        self.paths.get(&(src, dst)).map_or(&[], Vec::as_slice)
    }

    /// Required path count (`m+u+1`).
    pub fn required_paths(&self) -> usize {
        self.required
    }

    /// Transmits `value` from `src` to `dst`. Faulty intermediate nodes
    /// (members of `faulty`, excluding the endpoints) act through
    /// `adversary`. Returns the receiver-side delivery.
    pub fn transmit<V: Clone + Ord>(
        &self,
        src: NodeId,
        dst: NodeId,
        value: &V,
        faulty: &BTreeSet<NodeId>,
        adversary: &mut impl FnMut(RelayHop) -> CopyAction<V>,
    ) -> Delivery<V> {
        let copies = self.copies(src, dst, value, faulty, adversary);
        self.link.resolve(&copies)
    }

    /// The raw per-path copies arriving at `dst` (before the acceptance
    /// rule), one slot per disjoint path (`None` = dropped). Exposed so
    /// chaos layers can perturb individual copies (loss, corruption,
    /// duplication, reordering) and then apply [`Self::link`]'s rule.
    pub fn copies<V: Clone + Ord>(
        &self,
        src: NodeId,
        dst: NodeId,
        value: &V,
        faulty: &BTreeSet<NodeId>,
        adversary: &mut impl FnMut(RelayHop) -> CopyAction<V>,
    ) -> Vec<Option<V>> {
        let paths = self.paths(src, dst);
        let mut copies: Vec<Option<V>> = Vec::with_capacity(paths.len());
        for (path_index, path) in paths.iter().enumerate() {
            let mut copy = Some(value.clone());
            for &hop in &path[1..path.len() - 1] {
                if faulty.contains(&hop) {
                    match adversary(RelayHop {
                        node: hop,
                        src,
                        dst,
                        path_index,
                    }) {
                        CopyAction::Forward => {}
                        CopyAction::Drop => {
                            copy = None;
                            break;
                        }
                        CopyAction::Replace(v) => copy = Some(v),
                    }
                }
            }
            copies.push(copy);
        }
        copies
    }

    /// The degradable acceptance rule in force on this fabric.
    pub fn link(&self) -> DegradableLink {
        self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn replace_all(wrong: u32) -> impl FnMut(RelayHop) -> CopyAction<u32> {
        move |_| CopyAction::Replace(wrong)
    }

    #[test]
    fn resolve_accepts_unanimous() {
        let link = DegradableLink::new(1);
        let copies = vec![Some(5u32), Some(5), Some(5), Some(5)];
        assert_eq!(link.resolve(&copies), Delivery::Accepted(5));
    }

    #[test]
    fn resolve_tolerates_m_corruptions() {
        let link = DegradableLink::new(1);
        // k = 4, m = 1: 3 honest copies >= k-m = 3, wrong has 1 < m+1 = 2.
        let copies = vec![Some(5u32), Some(9), Some(5), Some(5)];
        assert_eq!(link.resolve(&copies), Delivery::Accepted(5));
    }

    #[test]
    fn resolve_blocks_competing_value() {
        let link = DegradableLink::new(1);
        // wrong value reaches m+1 = 2 copies -> absent even though 5 has 3...
        // (k=5 here, accept threshold 4, 5 has only 3 -> absent anyway; craft
        // a sharper case: k=4, 5 has 3 >= 3, 9 has 2 >= 2 is impossible with
        // k=4; instead verify threshold failure)
        let copies = vec![Some(5u32), Some(9), Some(9), Some(5)];
        assert_eq!(link.resolve(&copies), Delivery::Absent);
    }

    #[test]
    fn resolve_absent_on_drops() {
        let link = DegradableLink::new(1);
        let copies = vec![Some(5u32), None, None, Some(5)];
        assert_eq!(link.resolve(&copies), Delivery::Absent);
    }

    #[test]
    fn resolve_empty_is_absent() {
        let link = DegradableLink::new(0);
        assert_eq!(link.resolve::<u32>(&[]), Delivery::Absent);
    }

    #[test]
    fn relay_on_sufficient_connectivity_delivers() {
        // m=1, u=2 needs connectivity 4: use complete(6) (connectivity 5).
        let topo = Topology::complete(6);
        let net = RelayNetwork::new(&topo, 1, 2).expect("K6 is 5-connected");
        // One faulty intermediate replacing everything:
        let faulty: BTreeSet<_> = [n(2)].into_iter().collect();
        let d = net.transmit(n(0), n(1), &42u32, &faulty, &mut replace_all(7));
        assert_eq!(d, Delivery::Accepted(42));
    }

    #[test]
    fn relay_never_accepts_wrong_value() {
        let topo = Topology::harary(4, 8); // connectivity 4 = m+u+1 for (1,2)
        let net = RelayNetwork::new(&topo, 1, 2).expect("H(4,8) suffices");
        for fcount in 1..=2usize {
            let faulty: BTreeSet<_> = (2..2 + fcount).map(n).collect();
            for dst in 1..8 {
                if faulty.contains(&n(dst)) {
                    continue;
                }
                let d = net.transmit(n(0), n(dst), &42u32, &faulty, &mut replace_all(7));
                assert_ne!(d, Delivery::Accepted(7), "wrong value accepted");
                if fcount <= 1 {
                    assert_eq!(d, Delivery::Accepted(42), "f<=m must deliver");
                }
            }
        }
    }

    #[test]
    fn insufficient_connectivity_is_reported() {
        let topo = Topology::ring(6); // connectivity 2 < 4
        let err = RelayNetwork::new(&topo, 1, 2).unwrap_err();
        assert!(matches!(
            err,
            RelayError::InsufficientConnectivity { required: 4, .. }
        ));
    }

    #[test]
    fn unchecked_fabric_degrades_below_bound() {
        // Ring: 2 disjoint paths; one faulty node on each side of the ring
        // can drop both copies -> absent; f=2 > m=0 here so degradation is
        // the allowed behaviour.
        let topo = Topology::ring(6);
        let net = RelayNetwork::new_unchecked(&topo, 0, 1);
        let faulty: BTreeSet<_> = [n(1), n(5)].into_iter().collect();
        let mut drop_all = |_: RelayHop| CopyAction::<u32>::Drop;
        let d = net.transmit(n(0), n(3), &42u32, &faulty, &mut drop_all);
        assert_eq!(d, Delivery::Absent);
    }

    #[test]
    fn accessors() {
        let topo = Topology::complete(5);
        let net = RelayNetwork::new(&topo, 1, 1).expect("K5 is 4-connected");
        assert_eq!(net.required_paths(), 3);
        assert_eq!(net.path_count(n(0), n(1)), 4);
        assert_eq!(net.paths(n(0), n(1)).len(), 4);
        assert_eq!(net.path_count(n(0), n(0)), 0);
        assert_eq!(Delivery::Accepted(5u32).accepted(), Some(5));
        assert_eq!(Delivery::<u32>::Absent.accepted(), None);
    }

    #[test]
    fn faulty_endpoints_do_not_corrupt_relay() {
        // The destination being "faulty" does not alter relay copies (its
        // decisions are arbitrary at the protocol layer instead).
        let topo = Topology::complete(5);
        let net = RelayNetwork::new_unchecked(&topo, 1, 1);
        let faulty: BTreeSet<_> = [n(0), n(1)].into_iter().collect();
        let d = net.transmit(n(0), n(1), &42u32, &faulty, &mut replace_all(7));
        assert_eq!(d, Delivery::Accepted(42));
    }
}
