//! # simnet — deterministic synchronous message-passing simulator
//!
//! `simnet` is the execution substrate for the reproduction of Vaidya's
//! *Degradable Agreement in the Presence of Byzantine Faults* (1993). The
//! paper assumes a synchronous message-passing system in which
//!
//! 1. all messages are delivered correctly,
//! 2. the **absence** of a message can be detected, and
//! 3. the source of a received message can be identified.
//!
//! This crate implements exactly that model as a deterministic, seedable,
//! round-based simulator, plus the network substrates the paper's theorems
//! quantify over:
//!
//! * [`graph`] / [`topology`] — undirected topologies (complete, ring,
//!   Harary `H_{k,n}`, grids, random) with exact **vertex connectivity**
//!   computation ([`connectivity`]) and **vertex-disjoint path** extraction
//!   (Menger), needed for the paper's Theorem 3 (connectivity `>= m+u+1`).
//! * [`engine`] — the event-driven round engine: a deterministic priority
//!   queue ([`sched`]) of per-message delivery events and per-node timeout
//!   timers. Rounds are emergent from the timers; every process sends in
//!   round `r`, messages are delivered at the start of round `r+1`, and a
//!   missing message is *detectably absent* (its delivery event did not
//!   fire before the receiver's timer), matching assumption (2).
//! * [`fault`] — fault plans: crash, omission, delay and Byzantine
//!   markers, applied by the engine independently of process logic.
//! * [`latency`] — per-message latency models and round deadlines, used to
//!   reproduce Section 6's *relaxed* absence detection (a fault-free node
//!   may falsely time out another fault-free node when more than `m` nodes
//!   are faulty).
//! * [`routing`] — point-to-point relay over vertex-disjoint paths with the
//!   *degradable delivery* acceptance rule (correct when `f <= m`,
//!   correct-or-absent when `f <= u`), the mechanism that makes agreement
//!   work on sparse topologies with connectivity `m+u+1`.
//!
//! Everything is deterministic given a seed; see [`rng::SimRng`].
//!
//! ## Example
//!
//! ```
//! use simnet::prelude::*;
//!
//! // A 5-node complete graph; every node sends its id to everyone each
//! // round and records what it saw.
//! let topo = Topology::complete(5);
//! let mut engine = RoundEngine::<u64>::new(topo, 7);
//! let outcome = engine.run(2, |ctx| {
//!     assert_eq!(ctx.peers().len(), 4); // borrowed slice, no allocation
//!     ctx.broadcast(ctx.me().index() as u64);
//! });
//! assert_eq!(outcome.rounds_run, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod engine;
pub mod fault;
pub mod graph;
pub mod id;
pub mod latency;
pub mod linkfault;
pub mod rng;
pub mod routing;
pub mod sched;
pub mod topology;
pub mod trace;

pub use connectivity::{
    local_connectivity, minimum_vertex_cut, vertex_connectivity, vertex_disjoint_paths,
};
pub use engine::{Corruptor, EigPerf, Outcome, RoundCtx, RoundEngine};
pub use fault::{FaultKind, FaultPlan, FaultSchedule};
pub use graph::Graph;
pub use id::NodeId;
pub use latency::LatencyModel;
pub use linkfault::{LinkFaultKind, LinkFaultPlan, Partition};
pub use rng::SimRng;
pub use routing::{DegradableLink, Delivery, RelayNetwork};
pub use sched::{EventClass, EventQueue, Scheduled, SimTime};
pub use topology::Topology;
pub use trace::{LateCause, Trace, TraceEvent};

/// Convenience glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::connectivity::{
        local_connectivity, minimum_vertex_cut, vertex_connectivity, vertex_disjoint_paths,
    };
    pub use crate::engine::{Corruptor, EigPerf, Outcome, RoundCtx, RoundEngine};
    pub use crate::fault::{FaultKind, FaultPlan, FaultSchedule};
    pub use crate::graph::Graph;
    pub use crate::id::NodeId;
    pub use crate::latency::LatencyModel;
    pub use crate::linkfault::{LinkFaultKind, LinkFaultPlan, Partition};
    pub use crate::rng::SimRng;
    pub use crate::routing::{DegradableLink, Delivery, RelayNetwork};
    pub use crate::sched::{EventClass, EventQueue, Scheduled, SimTime};
    pub use crate::topology::Topology;
    pub use crate::trace::{LateCause, Trace, TraceEvent};
}
