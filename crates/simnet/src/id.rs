//! Node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (processor) in a simulated system.
///
/// Node ids are dense indices `0..n`. The newtype prevents mixing node
/// indices with round numbers, path positions and other `usize` quantities
/// that circulate in agreement protocols.
///
/// ```
/// use simnet::NodeId;
/// let a = NodeId::new(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(a.to_string(), "n3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from its dense index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Iterator over the ids `0..n`.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> + Clone {
        (0..n).map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(NodeId::from(42usize), id);
    }

    #[test]
    fn all_enumerates_in_order() {
        let ids: Vec<_> = NodeId::all(4).collect();
        assert_eq!(
            ids,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId::new(0).to_string(), "n0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
