//! Lock-step synchronous round engine.
//!
//! The engine implements the paper's system model directly:
//!
//! * execution proceeds in numbered rounds;
//! * a message sent in round `r` is delivered at the start of round `r+1`
//!   (if it survives faults, links and the deadline);
//! * a receiver can *detect absence*: its inbox simply lacks an entry from
//!   the silent sender, and [`RoundCtx::from`] returns `None`;
//! * the source of every delivered message is authentic ([`RoundCtx`]
//!   stamps the true sender; processes cannot forge the `src` field —
//!   matching the paper's "oral messages" assumption (c)).
//!
//! Processes are either closures (see [`RoundEngine::run`]) or stateful
//! [`Process`] implementations (see [`RoundEngine::run_processes`]).

use crate::fault::{FaultPlan, FaultSchedule};
use crate::id::NodeId;
use crate::latency::LatencyModel;
use crate::rng::SimRng;
use crate::topology::Topology;
use crate::trace::{Trace, TraceEvent};

/// Per-node, per-round context handed to process logic.
#[derive(Debug)]
pub struct RoundCtx<'a, M> {
    me: NodeId,
    round: usize,
    n: usize,
    inbox: &'a [(NodeId, M)],
    peers: &'a [NodeId],
    outbox: Vec<(NodeId, M)>,
}

impl<'a, M: Clone> RoundCtx<'a, M> {
    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The current round number (0-based).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Total number of nodes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Ids of this node's direct neighbours, ascending. Borrowed from the
    /// engine — this is called in the per-round hot path, so it must not
    /// allocate.
    pub fn peers(&self) -> &[NodeId] {
        self.peers
    }

    /// Messages delivered at the start of this round, as `(src, payload)`
    /// sorted by source id (stable for determinism). Multiple messages from
    /// the same source are all present.
    pub fn inbox(&self) -> &[(NodeId, M)] {
        self.inbox
    }

    /// First message from `src` this round, if any. `None` means the
    /// message is *detectably absent* (paper assumption (b)).
    pub fn from(&self, src: NodeId) -> Option<&M> {
        self.inbox.iter().find(|(s, _)| *s == src).map(|(_, m)| m)
    }

    /// Whether no message from `src` arrived this round.
    pub fn absent(&self, src: NodeId) -> bool {
        self.from(src).is_none()
    }

    /// Queues a message to `to` (delivered next round if a link exists).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Queues `msg` to every direct neighbour.
    pub fn broadcast(&mut self, msg: M) {
        for &p in self.peers {
            self.outbox.push((p, msg.clone()));
        }
    }
}

/// A stateful per-node process.
pub trait Process<M> {
    /// Called once per round with the messages delivered this round; queue
    /// outgoing messages through the context.
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, M>);
}

impl<M, F: FnMut(&mut RoundCtx<'_, M>)> Process<M> for F {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, M>) {
        self(ctx)
    }
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Outcome {
    /// Rounds executed.
    pub rounds_run: usize,
    /// Messages handed to the engine by processes.
    pub sent: usize,
    /// Messages delivered before the deadline.
    pub delivered: usize,
    /// Messages dropped by crash faults.
    pub dropped_crash: usize,
    /// Messages dropped by omission faults.
    pub dropped_omission: usize,
    /// Messages that arrived after the deadline (absent to the receiver).
    pub late: usize,
    /// Messages discarded for lack of a topology link.
    pub no_link: usize,
}

/// The synchronous round engine.
///
/// ```
/// use simnet::prelude::*;
///
/// let mut engine = RoundEngine::<u32>::new(Topology::complete(3), 1);
/// let outcome = engine.run(1, |ctx| {
///     ctx.broadcast(ctx.me().index() as u32);
/// });
/// assert_eq!(outcome.sent, 6); // 3 nodes x 2 peers
/// ```
#[derive(Debug)]
pub struct RoundEngine<M> {
    topo: Topology,
    rng: SimRng,
    faults: FaultPlan,
    schedule: Option<FaultSchedule>,
    latency: LatencyModel,
    deadline: u64,
    trace: Option<Trace>,
    _marker: std::marker::PhantomData<M>,
}

impl<M: Clone> RoundEngine<M> {
    /// Creates an engine over `topo` with the given seed, no faults, zero
    /// latency and an infinite deadline.
    pub fn new(topo: Topology, seed: u64) -> Self {
        RoundEngine {
            topo,
            rng: SimRng::seed(seed),
            faults: FaultPlan::healthy(),
            schedule: None,
            latency: LatencyModel::Zero,
            deadline: u64::MAX,
            trace: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Sets the fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets a time-varying fault schedule (overrides the static plan).
    #[must_use]
    pub fn with_fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Sets the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the round deadline: messages with sampled latency strictly
    /// greater than `deadline` are late (absent to the receiver).
    #[must_use]
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        self.deadline = deadline;
        self
    }

    /// Enables event tracing.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(Trace::new());
        self
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The topology this engine runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Runs `rounds` rounds where every node executes the same closure.
    pub fn run(&mut self, rounds: usize, mut step: impl FnMut(&mut RoundCtx<'_, M>)) -> Outcome {
        self.run_with(rounds, |_, ctx| step(ctx))
    }

    /// Runs `rounds` rounds with per-node stateful processes;
    /// `processes[i]` drives node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `processes.len()` differs from the node count.
    pub fn run_processes(
        &mut self,
        rounds: usize,
        processes: &mut [Box<dyn Process<M>>],
    ) -> Outcome {
        assert_eq!(
            processes.len(),
            self.topo.node_count(),
            "one process per node required"
        );
        self.run_with(rounds, |i, ctx| processes[i].on_round(ctx))
    }

    /// Core loop: `step(i, ctx)` is invoked for node `i` each round.
    pub fn run_with(
        &mut self,
        rounds: usize,
        mut step: impl FnMut(usize, &mut RoundCtx<'_, M>),
    ) -> Outcome {
        let n = self.topo.node_count();
        let mut outcome = Outcome::default();
        let peers: Vec<Vec<NodeId>> = (0..n)
            .map(|i| self.topo.graph().neighbors(NodeId::new(i)).collect())
            .collect();
        let mut inboxes: Vec<Vec<(NodeId, M)>> = vec![Vec::new(); n];

        for round in 0..rounds {
            let active: FaultPlan = match &self.schedule {
                Some(s) => s.active(round),
                None => self.faults.clone(),
            };
            let mut next_inboxes: Vec<Vec<(NodeId, M)>> = vec![Vec::new(); n];
            for i in 0..n {
                let me = NodeId::new(i);
                // Sort inbox by source for determinism.
                inboxes[i].sort_by_key(|(s, _)| *s);
                let mut ctx = RoundCtx {
                    me,
                    round,
                    n,
                    inbox: &inboxes[i],
                    peers: &peers[i],
                    outbox: Vec::new(),
                };
                step(i, &mut ctx);
                let outbox = ctx.outbox;
                for (dst, msg) in outbox {
                    outcome.sent += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.record(TraceEvent::Sent {
                            round,
                            src: me,
                            dst,
                        });
                    }
                    if active.crashed(me, round) {
                        outcome.dropped_crash += 1;
                        if let Some(t) = self.trace.as_mut() {
                            t.record(TraceEvent::DroppedCrash {
                                round,
                                src: me,
                                dst,
                            });
                        }
                        continue;
                    }
                    let om = active.omission_p(me);
                    if om > 0.0 && self.rng.chance(om) {
                        outcome.dropped_omission += 1;
                        if let Some(t) = self.trace.as_mut() {
                            t.record(TraceEvent::DroppedOmission {
                                round,
                                src: me,
                                dst,
                            });
                        }
                        continue;
                    }
                    if !self.topo.graph().has_edge(me, dst) {
                        outcome.no_link += 1;
                        if let Some(t) = self.trace.as_mut() {
                            t.record(TraceEvent::NoLink {
                                round,
                                src: me,
                                dst,
                            });
                        }
                        continue;
                    }
                    let latency = self.latency.sample(&mut self.rng) + active.extra_delay(me);
                    if latency > self.deadline {
                        outcome.late += 1;
                        if let Some(t) = self.trace.as_mut() {
                            t.record(TraceEvent::Late {
                                round,
                                src: me,
                                dst,
                                latency,
                            });
                        }
                        continue;
                    }
                    outcome.delivered += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.record(TraceEvent::Delivered {
                            round,
                            src: me,
                            dst,
                            latency,
                        });
                    }
                    next_inboxes[dst.index()].push((me, msg.clone()));
                }
            }
            inboxes = next_inboxes;
            outcome.rounds_run += 1;
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn broadcast_delivers_next_round() {
        let mut engine = RoundEngine::<u64>::new(Topology::complete(3), 1);
        let mut seen: Vec<Vec<u64>> = vec![Vec::new(); 3];
        engine.run_with(2, |i, ctx| {
            if ctx.round() == 0 {
                ctx.broadcast(10 + i as u64);
            } else {
                seen[i] = ctx.inbox().iter().map(|(_, m)| *m).collect();
            }
        });
        assert_eq!(seen[0], vec![11, 12]);
        assert_eq!(seen[1], vec![10, 12]);
        assert_eq!(seen[2], vec![10, 11]);
    }

    #[test]
    fn crash_fault_silences_sender() {
        let faults = FaultPlan::healthy().with(n(0), FaultKind::Crash { from_round: 0 });
        let mut engine = RoundEngine::<u8>::new(Topology::complete(3), 1).with_faults(faults);
        let mut got_from_zero = false;
        let outcome = engine.run_with(2, |i, ctx| {
            if ctx.round() == 0 {
                ctx.broadcast(1);
            } else if i != 0 && !ctx.absent(n(0)) {
                got_from_zero = true;
            }
        });
        assert!(!got_from_zero, "crashed node must be absent");
        assert_eq!(outcome.dropped_crash, 2);
    }

    #[test]
    fn absence_is_detectable() {
        let mut engine = RoundEngine::<u8>::new(Topology::complete(3), 1);
        let mut absent_seen = false;
        engine.run_with(2, |i, ctx| {
            if ctx.round() == 0 && i != 1 {
                ctx.broadcast(7); // node 1 stays silent
            }
            if ctx.round() == 1 && i == 0 {
                absent_seen = ctx.absent(n(1)) && !ctx.absent(n(2));
            }
        });
        assert!(absent_seen);
    }

    #[test]
    fn messages_to_non_neighbors_are_discarded() {
        let mut engine = RoundEngine::<u8>::new(Topology::path(3), 1);
        let outcome = engine.run_with(2, |i, ctx| {
            if ctx.round() == 0 && i == 0 {
                ctx.send(n(2), 5); // no 0-2 edge in a path
                ctx.send(n(1), 5);
            }
        });
        assert_eq!(outcome.no_link, 1);
        assert_eq!(outcome.delivered, 1);
    }

    #[test]
    fn deadline_makes_slow_messages_absent() {
        let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 3)
            .with_latency(LatencyModel::Fixed(10))
            .with_deadline(5);
        let mut delivered_any = false;
        let outcome = engine.run_with(2, |_, ctx| {
            if ctx.round() == 0 {
                ctx.broadcast(1);
            } else if !ctx.inbox().is_empty() {
                delivered_any = true;
            }
        });
        assert!(!delivered_any);
        assert_eq!(outcome.late, 2);
    }

    #[test]
    fn delay_fault_pushes_past_deadline() {
        let faults = FaultPlan::healthy().with(n(0), FaultKind::Delay { extra: 100 });
        let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 3)
            .with_faults(faults)
            .with_deadline(50);
        let outcome = engine.run_with(2, |_, ctx| {
            if ctx.round() == 0 {
                ctx.broadcast(1);
            }
        });
        assert_eq!(outcome.late, 1); // node 0's message
        assert_eq!(outcome.delivered, 1); // node 1's message
    }

    #[test]
    fn trace_records_dispositions() {
        let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 1).with_trace();
        engine.run_with(2, |_, ctx| {
            if ctx.round() == 0 {
                ctx.broadcast(1);
            }
        });
        let trace = engine.trace().unwrap();
        assert_eq!(trace.count(|e| matches!(e, TraceEvent::Sent { .. })), 2);
        assert_eq!(
            trace.count(|e| matches!(e, TraceEvent::Delivered { .. })),
            2
        );
    }

    #[test]
    fn fault_schedule_bursts_and_recovers() {
        use crate::fault::FaultSchedule;
        // Node 0 crashes only during rounds 1..3.
        let schedule = FaultSchedule::healthy()
            .then_from(
                1,
                FaultPlan::healthy().with(n(0), FaultKind::Crash { from_round: 0 }),
            )
            .then_from(3, FaultPlan::healthy());
        let mut engine =
            RoundEngine::<u8>::new(Topology::complete(2), 1).with_fault_schedule(schedule);
        let mut heard_from_zero = [false; 5];
        engine.run_with(5, |i, ctx| {
            ctx.broadcast(1);
            if i == 1 && ctx.round() > 0 {
                heard_from_zero[ctx.round()] = !ctx.absent(n(0));
            }
        });
        // round r inbox reflects sends of round r-1: silent in 1..3.
        assert!(heard_from_zero[1]); // sent in round 0 (healthy)
        assert!(!heard_from_zero[2]); // sent in round 1 (crashed)
        assert!(!heard_from_zero[3]); // sent in round 2 (crashed)
        assert!(heard_from_zero[4]); // sent in round 3 (recovered)
    }

    #[test]
    fn identical_seeds_identical_outcomes() {
        let faults = FaultPlan::healthy().with(n(1), FaultKind::Omission { p: 0.5 });
        let run = |seed: u64| {
            let mut engine =
                RoundEngine::<u8>::new(Topology::complete(4), seed).with_faults(faults.clone());
            engine.run_with(3, |_, ctx| {
                ctx.broadcast(0);
            })
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).dropped_omission, 0); // at least one drop at p=0.5 over 9 msgs (seed-checked)
    }

    #[test]
    fn stateful_processes_via_trait_objects() {
        // A per-node counter process: counts messages it has received and
        // gossips its running total.
        struct Counter {
            received: usize,
        }
        impl Process<u64> for Counter {
            fn on_round(&mut self, ctx: &mut RoundCtx<'_, u64>) {
                self.received += ctx.inbox().len();
                ctx.broadcast(self.received as u64);
            }
        }
        let mut engine = RoundEngine::<u64>::new(Topology::complete(3), 1);
        let mut procs: Vec<Box<dyn Process<u64>>> = (0..3)
            .map(|_| Box::new(Counter { received: 0 }) as Box<dyn Process<u64>>)
            .collect();
        let out = engine.run_processes(3, &mut procs);
        assert_eq!(out.rounds_run, 3);
        // every node broadcasts each round: 3 nodes x 2 peers x 3 rounds
        assert_eq!(out.sent, 18);
        assert_eq!(out.delivered, 18);
    }

    #[test]
    #[should_panic(expected = "one process per node")]
    fn process_count_checked() {
        let mut engine = RoundEngine::<u64>::new(Topology::complete(3), 1);
        let mut procs: Vec<Box<dyn Process<u64>>> = Vec::new();
        engine.run_processes(1, &mut procs);
    }

    #[test]
    fn closure_run_variant() {
        let mut engine = RoundEngine::<u32>::new(Topology::complete(3), 1);
        let outcome = engine.run(1, |ctx| ctx.broadcast(1));
        assert_eq!(outcome.sent, 6);
        assert_eq!(outcome.rounds_run, 1);
    }
}
