//! Event-driven synchronous round engine.
//!
//! The engine implements the paper's system model:
//!
//! * execution proceeds in numbered rounds, but the rounds are *emergent*:
//!   the engine drains a deterministic event queue ([`crate::sched`]) of
//!   per-message delivery events and per-node round-timeout timers, and a
//!   node executes round `r` when its round-`r` timer fires;
//! * a message sent in round `r` is delivered at the start of round `r+1`
//!   (if it survives faults, links and the deadline);
//! * a receiver can *detect absence*: when its timer fires, its inbox
//!   simply lacks an entry from the silent sender, and [`RoundCtx::from`]
//!   returns `None` — absence detection is a timeout, not an oracle;
//! * the source of every delivered message is authentic ([`RoundCtx`]
//!   stamps the true sender; processes cannot forge the `src` field —
//!   matching the paper's "oral messages" assumption (c)).
//!
//! Virtual time is quantised: round `r` occupies `[r*(deadline+1),
//! (r+1)*(deadline+1))`, so a sampled latency within the deadline lands the
//! message before the receiver's next timer and a latency beyond it misses
//! the round entirely (read as absent — the late message is discarded at
//! the boundary, never delivered stale). Delivery events sort before
//! timers at equal time, so an arrival *exactly at* the timeout boundary
//! is present, not absent.
//!
//! Processes are either closures (see [`RoundEngine::run`]) or stateful
//! [`Process`] implementations (see [`RoundEngine::run_processes`]).

use crate::fault::{FaultPlan, FaultSchedule};
use crate::id::NodeId;
use crate::latency::LatencyModel;
use crate::linkfault::{LinkFaultKind, LinkFaultPlan};
use crate::rng::SimRng;
use crate::sched::{EventClass, EventQueue, SimTime};
use crate::topology::Topology;
use crate::trace::{LateCause, Trace, TraceConfig, TraceEvent};
use obs::Obs;

/// Protocol-supplied mutator applied to messages hit by
/// [`LinkFaultKind::Corrupt`]. Returning `Some` delivers the garbled
/// payload; returning `None` drops the message (absence — the engine's
/// default when no corruptor is installed, matching the oral-message axiom
/// that detectably damaged messages read as absent).
pub type Corruptor<M> = Box<dyn FnMut(&M, &mut SimRng) -> Option<M>>;

/// Stream label for the dedicated link-chaos RNG fork: chaos draws must not
/// perturb the engine's main stream (latency, omission), so existing seeded
/// runs stay bit-identical when no link faults are configured.
const LINK_CHAOS_STREAM: u64 = 0x4C49_4E4B;

/// Payload of a scheduled engine event: either a message delivery at the
/// receiver or a per-node round timer.
enum EngineEvent<M> {
    /// A message arriving at `dst`. `counted` records whether the engine
    /// already booked the delivery (counter + trace) at send time — true
    /// for on-time messages, false for reorder-held copies, which are
    /// booked when they actually land (matching when the receiver, and
    /// any observer tailing the trace, first sees them).
    Deliver {
        dst: NodeId,
        src: NodeId,
        sent_round: usize,
        latency: u64,
        payload: M,
        counted: bool,
    },
    /// Node `node`'s round-`round` timeout fires: whatever has not arrived
    /// by now is absent for this round.
    Timer { node: usize, round: usize },
}

/// Per-node, per-round context handed to process logic.
#[derive(Debug)]
pub struct RoundCtx<'a, M> {
    me: NodeId,
    round: usize,
    n: usize,
    inbox: &'a [(NodeId, M)],
    peers: &'a [NodeId],
    outbox: Vec<(NodeId, M)>,
}

impl<'a, M: Clone> RoundCtx<'a, M> {
    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The current round number (0-based).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Total number of nodes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Ids of this node's direct neighbours, ascending. Borrowed from the
    /// engine — this is called in the per-round hot path, so it must not
    /// allocate.
    pub fn peers(&self) -> &[NodeId] {
        self.peers
    }

    /// Messages delivered at the start of this round, as `(src, payload)`
    /// sorted by source id (stable for determinism). Multiple messages from
    /// the same source are all present.
    pub fn inbox(&self) -> &[(NodeId, M)] {
        self.inbox
    }

    /// First message from `src` this round, if any. `None` means the
    /// message is *detectably absent* (paper assumption (b)).
    pub fn from(&self, src: NodeId) -> Option<&M> {
        self.inbox.iter().find(|(s, _)| *s == src).map(|(_, m)| m)
    }

    /// Whether no message from `src` arrived this round.
    pub fn absent(&self, src: NodeId) -> bool {
        self.from(src).is_none()
    }

    /// Queues a message to `to` (delivered next round if a link exists).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Queues `msg` to every direct neighbour.
    pub fn broadcast(&mut self, msg: M) {
        for &p in self.peers {
            self.outbox.push((p, msg.clone()));
        }
    }
}

/// A stateful per-node process.
pub trait Process<M> {
    /// Called once per round with the messages delivered this round; queue
    /// outgoing messages through the context.
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, M>);
}

impl<M, F: FnMut(&mut RoundCtx<'_, M>)> Process<M> for F {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, M>) {
        self(ctx)
    }
}

/// Perf counters for the arena-backed EIG engine (`degradable::engine`).
///
/// Protocol adapters that fold their receive trees through the shared
/// arena engine attach these counters to [`Outcome::eig`] so experiment
/// reports can surface memoization effectiveness alongside the network
/// counters.
///
/// Equality deliberately **ignores the wall-time fields**
/// (`fill_nanos`, `resolve_nanos`): two runs that performed identical
/// work compare equal even though their timings differ, which keeps
/// harness reports and `Outcome` comparisons bit-stable across machines
/// and worker counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct EigPerf {
    /// EIG nodes allocated in the shared arena (one per label σ, shared
    /// by all receivers).
    pub arena_nodes: u64,
    /// VOTE applications actually computed during bottom-up resolution.
    pub votes_evaluated: u64,
    /// VOTE applications answered from a memoized uniform-subtree
    /// summary instead of being recomputed per receiver.
    pub votes_memo_hit: u64,
    /// Tree slots materialized from relay envelopes (first writes only;
    /// duplicates are folded idempotently and not counted).
    pub messages_materialized: u64,
    /// Subtrees the early-stopping optimization cut at their frontier:
    /// nodes whose certified-fault-set condition held and whose children
    /// were therefore neither filled nor relayed. Zero when early
    /// stopping is off.
    pub subtrees_pruned: u64,
    /// Relay messages that early stopping avoided sending (one per
    /// receiver per skipped relay envelope). Zero when early stopping is
    /// off.
    pub messages_saved: u64,
    /// Wall time of the breadth-first fill phase, in nanoseconds.
    /// Ignored by `==`.
    pub fill_nanos: u64,
    /// Wall time of the bottom-up resolution phase, in nanoseconds.
    /// Ignored by `==`.
    pub resolve_nanos: u64,
}

impl PartialEq for EigPerf {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring: adding a counter to EigPerf without
        // deciding whether it participates in equality is a compile
        // error here (and in `scrub_timing` below).
        let EigPerf {
            arena_nodes,
            votes_evaluated,
            votes_memo_hit,
            messages_materialized,
            subtrees_pruned,
            messages_saved,
            fill_nanos: _,
            resolve_nanos: _,
        } = *self;
        let EigPerf {
            arena_nodes: o_arena_nodes,
            votes_evaluated: o_votes_evaluated,
            votes_memo_hit: o_votes_memo_hit,
            messages_materialized: o_messages_materialized,
            subtrees_pruned: o_subtrees_pruned,
            messages_saved: o_messages_saved,
            fill_nanos: _,
            resolve_nanos: _,
        } = *other;
        arena_nodes == o_arena_nodes
            && votes_evaluated == o_votes_evaluated
            && votes_memo_hit == o_votes_memo_hit
            && messages_materialized == o_messages_materialized
            && subtrees_pruned == o_subtrees_pruned
            && messages_saved == o_messages_saved
    }
}

impl Eq for EigPerf {}

impl obs::ScrubTiming for EigPerf {
    fn scrub_timing(&mut self) {
        let EigPerf {
            arena_nodes: _,
            votes_evaluated: _,
            votes_memo_hit: _,
            messages_materialized: _,
            subtrees_pruned: _,
            messages_saved: _,
            fill_nanos,
            resolve_nanos,
        } = self;
        *fill_nanos = 0;
        *resolve_nanos = 0;
    }
}

impl obs::ScrubTiming for Outcome {
    fn scrub_timing(&mut self) {
        obs::scrub_timing(&mut self.eig);
    }
}

impl EigPerf {
    /// Deterministic counters only (everything `==` compares), in a
    /// stable order: arena nodes, votes evaluated, votes memo-hit,
    /// messages materialized, subtrees pruned, messages saved. Handy for
    /// reports that must stay bit-identical across worker counts.
    pub fn deterministic_counters(&self) -> [u64; 6] {
        [
            self.arena_nodes,
            self.votes_evaluated,
            self.votes_memo_hit,
            self.messages_materialized,
            self.subtrees_pruned,
            self.messages_saved,
        ]
    }

    /// Folds the deterministic counters into an observability registry
    /// under the canonical `eig.*` names — the compat shim that lets
    /// report schema v4 re-express `EigPerf` as registry counters.
    pub fn fold_into(&self, registry: &mut obs::Registry) {
        registry.add("eig.arena_nodes", self.arena_nodes);
        registry.add("eig.votes_evaluated", self.votes_evaluated);
        registry.add("eig.votes_memo_hit", self.votes_memo_hit);
        registry.add("eig.messages_materialized", self.messages_materialized);
        registry.add("eig.subtrees_pruned", self.subtrees_pruned);
        registry.add("eig.messages_saved", self.messages_saved);
    }

    /// Accumulate another run's counters into this one (timings add
    /// too, so aggregated wall times stay meaningful).
    pub fn absorb(&mut self, other: &EigPerf) {
        self.arena_nodes += other.arena_nodes;
        self.votes_evaluated += other.votes_evaluated;
        self.votes_memo_hit += other.votes_memo_hit;
        self.messages_materialized += other.messages_materialized;
        self.subtrees_pruned += other.subtrees_pruned;
        self.messages_saved += other.messages_saved;
        self.fill_nanos += other.fill_nanos;
        self.resolve_nanos += other.resolve_nanos;
    }
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Outcome {
    /// Rounds executed.
    pub rounds_run: usize,
    /// Messages handed to the engine by processes.
    pub sent: usize,
    /// Messages delivered before the deadline.
    pub delivered: usize,
    /// Messages dropped by crash faults.
    pub dropped_crash: usize,
    /// Messages dropped by omission faults.
    pub dropped_omission: usize,
    /// Messages that arrived after the deadline (absent to the receiver).
    pub late: usize,
    /// Messages discarded for lack of a topology link.
    pub no_link: usize,
    /// Messages dropped by a link cut.
    pub dropped_link_cut: usize,
    /// Messages lost to probabilistic link loss.
    pub dropped_link_loss: usize,
    /// Extra copies injected by link duplication.
    pub duplicated: usize,
    /// Messages delayed at least one extra round by link reordering.
    pub reordered: usize,
    /// Messages garbled in flight but still delivered (corruptor produced a
    /// mutated payload).
    pub corrupted: usize,
    /// Messages garbled in flight and discarded (no corruptor, or the
    /// corruptor mapped them to absence).
    pub dropped_corrupt: usize,
    /// Arena-backed EIG evaluation counters, populated by protocol
    /// adapters that resolve their receive trees through the shared
    /// engine (zeroed for runs that never fold an EIG tree). Wall-time
    /// fields do not participate in `Outcome` equality.
    pub eig: EigPerf,
}

impl Outcome {
    /// Total chaos-layer injections (cuts, losses, duplicates, reorders and
    /// corruptions) — the per-trial injected-fault count experiments report.
    pub fn link_fault_injections(&self) -> usize {
        self.dropped_link_cut
            + self.dropped_link_loss
            + self.duplicated
            + self.reordered
            + self.corrupted
            + self.dropped_corrupt
    }
}

/// The synchronous round engine.
///
/// ```
/// use simnet::prelude::*;
///
/// let mut engine = RoundEngine::<u32>::new(Topology::complete(3), 1);
/// let outcome = engine.run(1, |ctx| {
///     ctx.broadcast(ctx.me().index() as u32);
/// });
/// assert_eq!(outcome.sent, 6); // 3 nodes x 2 peers
/// ```
pub struct RoundEngine<M> {
    topo: Topology,
    rng: SimRng,
    faults: FaultPlan,
    schedule: Option<FaultSchedule>,
    link_faults: LinkFaultPlan,
    corruptor: Option<Corruptor<M>>,
    latency: LatencyModel,
    deadline: u64,
    trace: Option<Trace>,
    obs: Obs,
    _marker: std::marker::PhantomData<M>,
}

impl<M> std::fmt::Debug for RoundEngine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundEngine")
            .field("topo", &self.topo)
            .field("faults", &self.faults)
            .field("schedule", &self.schedule)
            .field("link_faults", &self.link_faults)
            .field("corruptor", &self.corruptor.as_ref().map(|_| "<fn>"))
            .field("latency", &self.latency)
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl<M: Clone> RoundEngine<M> {
    /// Creates an engine over `topo` with the given seed, no faults, zero
    /// latency and an infinite deadline.
    pub fn new(topo: Topology, seed: u64) -> Self {
        RoundEngine {
            topo,
            rng: SimRng::seed(seed),
            faults: FaultPlan::healthy(),
            schedule: None,
            link_faults: LinkFaultPlan::healthy(),
            corruptor: None,
            latency: LatencyModel::Zero,
            deadline: u64::MAX,
            trace: None,
            obs: Obs::disabled(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Sets the fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets a time-varying fault schedule (overrides the static plan).
    #[must_use]
    pub fn with_fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Sets the link-fault (chaos) plan. Link faults apply after node
    /// faults and the topology check, drawing randomness from a dedicated
    /// fork of the engine seed so runs without link faults are unaffected.
    #[must_use]
    pub fn with_link_faults(mut self, link_faults: LinkFaultPlan) -> Self {
        self.link_faults = link_faults;
        self
    }

    /// Installs the corruption mutator used by [`LinkFaultKind::Corrupt`].
    /// Without one, corrupted messages are dropped (read as absent).
    #[must_use]
    pub fn with_corruptor(
        mut self,
        corruptor: impl FnMut(&M, &mut SimRng) -> Option<M> + 'static,
    ) -> Self {
        self.corruptor = Some(Box::new(corruptor));
        self
    }

    /// Sets the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the round deadline: messages with sampled latency strictly
    /// greater than `deadline` are late (absent to the receiver).
    #[must_use]
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        self.deadline = deadline;
        self
    }

    /// Enables event tracing with unbounded retention.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(Trace::new());
        self
    }

    /// Enables event tracing with an explicit retention policy
    /// (bounded configs ring-buffer the most recent events and count
    /// evictions — see [`TraceConfig`]).
    #[must_use]
    pub fn with_trace_config(mut self, config: TraceConfig) -> Self {
        self.trace = Some(Trace::with_config(config));
        self
    }

    /// Enables observability recording: per-round spans (logical cost
    /// = messages processed) plus disposition counters under `sim.*`
    /// names, retrievable via [`RoundEngine::obs`].
    #[must_use]
    pub fn with_obs(mut self) -> Self {
        self.obs = Obs::enabled();
        self
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The observability recorder (disabled and empty unless
    /// [`RoundEngine::with_obs`] was called).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Takes the recorded observability data, leaving a fresh recorder
    /// in the same enabled state (so callers can drain per-run).
    pub fn take_obs(&mut self) -> Obs {
        let fresh = if self.obs.is_enabled() {
            Obs::enabled()
        } else {
            Obs::disabled()
        };
        std::mem::replace(&mut self.obs, fresh)
    }

    /// The topology this engine runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The link-fault plan.
    pub fn link_faults(&self) -> &LinkFaultPlan {
        &self.link_faults
    }

    /// Runs `rounds` rounds where every node executes the same closure.
    pub fn run(&mut self, rounds: usize, mut step: impl FnMut(&mut RoundCtx<'_, M>)) -> Outcome {
        self.run_with(rounds, |_, ctx| step(ctx))
    }

    /// Runs `rounds` rounds with per-node stateful processes;
    /// `processes[i]` drives node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `processes.len()` differs from the node count.
    pub fn run_processes(
        &mut self,
        rounds: usize,
        processes: &mut [Box<dyn Process<M>>],
    ) -> Outcome {
        assert_eq!(
            processes.len(),
            self.topo.node_count(),
            "one process per node required"
        );
        self.run_with(rounds, |i, ctx| processes[i].on_round(ctx))
    }

    /// Core loop: `step(i, ctx)` is invoked for node `i` each round.
    pub fn run_with(
        &mut self,
        rounds: usize,
        mut step: impl FnMut(usize, &mut RoundCtx<'_, M>),
    ) -> Outcome {
        let n = self.topo.node_count();
        let mut outcome = Outcome::default();
        let peers: Vec<Vec<NodeId>> = (0..n)
            .map(|i| self.topo.graph().neighbors(NodeId::new(i)).collect())
            .collect();
        // Chaos draws come from a dedicated fork: configurations without
        // link faults replay the exact pre-chaos main stream (latency,
        // omission), keeping historical seeded runs bit-identical.
        let mut link_rng = self.rng.fork(LINK_CHAOS_STREAM);
        // Round r occupies virtual time [r*quantum, (r+1)*quantum): any
        // within-deadline latency lands on or before the receiver's next
        // timer boundary.
        let quantum: SimTime = SimTime::from(self.deadline).saturating_add(1);
        let mut queue: EventQueue<EngineEvent<M>> = EventQueue::new();
        // Rounds are emergent from timers: every node gets one timeout per
        // round, scheduled in (round, node) order so equal-time timers pop
        // in ascending node id.
        for round in 0..rounds {
            for node in 0..n {
                queue.schedule(
                    round as SimTime * quantum,
                    EventClass::Timer,
                    EngineEvent::Timer { node, round },
                );
            }
        }
        // Per-node receive buffers for the round in progress: on-time
        // arrivals first, reorder-held arrivals appended, then a stable
        // sort by source — the paper-visible inbox order.
        let mut on_time: Vec<Vec<(NodeId, M)>> = vec![Vec::new(); n];
        let mut held: Vec<Vec<(NodeId, M)>> = vec![Vec::new(); n];

        for round in 0..rounds {
            let boundary = round as SimTime * quantum;
            let round_timer = self.obs.span("sim.round", vec![("round", round as u64)]);
            let work_before = outcome.sent + outcome.delivered;
            let active: FaultPlan = match &self.schedule {
                Some(s) => s.active(round),
                None => self.faults.clone(),
            };
            // Drain every event at this round's boundary. Deliveries pop
            // before timers (a message arriving exactly at the timeout is
            // present), timers pop in node-id order, and each fired timer
            // may schedule future deliveries (strictly later boundaries).
            while queue.peek_time() == Some(boundary) {
                let event = queue.pop().expect("peeked event exists");
                let timer = match event.payload {
                    EngineEvent::Deliver {
                        dst,
                        src,
                        sent_round,
                        latency,
                        payload,
                        counted,
                    } => {
                        if counted {
                            // Booked at send time; just land it.
                            on_time[dst.index()].push((src, payload));
                        } else {
                            // Reorder-held copy: booked on arrival.
                            outcome.delivered += 1;
                            if let Some(t) = self.trace.as_mut() {
                                t.record(TraceEvent::Delivered {
                                    round: sent_round,
                                    src,
                                    dst,
                                    latency,
                                });
                            }
                            held[dst.index()].push((src, payload));
                        }
                        continue;
                    }
                    EngineEvent::Timer { node, round: r } => {
                        debug_assert_eq!(r, round, "timer fired outside its round");
                        node
                    }
                };
                let i = timer;
                let me = NodeId::new(i);
                // Absence detection: whatever is not in the buffers when
                // this timer fires is absent for round `round`.
                let mut inbox = std::mem::take(&mut on_time[i]);
                inbox.append(&mut held[i]);
                // Sort inbox by source for determinism.
                inbox.sort_by_key(|(s, _)| *s);
                let mut ctx = RoundCtx {
                    me,
                    round,
                    n,
                    inbox: &inbox,
                    peers: &peers[i],
                    outbox: Vec::new(),
                };
                step(i, &mut ctx);
                let outbox = ctx.outbox;
                for (dst, msg) in outbox {
                    outcome.sent += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.record(TraceEvent::Sent {
                            round,
                            src: me,
                            dst,
                        });
                    }
                    if active.crashed(me, round) {
                        outcome.dropped_crash += 1;
                        if let Some(t) = self.trace.as_mut() {
                            t.record(TraceEvent::DroppedCrash {
                                round,
                                src: me,
                                dst,
                            });
                        }
                        continue;
                    }
                    let om = active.omission_p(me);
                    if om > 0.0 && self.rng.chance(om) {
                        outcome.dropped_omission += 1;
                        if let Some(t) = self.trace.as_mut() {
                            t.record(TraceEvent::DroppedOmission {
                                round,
                                src: me,
                                dst,
                            });
                        }
                        continue;
                    }
                    if !self.topo.graph().has_edge(me, dst) {
                        outcome.no_link += 1;
                        if let Some(t) = self.trace.as_mut() {
                            t.record(TraceEvent::NoLink {
                                round,
                                src: me,
                                dst,
                            });
                        }
                        continue;
                    }
                    // Link chaos: each configured kind on this directed
                    // edge acts in insertion order, drawing only from the
                    // dedicated chaos stream.
                    let mut payload = msg;
                    let mut duplicate = false;
                    let mut extra_rounds = 0usize;
                    let mut killed = false;
                    for kind in self.link_faults.kinds(me, dst).to_vec() {
                        match kind {
                            LinkFaultKind::Cut { from_round } => {
                                if round >= from_round {
                                    outcome.dropped_link_cut += 1;
                                    if let Some(t) = self.trace.as_mut() {
                                        t.record(TraceEvent::LinkCut {
                                            round,
                                            src: me,
                                            dst,
                                        });
                                    }
                                    killed = true;
                                    break;
                                }
                            }
                            LinkFaultKind::Drop { p } => {
                                if p > 0.0 && link_rng.chance(p) {
                                    outcome.dropped_link_loss += 1;
                                    if let Some(t) = self.trace.as_mut() {
                                        t.record(TraceEvent::LinkDropped {
                                            round,
                                            src: me,
                                            dst,
                                        });
                                    }
                                    killed = true;
                                    break;
                                }
                            }
                            LinkFaultKind::Corrupt { p } => {
                                if p > 0.0 && link_rng.chance(p) {
                                    let garbled = self
                                        .corruptor
                                        .as_mut()
                                        .and_then(|c| c(&payload, &mut link_rng));
                                    match garbled {
                                        Some(g) => {
                                            payload = g;
                                            outcome.corrupted += 1;
                                            if let Some(t) = self.trace.as_mut() {
                                                t.record(TraceEvent::LinkCorrupted {
                                                    round,
                                                    src: me,
                                                    dst,
                                                    delivered: true,
                                                });
                                            }
                                        }
                                        None => {
                                            outcome.dropped_corrupt += 1;
                                            if let Some(t) = self.trace.as_mut() {
                                                t.record(TraceEvent::LinkCorrupted {
                                                    round,
                                                    src: me,
                                                    dst,
                                                    delivered: false,
                                                });
                                            }
                                            killed = true;
                                            break;
                                        }
                                    }
                                }
                            }
                            LinkFaultKind::Duplicate { p } => {
                                if p > 0.0 && !duplicate && link_rng.chance(p) {
                                    duplicate = true;
                                    outcome.duplicated += 1;
                                    if let Some(t) = self.trace.as_mut() {
                                        t.record(TraceEvent::LinkDuplicated {
                                            round,
                                            src: me,
                                            dst,
                                        });
                                    }
                                }
                            }
                            LinkFaultKind::Reorder { window } => {
                                if window > 0 && extra_rounds == 0 {
                                    let d = link_rng.below(window as u64 + 1) as usize;
                                    if d > 0 {
                                        extra_rounds = d;
                                        outcome.reordered += 1;
                                        if let Some(t) = self.trace.as_mut() {
                                            t.record(TraceEvent::LinkReordered {
                                                round,
                                                src: me,
                                                dst,
                                                delay: d,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                    if killed {
                        continue;
                    }
                    let base_latency = self.latency.sample(&mut self.rng);
                    let latency = base_latency + active.extra_delay(me);
                    if latency > self.deadline {
                        outcome.late += 1;
                        if let Some(t) = self.trace.as_mut() {
                            let cause = if base_latency <= self.deadline {
                                LateCause::DelayFault
                            } else {
                                LateCause::Deadline
                            };
                            t.record(TraceEvent::Late {
                                round,
                                src: me,
                                dst,
                                latency,
                                cause,
                            });
                        }
                        continue;
                    }
                    let copies = if duplicate { 2 } else { 1 };
                    for _ in 0..copies {
                        if extra_rounds > 0 {
                            // Delivery shifts from round+1 to
                            // round+1+extra_rounds; events scheduled past
                            // the final timer are never popped — messages
                            // still in flight when the run ends are lost.
                            queue.schedule(
                                (round + 1 + extra_rounds) as SimTime * quantum,
                                EventClass::Deliver,
                                EngineEvent::Deliver {
                                    dst,
                                    src: me,
                                    sent_round: round,
                                    latency,
                                    payload: payload.clone(),
                                    counted: false,
                                },
                            );
                            continue;
                        }
                        outcome.delivered += 1;
                        if let Some(t) = self.trace.as_mut() {
                            t.record(TraceEvent::Delivered {
                                round,
                                src: me,
                                dst,
                                latency,
                            });
                        }
                        queue.schedule(
                            (round + 1) as SimTime * quantum,
                            EventClass::Deliver,
                            EngineEvent::Deliver {
                                dst,
                                src: me,
                                sent_round: round,
                                latency,
                                payload: payload.clone(),
                                counted: true,
                            },
                        );
                    }
                }
            }
            outcome.rounds_run += 1;
            let logical = (outcome.sent + outcome.delivered - work_before) as u64;
            self.obs.finish(round_timer, logical);
        }
        if self.obs.is_enabled() {
            for (name, value) in [
                ("sim.rounds", outcome.rounds_run),
                ("sim.sent", outcome.sent),
                ("sim.delivered", outcome.delivered),
                ("sim.dropped.crash", outcome.dropped_crash),
                ("sim.dropped.omission", outcome.dropped_omission),
                ("sim.dropped.late", outcome.late),
                ("sim.dropped.no_link", outcome.no_link),
                ("sim.dropped.link_cut", outcome.dropped_link_cut),
                ("sim.dropped.link_loss", outcome.dropped_link_loss),
                ("sim.dropped.corrupt", outcome.dropped_corrupt),
                ("sim.link.duplicated", outcome.duplicated),
                ("sim.link.reordered", outcome.reordered),
                ("sim.link.corrupted", outcome.corrupted),
            ] {
                self.obs.add(name, value as u64);
            }
            if let Some(trace) = &self.trace {
                self.obs.set_counter("sim.trace_dropped", trace.dropped());
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn broadcast_delivers_next_round() {
        let mut engine = RoundEngine::<u64>::new(Topology::complete(3), 1);
        let mut seen: Vec<Vec<u64>> = vec![Vec::new(); 3];
        engine.run_with(2, |i, ctx| {
            if ctx.round() == 0 {
                ctx.broadcast(10 + i as u64);
            } else {
                seen[i] = ctx.inbox().iter().map(|(_, m)| *m).collect();
            }
        });
        assert_eq!(seen[0], vec![11, 12]);
        assert_eq!(seen[1], vec![10, 12]);
        assert_eq!(seen[2], vec![10, 11]);
    }

    #[test]
    fn crash_fault_silences_sender() {
        let faults = FaultPlan::healthy().with(n(0), FaultKind::Crash { from_round: 0 });
        let mut engine = RoundEngine::<u8>::new(Topology::complete(3), 1).with_faults(faults);
        let mut got_from_zero = false;
        let outcome = engine.run_with(2, |i, ctx| {
            if ctx.round() == 0 {
                ctx.broadcast(1);
            } else if i != 0 && !ctx.absent(n(0)) {
                got_from_zero = true;
            }
        });
        assert!(!got_from_zero, "crashed node must be absent");
        assert_eq!(outcome.dropped_crash, 2);
    }

    #[test]
    fn absence_is_detectable() {
        let mut engine = RoundEngine::<u8>::new(Topology::complete(3), 1);
        let mut absent_seen = false;
        engine.run_with(2, |i, ctx| {
            if ctx.round() == 0 && i != 1 {
                ctx.broadcast(7); // node 1 stays silent
            }
            if ctx.round() == 1 && i == 0 {
                absent_seen = ctx.absent(n(1)) && !ctx.absent(n(2));
            }
        });
        assert!(absent_seen);
    }

    #[test]
    fn messages_to_non_neighbors_are_discarded() {
        let mut engine = RoundEngine::<u8>::new(Topology::path(3), 1);
        let outcome = engine.run_with(2, |i, ctx| {
            if ctx.round() == 0 && i == 0 {
                ctx.send(n(2), 5); // no 0-2 edge in a path
                ctx.send(n(1), 5);
            }
        });
        assert_eq!(outcome.no_link, 1);
        assert_eq!(outcome.delivered, 1);
    }

    #[test]
    fn deadline_makes_slow_messages_absent() {
        let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 3)
            .with_latency(LatencyModel::Fixed(10))
            .with_deadline(5);
        let mut delivered_any = false;
        let outcome = engine.run_with(2, |_, ctx| {
            if ctx.round() == 0 {
                ctx.broadcast(1);
            } else if !ctx.inbox().is_empty() {
                delivered_any = true;
            }
        });
        assert!(!delivered_any);
        assert_eq!(outcome.late, 2);
    }

    #[test]
    fn delay_fault_pushes_past_deadline() {
        let faults = FaultPlan::healthy().with(n(0), FaultKind::Delay { extra: 100 });
        let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 3)
            .with_faults(faults)
            .with_deadline(50);
        let outcome = engine.run_with(2, |_, ctx| {
            if ctx.round() == 0 {
                ctx.broadcast(1);
            }
        });
        assert_eq!(outcome.late, 1); // node 0's message
        assert_eq!(outcome.delivered, 1); // node 1's message
    }

    #[test]
    fn trace_records_dispositions() {
        let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 1).with_trace();
        engine.run_with(2, |_, ctx| {
            if ctx.round() == 0 {
                ctx.broadcast(1);
            }
        });
        let trace = engine.trace().unwrap();
        assert_eq!(trace.count(|e| matches!(e, TraceEvent::Sent { .. })), 2);
        assert_eq!(
            trace.count(|e| matches!(e, TraceEvent::Delivered { .. })),
            2
        );
    }

    #[test]
    fn fault_schedule_bursts_and_recovers() {
        use crate::fault::FaultSchedule;
        // Node 0 crashes only during rounds 1..3.
        let schedule = FaultSchedule::healthy()
            .then_from(
                1,
                FaultPlan::healthy().with(n(0), FaultKind::Crash { from_round: 0 }),
            )
            .then_from(3, FaultPlan::healthy());
        let mut engine =
            RoundEngine::<u8>::new(Topology::complete(2), 1).with_fault_schedule(schedule);
        let mut heard_from_zero = [false; 5];
        engine.run_with(5, |i, ctx| {
            ctx.broadcast(1);
            if i == 1 && ctx.round() > 0 {
                heard_from_zero[ctx.round()] = !ctx.absent(n(0));
            }
        });
        // round r inbox reflects sends of round r-1: silent in 1..3.
        assert!(heard_from_zero[1]); // sent in round 0 (healthy)
        assert!(!heard_from_zero[2]); // sent in round 1 (crashed)
        assert!(!heard_from_zero[3]); // sent in round 2 (crashed)
        assert!(heard_from_zero[4]); // sent in round 3 (recovered)
    }

    #[test]
    fn identical_seeds_identical_outcomes() {
        let faults = FaultPlan::healthy().with(n(1), FaultKind::Omission { p: 0.5 });
        let run = |seed: u64| {
            let mut engine =
                RoundEngine::<u8>::new(Topology::complete(4), seed).with_faults(faults.clone());
            engine.run_with(3, |_, ctx| {
                ctx.broadcast(0);
            })
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).dropped_omission, 0); // at least one drop at p=0.5 over 9 msgs (seed-checked)
    }

    #[test]
    fn link_cut_drops_from_its_round() {
        let plan = LinkFaultPlan::healthy().with(n(0), n(1), LinkFaultKind::Cut { from_round: 1 });
        let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 1)
            .with_link_faults(plan)
            .with_trace();
        let mut heard = [false; 3];
        let outcome = engine.run_with(3, |i, ctx| {
            ctx.broadcast(1);
            if i == 1 && ctx.round() > 0 {
                heard[ctx.round()] = !ctx.absent(n(0));
            }
        });
        assert!(heard[1], "round-0 send predates the cut");
        assert!(!heard[2], "round-1 send hits the cut");
        assert_eq!(outcome.dropped_link_cut, 2); // rounds 1 and 2
        let trace = engine.trace().unwrap();
        assert_eq!(trace.count(|e| matches!(e, TraceEvent::LinkCut { .. })), 2);
    }

    #[test]
    fn link_drop_is_one_directional() {
        let plan = LinkFaultPlan::healthy().with(n(0), n(1), LinkFaultKind::Drop { p: 1.0 });
        let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 1).with_link_faults(plan);
        let mut one_heard = false;
        let mut zero_heard = false;
        let outcome = engine.run_with(2, |i, ctx| {
            ctx.broadcast(1);
            if ctx.round() == 1 {
                if i == 1 {
                    one_heard = !ctx.absent(n(0));
                } else {
                    zero_heard = !ctx.absent(n(1));
                }
            }
        });
        assert!(!one_heard, "0->1 is fully lossy");
        assert!(zero_heard, "1->0 is healthy");
        assert_eq!(outcome.dropped_link_loss, 2);
    }

    #[test]
    fn link_duplicate_delivers_two_copies() {
        let plan = LinkFaultPlan::healthy().with(n(0), n(1), LinkFaultKind::Duplicate { p: 1.0 });
        let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 1).with_link_faults(plan);
        let mut copies = 0;
        let outcome = engine.run_with(2, |i, ctx| {
            if ctx.round() == 0 && i == 0 {
                ctx.send(n(1), 7);
            }
            if ctx.round() == 1 && i == 1 {
                copies = ctx.inbox().iter().filter(|(s, _)| *s == n(0)).count();
            }
        });
        assert_eq!(copies, 2);
        assert_eq!(outcome.duplicated, 1);
        assert_eq!(outcome.delivered, 2);
        assert_eq!(outcome.sent, 1);
    }

    #[test]
    fn link_reorder_delays_delivery_by_window_rounds() {
        // window = 1 forces delay in {0, 1}; run enough messages that both
        // on-time and delayed deliveries occur, and assert every message
        // arrives exactly once, in round +1 or +2.
        let plan = LinkFaultPlan::healthy().with(n(0), n(1), LinkFaultKind::Reorder { window: 1 });
        let mut engine = RoundEngine::<u64>::new(Topology::complete(2), 5).with_link_faults(plan);
        let mut arrivals: Vec<(usize, u64)> = Vec::new(); // (arrival round, tag)
        let outcome = engine.run_with(8, |i, ctx| {
            if i == 0 && ctx.round() < 5 {
                ctx.send(n(1), ctx.round() as u64);
            }
            if i == 1 {
                for (_, tag) in ctx.inbox() {
                    arrivals.push((ctx.round(), *tag));
                }
            }
        });
        assert_eq!(arrivals.len(), 5, "every message arrives exactly once");
        for (arrived, tag) in &arrivals {
            let sent = *tag as usize;
            assert!(
                *arrived == sent + 1 || *arrived == sent + 2,
                "tag {tag} sent r{sent} arrived r{arrived}"
            );
        }
        assert!(outcome.reordered > 0, "seed-checked: some delay drawn");
        assert_eq!(outcome.delivered, 5);
    }

    #[test]
    fn corrupt_without_corruptor_reads_as_absence() {
        let plan = LinkFaultPlan::healthy().with(n(0), n(1), LinkFaultKind::Corrupt { p: 1.0 });
        let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 1)
            .with_link_faults(plan)
            .with_trace();
        let mut heard = false;
        let outcome = engine.run_with(2, |i, ctx| {
            if ctx.round() == 0 && i == 0 {
                ctx.send(n(1), 7);
            }
            if ctx.round() == 1 && i == 1 {
                heard = !ctx.absent(n(0));
            }
        });
        assert!(!heard, "corruption without a corruptor is absence");
        assert_eq!(outcome.dropped_corrupt, 1);
        assert_eq!(
            engine.trace().unwrap().count(|e| matches!(
                e,
                TraceEvent::LinkCorrupted {
                    delivered: false,
                    ..
                }
            )),
            1
        );
    }

    #[test]
    fn corruptor_mutates_payload_in_flight() {
        let plan = LinkFaultPlan::healthy().with(n(0), n(1), LinkFaultKind::Corrupt { p: 1.0 });
        let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 1)
            .with_link_faults(plan)
            .with_corruptor(|m: &u8, _rng: &mut SimRng| Some(m ^ 0xFF));
        let mut got = None;
        let outcome = engine.run_with(2, |i, ctx| {
            if ctx.round() == 0 && i == 0 {
                ctx.send(n(1), 7);
            }
            if ctx.round() == 1 && i == 1 {
                got = ctx.from(n(0)).copied();
            }
        });
        assert_eq!(got, Some(7 ^ 0xFF));
        assert_eq!(outcome.corrupted, 1);
        assert_eq!(outcome.dropped_corrupt, 0);
    }

    #[test]
    fn chaos_draws_leave_main_stream_untouched() {
        // A run with link faults on an *unused* edge direction must produce
        // the same omission/latency decisions as a run without any plan:
        // chaos randomness comes only from the dedicated fork.
        let faults = FaultPlan::healthy().with(n(1), FaultKind::Omission { p: 0.5 });
        let run = |plan: LinkFaultPlan| {
            let mut engine = RoundEngine::<u8>::new(Topology::complete(4), 9)
                .with_faults(faults.clone())
                .with_link_faults(plan);
            engine.run_with(3, |_, ctx| {
                ctx.broadcast(0);
            })
        };
        let clean = run(LinkFaultPlan::healthy());
        let chaotic =
            run(LinkFaultPlan::healthy().with(n(2), n(3), LinkFaultKind::Duplicate { p: 1.0 }));
        assert_eq!(clean.dropped_omission, chaotic.dropped_omission);
        assert!(chaotic.duplicated > 0);
    }

    #[test]
    fn late_cause_distinguishes_deadline_from_delay_fault() {
        use crate::trace::LateCause;
        let run = |faults: FaultPlan, deadline: u64| {
            let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 3)
                .with_faults(faults)
                .with_latency(LatencyModel::Fixed(10))
                .with_deadline(deadline)
                .with_trace();
            engine.run_with(2, |_, ctx| {
                if ctx.round() == 0 {
                    ctx.broadcast(1);
                }
            });
            let trace = engine.trace().unwrap();
            (
                trace.count(|e| {
                    matches!(
                        e,
                        TraceEvent::Late {
                            cause: LateCause::DelayFault,
                            ..
                        }
                    )
                }),
                trace.count(|e| {
                    matches!(
                        e,
                        TraceEvent::Late {
                            cause: LateCause::Deadline,
                            ..
                        }
                    )
                }),
            )
        };
        // Node 0's delay fault pushes an otherwise on-time message over.
        let faults = FaultPlan::healthy().with(n(0), FaultKind::Delay { extra: 100 });
        assert_eq!(run(faults, 50), (1, 0));
        // Same base latency, tight deadline, no faults: pure deadline miss.
        assert_eq!(run(FaultPlan::healthy(), 5), (0, 2));
    }

    #[test]
    fn scheduled_crash_then_link_cut_does_not_double_count() {
        // Satellite: a node that crashes mid-run and *later* also has its
        // links cut. Every undelivered message must be attributed to
        // exactly one cause (crash wins, being checked first), and the
        // node-fault count ignores link faults entirely.
        use crate::fault::FaultSchedule;
        let schedule = FaultSchedule::healthy().then_from(
            1,
            FaultPlan::healthy().with(n(0), FaultKind::Crash { from_round: 0 }),
        );
        let plan = LinkFaultPlan::healthy()
            .with(n(0), n(1), LinkFaultKind::Cut { from_round: 2 })
            .with(n(1), n(0), LinkFaultKind::Cut { from_round: 2 });
        assert_eq!(schedule.peak_fault_count(), 1, "link cuts add no faults");
        let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 1)
            .with_fault_schedule(schedule)
            .with_link_faults(plan)
            .with_trace();
        let outcome = engine.run_with(4, |_, ctx| {
            ctx.broadcast(1);
        });
        // Node 0 sends 4 messages: round 0 delivered, rounds 1-3 crash.
        // Node 1 sends 4: rounds 0-1 delivered, rounds 2-3 link-cut.
        assert_eq!(outcome.dropped_crash, 3);
        assert_eq!(outcome.dropped_link_cut, 2);
        assert_eq!(outcome.delivered, 3);
        assert_eq!(
            outcome.dropped_crash + outcome.dropped_link_cut + outcome.delivered,
            outcome.sent,
            "each message has exactly one disposition"
        );
    }

    #[test]
    fn mid_run_fault_activation_with_cuts_recovers() {
        // FaultSchedule burst + link cut overlapping, then both clear
        // (the cut stays; the crash clears) — deliveries resume only on
        // the uncut direction.
        use crate::fault::FaultSchedule;
        let schedule = FaultSchedule::healthy()
            .then_from(
                1,
                FaultPlan::healthy().with(n(1), FaultKind::Crash { from_round: 0 }),
            )
            .then_from(2, FaultPlan::healthy());
        let plan = LinkFaultPlan::healthy().with(n(0), n(1), LinkFaultKind::Cut { from_round: 1 });
        let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 1)
            .with_fault_schedule(schedule)
            .with_link_faults(plan);
        let mut zero_heard_in = Vec::new();
        engine.run_with(4, |i, ctx| {
            ctx.broadcast(1);
            if i == 0 && ctx.round() > 0 && !ctx.absent(n(1)) {
                zero_heard_in.push(ctx.round());
            }
        });
        // 1->0 is never cut: only node 1's round-1 crash silences it.
        assert_eq!(zero_heard_in, vec![1, 3]);
    }

    #[test]
    fn stateful_processes_via_trait_objects() {
        // A per-node counter process: counts messages it has received and
        // gossips its running total.
        struct Counter {
            received: usize,
        }
        impl Process<u64> for Counter {
            fn on_round(&mut self, ctx: &mut RoundCtx<'_, u64>) {
                self.received += ctx.inbox().len();
                ctx.broadcast(self.received as u64);
            }
        }
        let mut engine = RoundEngine::<u64>::new(Topology::complete(3), 1);
        let mut procs: Vec<Box<dyn Process<u64>>> = (0..3)
            .map(|_| Box::new(Counter { received: 0 }) as Box<dyn Process<u64>>)
            .collect();
        let out = engine.run_processes(3, &mut procs);
        assert_eq!(out.rounds_run, 3);
        // every node broadcasts each round: 3 nodes x 2 peers x 3 rounds
        assert_eq!(out.sent, 18);
        assert_eq!(out.delivered, 18);
    }

    #[test]
    #[should_panic(expected = "one process per node")]
    fn process_count_checked() {
        let mut engine = RoundEngine::<u64>::new(Topology::complete(3), 1);
        let mut procs: Vec<Box<dyn Process<u64>>> = Vec::new();
        engine.run_processes(1, &mut procs);
    }

    #[test]
    fn obs_records_round_spans_and_disposition_counters() {
        let faults = FaultPlan::healthy().with(n(0), FaultKind::Crash { from_round: 1 });
        let mut engine = RoundEngine::<u8>::new(Topology::complete(3), 1)
            .with_faults(faults)
            .with_obs();
        let outcome = engine.run_with(3, |_, ctx| ctx.broadcast(1));
        let obs = engine.obs();
        let spans = obs.spans();
        assert_eq!(spans.len(), 3, "one span per round");
        assert_eq!(spans[0].name, "sim.round");
        assert_eq!(spans[0].args, vec![("round".to_string(), 0)]);
        // Round 0: 6 sends, each accepted for delivery as it is
        // processed (deliveries are counted at send time).
        assert_eq!(spans[0].logical, 12);
        let reg = obs.registry();
        assert_eq!(reg.counter("sim.sent"), outcome.sent as u64);
        assert_eq!(reg.counter("sim.delivered"), outcome.delivered as u64);
        assert_eq!(
            reg.counter("sim.dropped.crash"),
            outcome.dropped_crash as u64
        );
        assert_eq!(reg.counter("sim.rounds"), 3);
        assert!(outcome.dropped_crash > 0);
    }

    #[test]
    fn disabled_obs_stays_empty_and_take_obs_drains() {
        let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 1);
        engine.run_with(2, |_, ctx| ctx.broadcast(1));
        assert!(engine.obs().registry().is_empty());
        assert!(engine.obs().spans().is_empty());

        let mut engine = RoundEngine::<u8>::new(Topology::complete(2), 1).with_obs();
        engine.run_with(2, |_, ctx| ctx.broadcast(1));
        let drained = engine.take_obs();
        assert_eq!(drained.spans().len(), 2);
        assert!(engine.obs().spans().is_empty());
        assert!(engine.obs().is_enabled(), "enabled state survives draining");
    }

    #[test]
    fn bounded_trace_feeds_dropped_counter_into_registry() {
        let mut engine = RoundEngine::<u8>::new(Topology::complete(3), 1)
            .with_trace_config(TraceConfig::bounded(4))
            .with_obs();
        engine.run_with(3, |_, ctx| ctx.broadcast(1));
        let trace = engine.trace().unwrap();
        assert_eq!(trace.len(), 4, "ring retains exactly the capacity");
        assert!(trace.dropped() > 0);
        assert_eq!(
            engine.obs().registry().counter("sim.trace_dropped"),
            trace.dropped()
        );
    }

    #[test]
    fn obs_round_spans_are_deterministic_across_runs() {
        let run = |seed: u64| {
            let mut engine = RoundEngine::<u8>::new(Topology::complete(4), seed)
                .with_faults(FaultPlan::healthy().with(n(1), FaultKind::Omission { p: 0.5 }))
                .with_obs();
            engine.run_with(3, |_, ctx| ctx.broadcast(0));
            engine.take_obs()
        };
        // Same seed: identical spans (logical dimension) and registry,
        // even though wall times differ between the two executions.
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn eig_perf_scrub_timing_zeroes_only_wall_fields() {
        let mut perf = EigPerf {
            arena_nodes: 1,
            votes_evaluated: 2,
            votes_memo_hit: 3,
            messages_materialized: 4,
            subtrees_pruned: 7,
            messages_saved: 8,
            fill_nanos: 5,
            resolve_nanos: 6,
        };
        obs::scrub_timing(&mut perf);
        assert_eq!(perf.deterministic_counters(), [1, 2, 3, 4, 7, 8]);
        assert_eq!((perf.fill_nanos, perf.resolve_nanos), (0, 0));
        let mut reg = obs::Registry::new();
        perf.fold_into(&mut reg);
        assert_eq!(reg.counter("eig.votes_evaluated"), 2);
    }

    #[test]
    fn closure_run_variant() {
        let mut engine = RoundEngine::<u32>::new(Topology::complete(3), 1);
        let outcome = engine.run(1, |ctx| ctx.broadcast(1));
        assert_eq!(outcome.sent, 6);
        assert_eq!(outcome.rounds_run, 1);
    }
}
