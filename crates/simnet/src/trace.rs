//! Execution traces.
//!
//! When enabled, the round engine records one [`TraceEvent`] per message
//! disposition, so experiments can audit *why* a receiver observed a value
//! as absent (crash? omission? late? no such link?) and tests can assert on
//! mechanism rather than just outcome.

use crate::id::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One message-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A process handed a message to the engine.
    Sent {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// The message arrived before the deadline and was delivered.
    Delivered {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Sampled latency.
        latency: u64,
    },
    /// Dropped because the sender had crashed.
    DroppedCrash {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// Dropped by the sender's omission fault.
    DroppedOmission {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// Arrived after the round deadline; the receiver saw it as absent.
    Late {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Sampled latency (exceeds the deadline).
        latency: u64,
    },
    /// Discarded because the topology has no `src`-`dst` link.
    NoLink {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Sent { round, src, dst } => write!(f, "[r{round}] {src}->{dst} sent"),
            TraceEvent::Delivered {
                round,
                src,
                dst,
                latency,
            } => write!(f, "[r{round}] {src}->{dst} delivered (lat {latency})"),
            TraceEvent::DroppedCrash { round, src, dst } => {
                write!(f, "[r{round}] {src}->{dst} dropped: crash")
            }
            TraceEvent::DroppedOmission { round, src, dst } => {
                write!(f, "[r{round}] {src}->{dst} dropped: omission")
            }
            TraceEvent::Late {
                round,
                src,
                dst,
                latency,
            } => write!(f, "[r{round}] {src}->{dst} late (lat {latency})"),
            TraceEvent::NoLink { round, src, dst } => {
                write!(f, "[r{round}] {src}->{dst} discarded: no link")
            }
        }
    }
}

/// An append-only event log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.record(TraceEvent::Sent {
            round: 0,
            src: NodeId::new(0),
            dst: NodeId::new(1),
        });
        t.record(TraceEvent::Late {
            round: 0,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            latency: 99,
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.count(|e| matches!(e, TraceEvent::Late { .. })), 1);
    }

    #[test]
    fn display_is_informative() {
        let e = TraceEvent::Delivered {
            round: 3,
            src: NodeId::new(1),
            dst: NodeId::new(2),
            latency: 5,
        };
        assert_eq!(e.to_string(), "[r3] n1->n2 delivered (lat 5)");
    }
}
