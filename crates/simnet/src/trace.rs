//! Execution traces.
//!
//! When enabled, the round engine records one [`TraceEvent`] per message
//! disposition, so experiments can audit *why* a receiver observed a value
//! as absent (crash? omission? late? no such link?) and tests can assert on
//! mechanism rather than just outcome.

use crate::id::NodeId;
use obs::JsonValue;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a message missed the round deadline.
///
/// Before this distinction existed, a single `Late` event covered both "the
/// sampled network latency exceeded the deadline" and "a delay *fault* on
/// the sender pushed it over" — experiments auditing fault attribution
/// could not tell the two apart. The cause makes the attribution explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LateCause {
    /// The sampled latency alone exceeded the deadline (no fault involved).
    Deadline,
    /// A [`crate::fault::FaultKind::Delay`] fault on the sender pushed an
    /// otherwise on-time message past the deadline.
    DelayFault,
}

impl fmt::Display for LateCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LateCause::Deadline => write!(f, "deadline"),
            LateCause::DelayFault => write!(f, "delay fault"),
        }
    }
}

/// One message-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A process handed a message to the engine.
    Sent {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// The message arrived before the deadline and was delivered.
    Delivered {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Sampled latency.
        latency: u64,
    },
    /// Dropped because the sender had crashed.
    DroppedCrash {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// Dropped by the sender's omission fault.
    DroppedOmission {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// Arrived after the round deadline; the receiver saw it as absent.
    Late {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Sampled latency (exceeds the deadline).
        latency: u64,
        /// Whether the deadline alone or a delay fault caused the miss.
        cause: LateCause,
    },
    /// Discarded because the topology has no `src`-`dst` link.
    NoLink {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// Dropped because the link is cut ([`crate::linkfault::LinkFaultKind::Cut`]).
    LinkCut {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// Lost to link-level loss ([`crate::linkfault::LinkFaultKind::Drop`]).
    LinkDropped {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// A second copy was injected by the link
    /// ([`crate::linkfault::LinkFaultKind::Duplicate`]).
    LinkDuplicated {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// Held back by link reordering
    /// ([`crate::linkfault::LinkFaultKind::Reorder`]); delivery shifts from
    /// round `round + 1` to `round + 1 + delay`.
    LinkReordered {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Extra rounds of delay (at least 1).
        delay: usize,
    },
    /// Garbled in flight ([`crate::linkfault::LinkFaultKind::Corrupt`]).
    /// `delivered` tells whether the corruptor produced a mutated payload
    /// (delivered garbled) or the message was discarded (absence — the
    /// default when no corruptor is installed or it returns `None`).
    LinkCorrupted {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Whether a garbled payload was still delivered.
        delivered: bool,
    },
}

impl TraceEvent {
    /// The event as a flat JSON object, e.g.
    /// `{"event":"delivered","round":0,"src":0,"dst":1,"latency":5}`.
    /// The `event` tag names the variant in snake_case; extra fields
    /// (`latency`, `cause`, `delay`, `delivered`) appear as needed.
    pub fn to_json(&self) -> JsonValue {
        let (kind, round, src, dst) = match *self {
            TraceEvent::Sent { round, src, dst } => ("sent", round, src, dst),
            TraceEvent::Delivered {
                round, src, dst, ..
            } => ("delivered", round, src, dst),
            TraceEvent::DroppedCrash { round, src, dst } => ("dropped_crash", round, src, dst),
            TraceEvent::DroppedOmission { round, src, dst } => {
                ("dropped_omission", round, src, dst)
            }
            TraceEvent::Late {
                round, src, dst, ..
            } => ("late", round, src, dst),
            TraceEvent::NoLink { round, src, dst } => ("no_link", round, src, dst),
            TraceEvent::LinkCut { round, src, dst } => ("link_cut", round, src, dst),
            TraceEvent::LinkDropped { round, src, dst } => ("link_dropped", round, src, dst),
            TraceEvent::LinkDuplicated { round, src, dst } => ("link_duplicated", round, src, dst),
            TraceEvent::LinkReordered {
                round, src, dst, ..
            } => ("link_reordered", round, src, dst),
            TraceEvent::LinkCorrupted {
                round, src, dst, ..
            } => ("link_corrupted", round, src, dst),
        };
        let mut fields = vec![
            ("event".to_string(), JsonValue::Str(kind.to_string())),
            ("round".to_string(), JsonValue::UInt(round as u64)),
            ("src".to_string(), JsonValue::UInt(src.index() as u64)),
            ("dst".to_string(), JsonValue::UInt(dst.index() as u64)),
        ];
        match *self {
            TraceEvent::Delivered { latency, .. } => {
                fields.push(("latency".into(), latency.into()));
            }
            TraceEvent::Late { latency, cause, .. } => {
                fields.push(("latency".into(), latency.into()));
                let cause = match cause {
                    LateCause::Deadline => "deadline",
                    LateCause::DelayFault => "delay_fault",
                };
                fields.push(("cause".into(), JsonValue::Str(cause.into())));
            }
            TraceEvent::LinkReordered { delay, .. } => {
                fields.push(("delay".into(), (delay as u64).into()));
            }
            TraceEvent::LinkCorrupted { delivered, .. } => {
                fields.push(("delivered".into(), JsonValue::Bool(delivered)));
            }
            _ => {}
        }
        JsonValue::Object(fields)
    }

    /// The inverse of [`TraceEvent::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(value: &JsonValue) -> Result<TraceEvent, String> {
        let kind = value
            .get("event")
            .and_then(JsonValue::as_str)
            .ok_or("trace event missing string `event`")?;
        let num = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or(format!("`{kind}` event missing u64 `{key}`"))
        };
        let round = num("round")? as usize;
        let src = NodeId::new(num("src")? as usize);
        let dst = NodeId::new(num("dst")? as usize);
        Ok(match kind {
            "sent" => TraceEvent::Sent { round, src, dst },
            "delivered" => TraceEvent::Delivered {
                round,
                src,
                dst,
                latency: num("latency")?,
            },
            "dropped_crash" => TraceEvent::DroppedCrash { round, src, dst },
            "dropped_omission" => TraceEvent::DroppedOmission { round, src, dst },
            "late" => TraceEvent::Late {
                round,
                src,
                dst,
                latency: num("latency")?,
                cause: match value.get("cause").and_then(JsonValue::as_str) {
                    Some("deadline") => LateCause::Deadline,
                    Some("delay_fault") => LateCause::DelayFault,
                    other => return Err(format!("bad late cause {other:?}")),
                },
            },
            "no_link" => TraceEvent::NoLink { round, src, dst },
            "link_cut" => TraceEvent::LinkCut { round, src, dst },
            "link_dropped" => TraceEvent::LinkDropped { round, src, dst },
            "link_duplicated" => TraceEvent::LinkDuplicated { round, src, dst },
            "link_reordered" => TraceEvent::LinkReordered {
                round,
                src,
                dst,
                delay: num("delay")? as usize,
            },
            "link_corrupted" => TraceEvent::LinkCorrupted {
                round,
                src,
                dst,
                delivered: value
                    .get("delivered")
                    .and_then(JsonValue::as_bool)
                    .ok_or("`link_corrupted` event missing bool `delivered`")?,
            },
            other => return Err(format!("unknown trace event kind `{other}`")),
        })
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Sent { round, src, dst } => write!(f, "[r{round}] {src}->{dst} sent"),
            TraceEvent::Delivered {
                round,
                src,
                dst,
                latency,
            } => write!(f, "[r{round}] {src}->{dst} delivered (lat {latency})"),
            TraceEvent::DroppedCrash { round, src, dst } => {
                write!(f, "[r{round}] {src}->{dst} dropped: crash")
            }
            TraceEvent::DroppedOmission { round, src, dst } => {
                write!(f, "[r{round}] {src}->{dst} dropped: omission")
            }
            TraceEvent::Late {
                round,
                src,
                dst,
                latency,
                cause,
            } => write!(f, "[r{round}] {src}->{dst} late (lat {latency}, {cause})"),
            TraceEvent::NoLink { round, src, dst } => {
                write!(f, "[r{round}] {src}->{dst} discarded: no link")
            }
            TraceEvent::LinkCut { round, src, dst } => {
                write!(f, "[r{round}] {src}->{dst} dropped: link cut")
            }
            TraceEvent::LinkDropped { round, src, dst } => {
                write!(f, "[r{round}] {src}->{dst} dropped: link loss")
            }
            TraceEvent::LinkDuplicated { round, src, dst } => {
                write!(f, "[r{round}] {src}->{dst} duplicated by link")
            }
            TraceEvent::LinkReordered {
                round,
                src,
                dst,
                delay,
            } => write!(f, "[r{round}] {src}->{dst} reordered (+{delay} rounds)"),
            TraceEvent::LinkCorrupted {
                round,
                src,
                dst,
                delivered,
            } => {
                let fate = if delivered {
                    "delivered garbled"
                } else {
                    "dropped"
                };
                write!(f, "[r{round}] {src}->{dst} corrupted: {fate}")
            }
        }
    }
}

/// Trace retention policy.
///
/// The default (`capacity: None`) keeps every event, matching the
/// historical append-only behaviour. A bounded config turns the trace
/// into a ring buffer of the most recent `capacity` events, so long
/// sweeps with tracing enabled no longer grow memory without bound;
/// evicted events are tallied in [`Trace::dropped`] (and folded into
/// the observability registry as `sim.trace_dropped` by the engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum events retained (`None` = unbounded).
    pub capacity: Option<usize>,
}

impl TraceConfig {
    /// Unbounded retention (the historical behaviour).
    pub fn unbounded() -> Self {
        TraceConfig { capacity: None }
    }

    /// Keep only the most recent `capacity` events.
    pub fn bounded(capacity: usize) -> Self {
        TraceConfig {
            capacity: Some(capacity),
        }
    }
}

/// An event log: append-only by default, a most-recent-events ring
/// buffer under a bounded [`TraceConfig`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: Option<usize>,
    /// Ring head: index of the oldest retained event once wrapped.
    start: usize,
    dropped: u64,
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        // Two traces are equal when they retain the same events in the
        // same order and evicted the same number — the physical ring
        // rotation (`start`) and configured capacity are representation
        // details.
        self.dropped == other.dropped && self.events().eq(other.events())
    }
}

impl Trace {
    /// An empty, unbounded trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// An empty trace with the given retention policy.
    pub fn with_config(config: TraceConfig) -> Self {
        Trace {
            capacity: config.capacity,
            ..Trace::default()
        }
    }

    /// Appends an event, evicting the oldest retained event (and
    /// counting it as dropped) when a bounded capacity is full.
    pub fn record(&mut self, event: TraceEvent) {
        match self.capacity {
            Some(0) => self.dropped += 1,
            Some(cap) if self.events.len() == cap => {
                self.events[self.start] = event;
                self.start = (self.start + 1) % cap;
                self.dropped += 1;
            }
            _ => self.events.push(event),
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, head) = self.events.split_at(self.start);
        head.iter().chain(wrapped.iter())
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace retains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring buffer (zero when unbounded).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Count of retained events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events().filter(|e| pred(e)).count()
    }

    /// The trace as JSON: `{"dropped": n, "events": [...]}` with
    /// events oldest-first (see [`TraceEvent::to_json`]).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("dropped".into(), self.dropped.into()),
            (
                "events".into(),
                JsonValue::Array(self.events().map(TraceEvent::to_json).collect()),
            ),
        ])
    }

    /// Rebuilds a trace from [`Trace::to_json`] output. The result is
    /// unbounded (retention policy is not part of the serialized form).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed event.
    pub fn from_json(value: &JsonValue) -> Result<Trace, String> {
        let mut trace = Trace::new();
        trace.dropped = value
            .get("dropped")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        for event in value
            .get("events")
            .and_then(JsonValue::as_array)
            .ok_or("trace missing `events` array")?
        {
            trace.events.push(TraceEvent::from_json(event)?);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.record(TraceEvent::Sent {
            round: 0,
            src: NodeId::new(0),
            dst: NodeId::new(1),
        });
        t.record(TraceEvent::Late {
            round: 0,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            latency: 99,
            cause: LateCause::Deadline,
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.count(|e| matches!(e, TraceEvent::Late { .. })), 1);
        assert_eq!(
            t.count(|e| matches!(
                e,
                TraceEvent::Late {
                    cause: LateCause::DelayFault,
                    ..
                }
            )),
            0
        );
    }

    #[test]
    fn link_event_displays_name_their_cause() {
        let (src, dst) = (NodeId::new(0), NodeId::new(1));
        let cases = [
            (TraceEvent::LinkCut { round: 1, src, dst }, "link cut"),
            (TraceEvent::LinkDropped { round: 1, src, dst }, "link loss"),
            (
                TraceEvent::LinkDuplicated { round: 1, src, dst },
                "duplicated",
            ),
            (
                TraceEvent::LinkReordered {
                    round: 1,
                    src,
                    dst,
                    delay: 2,
                },
                "+2 rounds",
            ),
            (
                TraceEvent::LinkCorrupted {
                    round: 1,
                    src,
                    dst,
                    delivered: false,
                },
                "corrupted: dropped",
            ),
            (
                TraceEvent::Late {
                    round: 1,
                    src,
                    dst,
                    latency: 9,
                    cause: LateCause::DelayFault,
                },
                "delay fault",
            ),
        ];
        for (event, needle) in cases {
            assert!(
                event.to_string().contains(needle),
                "{event} should mention {needle:?}"
            );
        }
    }

    fn sent(round: usize) -> TraceEvent {
        TraceEvent::Sent {
            round,
            src: NodeId::new(0),
            dst: NodeId::new(1),
        }
    }

    #[test]
    fn bounded_trace_keeps_most_recent_and_counts_drops() {
        let mut t = Trace::with_config(TraceConfig::bounded(3));
        for round in 0..5 {
            t.record(sent(round));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let rounds: Vec<usize> = t
            .events()
            .map(|e| match e {
                TraceEvent::Sent { round, .. } => *round,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(rounds, vec![2, 3, 4], "oldest evicted, order preserved");
    }

    #[test]
    fn zero_capacity_trace_drops_everything() {
        let mut t = Trace::with_config(TraceConfig::bounded(0));
        t.record(sent(0));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn unbounded_trace_never_drops() {
        let mut t = Trace::with_config(TraceConfig::unbounded());
        for round in 0..100 {
            t.record(sent(round));
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn trace_equality_ignores_ring_rotation() {
        // Same retained events via different physical layouts.
        let mut wrapped = Trace::with_config(TraceConfig::bounded(2));
        for round in 0..3 {
            wrapped.record(sent(round));
        }
        let mut plain = Trace::new();
        plain.record(sent(1));
        plain.record(sent(2));
        plain.dropped = 1;
        assert_eq!(wrapped, plain);
    }

    #[test]
    fn every_event_kind_round_trips_through_json() {
        let (src, dst) = (NodeId::new(2), NodeId::new(5));
        let all = [
            TraceEvent::Sent { round: 0, src, dst },
            TraceEvent::Delivered {
                round: 1,
                src,
                dst,
                latency: 9,
            },
            TraceEvent::DroppedCrash { round: 2, src, dst },
            TraceEvent::DroppedOmission { round: 3, src, dst },
            TraceEvent::Late {
                round: 4,
                src,
                dst,
                latency: 77,
                cause: LateCause::Deadline,
            },
            TraceEvent::Late {
                round: 4,
                src,
                dst,
                latency: 78,
                cause: LateCause::DelayFault,
            },
            TraceEvent::NoLink { round: 5, src, dst },
            TraceEvent::LinkCut { round: 6, src, dst },
            TraceEvent::LinkDropped { round: 7, src, dst },
            TraceEvent::LinkDuplicated { round: 8, src, dst },
            TraceEvent::LinkReordered {
                round: 9,
                src,
                dst,
                delay: 2,
            },
            TraceEvent::LinkCorrupted {
                round: 10,
                src,
                dst,
                delivered: true,
            },
            TraceEvent::LinkCorrupted {
                round: 10,
                src,
                dst,
                delivered: false,
            },
        ];
        for event in all {
            let json = event.to_json();
            let text = json.to_json_string();
            let parsed = obs::JsonValue::parse(&text).unwrap();
            assert_eq!(TraceEvent::from_json(&parsed).unwrap(), event, "{text}");
        }
        let mut trace = Trace::new();
        for event in all {
            trace.record(event);
        }
        let text = trace.to_json().to_json_string();
        let back = Trace::from_json(&obs::JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn from_json_rejects_unknown_kind_and_missing_fields() {
        for bad in [
            "{\"event\":\"warp\",\"round\":0,\"src\":0,\"dst\":1}",
            "{\"event\":\"late\",\"round\":0,\"src\":0,\"dst\":1,\"latency\":5}",
            "{\"round\":0,\"src\":0,\"dst\":1}",
        ] {
            let v = obs::JsonValue::parse(bad).unwrap();
            assert!(TraceEvent::from_json(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn display_is_informative() {
        let e = TraceEvent::Delivered {
            round: 3,
            src: NodeId::new(1),
            dst: NodeId::new(2),
            latency: 5,
        };
        assert_eq!(e.to_string(), "[r3] n1->n2 delivered (lat 5)");
    }
}
