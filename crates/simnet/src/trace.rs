//! Execution traces.
//!
//! When enabled, the round engine records one [`TraceEvent`] per message
//! disposition, so experiments can audit *why* a receiver observed a value
//! as absent (crash? omission? late? no such link?) and tests can assert on
//! mechanism rather than just outcome.

use crate::id::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a message missed the round deadline.
///
/// Before this distinction existed, a single `Late` event covered both "the
/// sampled network latency exceeded the deadline" and "a delay *fault* on
/// the sender pushed it over" — experiments auditing fault attribution
/// could not tell the two apart. The cause makes the attribution explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LateCause {
    /// The sampled latency alone exceeded the deadline (no fault involved).
    Deadline,
    /// A [`crate::fault::FaultKind::Delay`] fault on the sender pushed an
    /// otherwise on-time message past the deadline.
    DelayFault,
}

impl fmt::Display for LateCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LateCause::Deadline => write!(f, "deadline"),
            LateCause::DelayFault => write!(f, "delay fault"),
        }
    }
}

/// One message-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A process handed a message to the engine.
    Sent {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// The message arrived before the deadline and was delivered.
    Delivered {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Sampled latency.
        latency: u64,
    },
    /// Dropped because the sender had crashed.
    DroppedCrash {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// Dropped by the sender's omission fault.
    DroppedOmission {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// Arrived after the round deadline; the receiver saw it as absent.
    Late {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Sampled latency (exceeds the deadline).
        latency: u64,
        /// Whether the deadline alone or a delay fault caused the miss.
        cause: LateCause,
    },
    /// Discarded because the topology has no `src`-`dst` link.
    NoLink {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// Dropped because the link is cut ([`crate::linkfault::LinkFaultKind::Cut`]).
    LinkCut {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// Lost to link-level loss ([`crate::linkfault::LinkFaultKind::Drop`]).
    LinkDropped {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// A second copy was injected by the link
    /// ([`crate::linkfault::LinkFaultKind::Duplicate`]).
    LinkDuplicated {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// Held back by link reordering
    /// ([`crate::linkfault::LinkFaultKind::Reorder`]); delivery shifts from
    /// round `round + 1` to `round + 1 + delay`.
    LinkReordered {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Extra rounds of delay (at least 1).
        delay: usize,
    },
    /// Garbled in flight ([`crate::linkfault::LinkFaultKind::Corrupt`]).
    /// `delivered` tells whether the corruptor produced a mutated payload
    /// (delivered garbled) or the message was discarded (absence — the
    /// default when no corruptor is installed or it returns `None`).
    LinkCorrupted {
        /// Sending round.
        round: usize,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Whether a garbled payload was still delivered.
        delivered: bool,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Sent { round, src, dst } => write!(f, "[r{round}] {src}->{dst} sent"),
            TraceEvent::Delivered {
                round,
                src,
                dst,
                latency,
            } => write!(f, "[r{round}] {src}->{dst} delivered (lat {latency})"),
            TraceEvent::DroppedCrash { round, src, dst } => {
                write!(f, "[r{round}] {src}->{dst} dropped: crash")
            }
            TraceEvent::DroppedOmission { round, src, dst } => {
                write!(f, "[r{round}] {src}->{dst} dropped: omission")
            }
            TraceEvent::Late {
                round,
                src,
                dst,
                latency,
                cause,
            } => write!(f, "[r{round}] {src}->{dst} late (lat {latency}, {cause})"),
            TraceEvent::NoLink { round, src, dst } => {
                write!(f, "[r{round}] {src}->{dst} discarded: no link")
            }
            TraceEvent::LinkCut { round, src, dst } => {
                write!(f, "[r{round}] {src}->{dst} dropped: link cut")
            }
            TraceEvent::LinkDropped { round, src, dst } => {
                write!(f, "[r{round}] {src}->{dst} dropped: link loss")
            }
            TraceEvent::LinkDuplicated { round, src, dst } => {
                write!(f, "[r{round}] {src}->{dst} duplicated by link")
            }
            TraceEvent::LinkReordered {
                round,
                src,
                dst,
                delay,
            } => write!(f, "[r{round}] {src}->{dst} reordered (+{delay} rounds)"),
            TraceEvent::LinkCorrupted {
                round,
                src,
                dst,
                delivered,
            } => {
                let fate = if delivered {
                    "delivered garbled"
                } else {
                    "dropped"
                };
                write!(f, "[r{round}] {src}->{dst} corrupted: {fate}")
            }
        }
    }
}

/// An append-only event log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.record(TraceEvent::Sent {
            round: 0,
            src: NodeId::new(0),
            dst: NodeId::new(1),
        });
        t.record(TraceEvent::Late {
            round: 0,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            latency: 99,
            cause: LateCause::Deadline,
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.count(|e| matches!(e, TraceEvent::Late { .. })), 1);
        assert_eq!(
            t.count(|e| matches!(
                e,
                TraceEvent::Late {
                    cause: LateCause::DelayFault,
                    ..
                }
            )),
            0
        );
    }

    #[test]
    fn link_event_displays_name_their_cause() {
        let (src, dst) = (NodeId::new(0), NodeId::new(1));
        let cases = [
            (TraceEvent::LinkCut { round: 1, src, dst }, "link cut"),
            (TraceEvent::LinkDropped { round: 1, src, dst }, "link loss"),
            (
                TraceEvent::LinkDuplicated { round: 1, src, dst },
                "duplicated",
            ),
            (
                TraceEvent::LinkReordered {
                    round: 1,
                    src,
                    dst,
                    delay: 2,
                },
                "+2 rounds",
            ),
            (
                TraceEvent::LinkCorrupted {
                    round: 1,
                    src,
                    dst,
                    delivered: false,
                },
                "corrupted: dropped",
            ),
            (
                TraceEvent::Late {
                    round: 1,
                    src,
                    dst,
                    latency: 9,
                    cause: LateCause::DelayFault,
                },
                "delay fault",
            ),
        ];
        for (event, needle) in cases {
            assert!(
                event.to_string().contains(needle),
                "{event} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn display_is_informative() {
        let e = TraceEvent::Delivered {
            round: 3,
            src: NodeId::new(1),
            dst: NodeId::new(2),
            latency: 5,
        };
        assert_eq!(e.to_string(), "[r3] n1->n2 delivered (lat 5)");
    }
}
