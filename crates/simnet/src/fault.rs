//! Fault plans.
//!
//! A [`FaultPlan`] declares which nodes are faulty and how. The paper's
//! failure model is Byzantine (arbitrary behaviour); in a simulation that
//! splits into two layers:
//!
//! * **Engine-level faults** the network engine applies mechanically,
//!   regardless of process logic: crash (stop sending from a given round),
//!   omission (drop each outgoing message with probability `p`) and delay
//!   (add extra latency, possibly pushing messages past the round deadline —
//!   the Section 6 timeout scenario).
//! * **Byzantine faults**, where the *process itself* lies. The engine only
//!   records the marker; protocol crates instantiate adversarial processes
//!   for nodes marked [`FaultKind::Byzantine`].
//!
//! Crash and omission are special cases of Byzantine behaviour, so a node
//! with any fault kind counts toward the fault count `f` of the paper's
//! conditions.

use crate::id::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How a particular node misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Arbitrary (malicious) behaviour; the process logic itself lies.
    /// The engine treats the node normally.
    Byzantine,
    /// The node stops sending any messages from round `from_round` on.
    Crash {
        /// First round (0-based) in which the node is silent.
        from_round: usize,
    },
    /// Each outgoing message is independently dropped with probability `p`.
    Omission {
        /// Drop probability in `[0, 1]`.
        p: f64,
    },
    /// Each outgoing message gets `extra` additional latency units, which
    /// may push it past the receiver's round deadline (late = absent).
    Delay {
        /// Additional latency units per message.
        extra: u64,
    },
}

/// Assignment of fault kinds to nodes. Nodes not present are fault-free.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: BTreeMap<NodeId, FaultKind>,
}

impl FaultPlan {
    /// A plan with no faulty nodes.
    pub fn healthy() -> Self {
        FaultPlan::default()
    }

    /// Builder-style: marks `node` with `kind`.
    #[must_use]
    pub fn with(mut self, node: NodeId, kind: FaultKind) -> Self {
        self.faults.insert(node, kind);
        self
    }

    /// Marks `node` with `kind` in place.
    pub fn insert(&mut self, node: NodeId, kind: FaultKind) {
        self.faults.insert(node, kind);
    }

    /// Marks every node in `nodes` as Byzantine.
    pub fn byzantine<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        let mut plan = FaultPlan::healthy();
        for n in nodes {
            plan.insert(n, FaultKind::Byzantine);
        }
        plan
    }

    /// The fault kind of `node`, if any.
    pub fn kind(&self, node: NodeId) -> Option<FaultKind> {
        self.faults.get(&node).copied()
    }

    /// Whether `node` is faulty in any way.
    pub fn is_faulty(&self, node: NodeId) -> bool {
        self.faults.contains_key(&node)
    }

    /// Number of faulty nodes (the paper's `f`).
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// The set of faulty node ids.
    pub fn faulty_set(&self) -> BTreeSet<NodeId> {
        self.faults.keys().copied().collect()
    }

    /// The fault-free node ids among `0..n`.
    pub fn fault_free(&self, n: usize) -> Vec<NodeId> {
        NodeId::all(n).filter(|v| !self.is_faulty(*v)).collect()
    }

    /// Whether `node` has crashed by round `round`.
    pub fn crashed(&self, node: NodeId, round: usize) -> bool {
        matches!(self.kind(node), Some(FaultKind::Crash { from_round }) if round >= from_round)
    }

    /// Omission probability of `node` (0 for non-omissive nodes).
    pub fn omission_p(&self, node: NodeId) -> f64 {
        match self.kind(node) {
            Some(FaultKind::Omission { p }) => p,
            _ => 0.0,
        }
    }

    /// Extra latency added by `node`'s fault (0 for non-delaying nodes).
    pub fn extra_delay(&self, node: NodeId) -> u64 {
        match self.kind(node) {
            Some(FaultKind::Delay { extra }) => extra,
            _ => 0,
        }
    }

    /// Iterator over `(node, kind)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, FaultKind)> + '_ {
        self.faults.iter().map(|(&k, &v)| (k, v))
    }
}

/// A time-varying fault plan: piecewise-constant over rounds. Supports
/// transient bursts and churn experiments, where nodes fail and recover at
/// known epochs (the engine applies whichever plan is active each round).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// `(from_round, plan)` entries; the active plan at round `r` is the
    /// one with the largest `from_round <= r`. Rounds before the first
    /// entry are fault-free.
    epochs: Vec<(usize, FaultPlan)>,
}

impl FaultSchedule {
    /// A schedule that is fault-free forever.
    pub fn healthy() -> Self {
        FaultSchedule::default()
    }

    /// A schedule that applies one plan from round 0 on.
    pub fn constant(plan: FaultPlan) -> Self {
        FaultSchedule {
            epochs: vec![(0, plan)],
        }
    }

    /// Builder-style: from `round` onward, use `plan` (entries must be
    /// added in increasing round order).
    ///
    /// # Panics
    ///
    /// Panics if `round` is not strictly greater than the previous entry's
    /// round.
    #[must_use]
    pub fn then_from(mut self, round: usize, plan: FaultPlan) -> Self {
        if let Some(&(prev, _)) = self.epochs.last() {
            assert!(round > prev, "epochs must be added in increasing order");
        }
        self.epochs.push((round, plan));
        self
    }

    /// The plan active at `round`.
    pub fn active(&self, round: usize) -> FaultPlan {
        self.epochs
            .iter()
            .rev()
            .find(|(from, _)| *from <= round)
            .map(|(_, p)| p.clone())
            .unwrap_or_default()
    }

    /// The largest fault count any epoch reaches.
    pub fn peak_fault_count(&self) -> usize {
        self.epochs
            .iter()
            .map(|(_, p)| p.fault_count())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn healthy_plan_is_empty() {
        let p = FaultPlan::healthy();
        assert_eq!(p.fault_count(), 0);
        assert!(!p.is_faulty(n(0)));
        assert_eq!(p.fault_free(3), vec![n(0), n(1), n(2)]);
    }

    #[test]
    fn byzantine_builder() {
        let p = FaultPlan::byzantine([n(1), n(3)]);
        assert_eq!(p.fault_count(), 2);
        assert!(p.is_faulty(n(1)));
        assert!(!p.is_faulty(n(2)));
        assert_eq!(p.fault_free(4), vec![n(0), n(2)]);
    }

    #[test]
    fn crash_activation() {
        let p = FaultPlan::healthy().with(n(0), FaultKind::Crash { from_round: 2 });
        assert!(!p.crashed(n(0), 1));
        assert!(p.crashed(n(0), 2));
        assert!(p.crashed(n(0), 5));
        assert!(!p.crashed(n(1), 5));
    }

    #[test]
    fn omission_probability() {
        let p = FaultPlan::healthy().with(n(2), FaultKind::Omission { p: 0.5 });
        assert_eq!(p.omission_p(n(2)), 0.5);
        assert_eq!(p.omission_p(n(0)), 0.0);
    }

    #[test]
    fn schedule_epochs_resolve() {
        let burst = FaultPlan::byzantine([n(1), n(2)]);
        let sched = FaultSchedule::healthy()
            .then_from(3, burst.clone())
            .then_from(6, FaultPlan::healthy());
        assert_eq!(sched.active(0), FaultPlan::healthy());
        assert_eq!(sched.active(3), burst);
        assert_eq!(sched.active(5), burst);
        assert_eq!(sched.active(6), FaultPlan::healthy());
        assert_eq!(sched.peak_fault_count(), 2);
    }

    #[test]
    fn constant_schedule() {
        let plan = FaultPlan::byzantine([n(0)]);
        let sched = FaultSchedule::constant(plan.clone());
        assert_eq!(sched.active(0), plan);
        assert_eq!(sched.active(99), plan);
    }

    #[test]
    #[should_panic(expected = "increasing order")]
    fn schedule_order_enforced() {
        let _ = FaultSchedule::healthy()
            .then_from(5, FaultPlan::healthy())
            .then_from(5, FaultPlan::healthy());
    }

    #[test]
    fn reinsert_overwrites() {
        let p = FaultPlan::healthy()
            .with(n(0), FaultKind::Byzantine)
            .with(n(0), FaultKind::Delay { extra: 9 });
        assert_eq!(p.fault_count(), 1);
        assert_eq!(p.extra_delay(n(0)), 9);
    }
}
