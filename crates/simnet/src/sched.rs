//! Deterministic virtual-time event scheduler.
//!
//! The paper's model is round-synchronous, but the engine no longer runs a
//! lockstep loop: it drains a priority queue of *events* — per-message
//! delivery events and per-node timeout timers — ordered by virtual time.
//! Rounds are emergent: a node executes round `r` when its round-`r` timer
//! fires, and a message it did not receive by then is *detectably absent*
//! (paper assumption (b), implemented as a timeout rather than an oracle).
//!
//! Determinism is total-order determinism: every event carries a key
//! `(time, class, seq)` and the queue pops strictly in key order.
//!
//! * `time` is virtual [`SimTime`] (no wall clock anywhere);
//! * `class` breaks ties at equal time — [`EventClass::Deliver`] sorts
//!   before [`EventClass::Timer`], so a message arriving *exactly at* the
//!   timeout boundary is still delivered (present, not absent). This
//!   tie-break is load-bearing for §6's relaxed absence detection and is
//!   pinned by tests;
//! * `seq` is a monotone insertion counter, so events scheduled earlier at
//!   the same `(time, class)` pop earlier, regardless of heap internals.
//!
//! The queue is payload-generic; `simnet::engine` drives the lockstep-
//! equivalent simulation with it, and the transport layer reuses it for the
//! fully event-driven `SimTransport`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time, in abstract latency units. Wide enough that
/// `round * (deadline + 1)` cannot overflow even at `deadline = u64::MAX`.
pub type SimTime = u128;

/// Event category; the tie-break dimension at equal virtual time.
///
/// Deliveries sort before timers: a message arriving exactly when the
/// receiver's round timer fires is *present* — absence detection only
/// declares a message missing if it is strictly later than the timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventClass {
    /// A message delivery at the receiver.
    Deliver,
    /// A per-node round-timeout timer.
    Timer,
}

/// An event popped from the queue: the scheduling key plus the payload.
#[derive(Debug)]
pub struct Scheduled<P> {
    /// Virtual time at which the event fires.
    pub time: SimTime,
    /// Tie-break class (deliveries before timers at equal time).
    pub class: EventClass,
    /// Insertion sequence number (unique, monotone; final tie-break).
    pub seq: u64,
    /// The event payload.
    pub payload: P,
}

/// Min-heap entry; ordering is *only* the `(time, class, seq)` key, never
/// the payload, and `seq` uniqueness makes the order total.
struct Entry<P>(Scheduled<P>);

impl<P> Entry<P> {
    fn key(&self) -> (SimTime, EventClass, u64) {
        (self.0.time, self.0.class, self.0.seq)
    }
}

impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<P> Eq for Entry<P> {}

impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest key pops first.
        other.key().cmp(&self.key())
    }
}

/// Deterministic event queue: strict `(time, class, seq)` pop order.
pub struct EventQueue<P> {
    heap: BinaryHeap<Entry<P>>,
    next_seq: u64,
    now: SimTime,
}

impl<P> std::fmt::Debug for EventQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .field("now", &self.now)
            .finish()
    }
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> {
    /// An empty queue at virtual time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// Schedules `payload` at `time`; returns the assigned sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (strictly before the last popped
    /// event) — the simulation may not rewrite history.
    pub fn schedule(&mut self, time: SimTime, class: EventClass, payload: P) -> u64 {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry(Scheduled {
            time,
            class,
            seq,
            payload,
        }));
        seq
    }

    /// Removes and returns the next event in `(time, class, seq)` order,
    /// advancing the virtual clock to its firing time.
    pub fn pop(&mut self) -> Option<Scheduled<P>> {
        let ev = self.heap.pop()?.0;
        debug_assert!(ev.time >= self.now, "heap order violated");
        self.now = ev.time;
        Some(ev)
    }

    /// Firing time of the next event, if any (does not advance the clock).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.time)
    }

    /// The next event in `(time, class, seq)` order, without removing it
    /// or advancing the clock — lets a multiplexing caller check which
    /// endpoint the head event belongs to before committing to a pop.
    pub fn peek(&self) -> Option<&Scheduled<P>> {
        self.heap.peek().map(|e| &e.0)
    }

    /// Current virtual time: the firing time of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5, EventClass::Timer, "t5");
        q.schedule(1, EventClass::Timer, "t1");
        q.schedule(3, EventClass::Timer, "t3");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!["t1", "t3", "t5"]);
        assert_eq!(q.now(), 5);
    }

    #[test]
    fn delivery_beats_timer_at_equal_time() {
        // The boundary tie-break: a message arriving exactly at the timeout
        // is present, so its Deliver event must pop before the Timer.
        let mut q = EventQueue::new();
        q.schedule(7, EventClass::Timer, "timeout");
        q.schedule(7, EventClass::Deliver, "message");
        assert_eq!(q.pop().unwrap().payload, "message");
        assert_eq!(q.pop().unwrap().payload, "timeout");
    }

    #[test]
    fn insertion_order_breaks_remaining_ties() {
        let mut q = EventQueue::new();
        for tag in ["a", "b", "c"] {
            q.schedule(2, EventClass::Deliver, tag);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, EventClass::Timer, ());
        q.pop();
        q.schedule(3, EventClass::Timer, ());
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut q = EventQueue::new();
        q.schedule(4, EventClass::Timer, "t");
        q.schedule(2, EventClass::Deliver, "d");
        let head = q.peek().unwrap();
        assert_eq!((head.time, head.payload), (2, "d"));
        assert_eq!(q.now(), 0, "peek must not advance the clock");
        assert_eq!(q.pop().unwrap().payload, "d");
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(0, EventClass::Timer, 1);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
