//! Vertex connectivity and vertex-disjoint paths (Menger's theorem).
//!
//! The node-connectivity lower bound of the paper (Theorem 3: connectivity
//! `>= m+u+1` is necessary for `m/u`-degradable agreement) is exercised by
//! experiments that need to *measure* the connectivity of a topology and to
//! *extract* a maximum set of internally-vertex-disjoint paths between node
//! pairs (used by [`crate::routing`] to emulate reliable/degradable links
//! over sparse networks).
//!
//! Implementation: unit-capacity max-flow (Dinic's algorithm) on the
//! standard vertex-split transformation. Systems in this workspace have at
//! most a few hundred nodes, so the `O(n^2)` pair loop in
//! [`vertex_connectivity`] is comfortably fast.

use crate::graph::Graph;
use crate::id::NodeId;

/// A directed arc in the flow network.
#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    cap: i64,
}

/// Minimal Dinic max-flow.
#[derive(Debug)]
struct Dinic {
    arcs: Vec<Arc>,
    // adjacency: for each node, indices into `arcs`
    adj: Vec<Vec<usize>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    fn new(n: usize) -> Self {
        Dinic {
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    fn add_arc(&mut self, from: usize, to: usize, cap: i64) -> usize {
        let id = self.arcs.len();
        self.arcs.push(Arc { to, cap });
        self.arcs.push(Arc { to: from, cap: 0 });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &a in &self.adj[v] {
                let arc = &self.arcs[a];
                if arc.cap > 0 && self.level[arc.to] < 0 {
                    self.level[arc.to] = self.level[v] + 1;
                    queue.push_back(arc.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: i64) -> i64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.adj[v].len() {
            let a = self.adj[v][self.iter[v]];
            let (to, cap) = (self.arcs[a].to, self.arcs[a].cap);
            if cap > 0 && self.level[v] < self.level[to] {
                let d = self.dfs(to, t, f.min(cap));
                if d > 0 {
                    self.arcs[a].cap -= d;
                    self.arcs[a ^ 1].cap += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0
    }

    fn max_flow(&mut self, s: usize, t: usize, limit: i64) -> i64 {
        let mut flow = 0;
        while flow < limit && self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, limit - flow);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

/// Builds the vertex-split flow network for internally-disjoint `s`-`t`
/// paths: every vertex `v ∉ {s, t}` becomes `v_in -> v_out` with capacity 1;
/// `s` and `t` are not split. Returns (dinic, index of `s_out`, `t_in`).
fn build_split_network(g: &Graph, s: NodeId, t: NodeId) -> (Dinic, usize, usize) {
    let n = g.node_count();
    // node v: v_in = 2v, v_out = 2v+1
    let mut d = Dinic::new(2 * n);
    for v in g.nodes() {
        let cap = if v == s || v == t { i64::MAX / 4 } else { 1 };
        d.add_arc(2 * v.index(), 2 * v.index() + 1, cap);
    }
    for (a, b) in g.edges() {
        // Edge arcs are unbounded so that every min cut consists of split
        // (vertex) arcs — required for cut extraction. The one exception is
        // a direct s-t edge, which must count as exactly one path.
        let cap = if (a == s && b == t) || (a == t && b == s) {
            1
        } else {
            i64::MAX / 8
        };
        d.add_arc(2 * a.index() + 1, 2 * b.index(), cap);
        d.add_arc(2 * b.index() + 1, 2 * a.index(), cap);
    }
    (d, 2 * s.index() + 1, 2 * t.index())
}

/// Maximum number of internally-vertex-disjoint paths between `s` and `t`
/// (a direct edge counts as one path).
///
/// # Panics
///
/// Panics if `s == t` or either id is out of range.
pub fn local_connectivity(g: &Graph, s: NodeId, t: NodeId) -> usize {
    assert!(s != t, "local connectivity requires distinct endpoints");
    assert!(s.index() < g.node_count() && t.index() < g.node_count());
    let (mut d, src, dst) = build_split_network(g, s, t);
    d.max_flow(src, dst, i64::MAX / 4) as usize
}

/// The vertex connectivity `κ(G)`: the minimum number of nodes whose removal
/// disconnects the graph (defined as `n-1` for complete graphs, 0 for
/// disconnected or trivial graphs).
pub fn vertex_connectivity(g: &Graph) -> usize {
    let n = g.node_count();
    if n <= 1 {
        return 0;
    }
    if g.is_complete() {
        return n - 1;
    }
    if !g.is_connected() {
        return 0;
    }
    // κ = min over non-adjacent pairs of local connectivity.
    let mut best = n - 1;
    for a in g.nodes() {
        for b in g.nodes() {
            if a < b && !g.has_edge(a, b) {
                best = best.min(local_connectivity(g, a, b));
            }
        }
    }
    best
}

/// Extracts a maximum set of internally-vertex-disjoint `s`-`t` paths.
///
/// Each returned path starts with `s` and ends with `t`; the interiors are
/// pairwise disjoint. The number of paths equals
/// [`local_connectivity`]`(g, s, t)`.
///
/// # Panics
///
/// Panics if `s == t` or either id is out of range.
pub fn vertex_disjoint_paths(g: &Graph, s: NodeId, t: NodeId) -> Vec<Vec<NodeId>> {
    assert!(s != t, "need distinct endpoints");
    let (mut d, src, dst) = build_split_network(g, s, t);
    let k = d.max_flow(src, dst, i64::MAX / 4);

    // Decompose the flow: arcs with positive flow are those whose reverse
    // arc has positive capacity (cap of arc id^1 > 0 beyond its original 0).
    // Record per-node outgoing flow arcs and walk from s.
    let n2 = d.adj.len();
    let mut out_flow: Vec<Vec<usize>> = vec![Vec::new(); n2];
    for (id, _) in d.arcs.iter().enumerate().step_by(2) {
        // forward arc `id`: flow = cap of reverse arc (id+1) since reverse
        // started at 0.
        if d.arcs[id + 1].cap > 0 {
            let from = d.arcs[id + 1].to;
            out_flow[from].push(id);
        }
    }
    let mut paths = Vec::with_capacity(k as usize);
    for _ in 0..k {
        let mut path = vec![s];
        let mut cur = src;
        while cur != dst {
            let arc_id = out_flow[cur]
                .pop()
                .expect("flow conservation guarantees an outgoing unit");
            let next = d.arcs[arc_id].to;
            // Entering a v_in node (even index) means we arrived at vertex
            // next/2; record it when it is a vertex entry.
            if next % 2 == 0 {
                path.push(NodeId::new(next / 2));
                if next == dst {
                    cur = next;
                    continue;
                }
                // traverse the split arc v_in -> v_out (consume its unit)
                let split_arc = out_flow[next]
                    .pop()
                    .expect("vertex split arc must carry the unit");
                cur = d.arcs[split_arc].to;
            } else {
                cur = next;
            }
        }
        paths.push(path);
    }
    paths
}

/// Returns a **minimum vertex cut** of the graph: a smallest set of nodes
/// whose removal disconnects it, or `None` for complete or trivial graphs
/// (which have no vertex cut).
///
/// Used by the Theorem 3 experiments: with connectivity `<= m+u`, the
/// adversary places its faults on a minimum cut `F`, splits it into
/// `F_1` (`|F_1| = m`) and `F_2`, and defeats degradable agreement exactly
/// as in the paper's proof sketch.
pub fn minimum_vertex_cut(g: &Graph) -> Option<std::collections::BTreeSet<NodeId>> {
    let n = g.node_count();
    if n <= 1 || g.is_complete() {
        return None;
    }
    if !g.is_connected() {
        return Some(std::collections::BTreeSet::new());
    }
    let mut best: Option<(usize, NodeId, NodeId)> = None;
    for a in g.nodes() {
        for b in g.nodes() {
            if a < b && !g.has_edge(a, b) {
                let k = local_connectivity(g, a, b);
                if best.is_none_or(|(bk, _, _)| k < bk) {
                    best = Some((k, a, b));
                }
            }
        }
    }
    let (_, s, t) = best?;
    // Re-run the flow and extract the cut from the residual graph: a split
    // arc v_in -> v_out with v_in reachable from s_out and v_out not
    // reachable is a cut vertex.
    let (mut d, src, dst) = build_split_network(g, s, t);
    d.max_flow(src, dst, i64::MAX / 4);
    // BFS on residual arcs.
    let mut reach = vec![false; d.adj.len()];
    let mut queue = std::collections::VecDeque::new();
    reach[src] = true;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        for &a in &d.adj[v] {
            let arc = &d.arcs[a];
            if arc.cap > 0 && !reach[arc.to] {
                reach[arc.to] = true;
                queue.push_back(arc.to);
            }
        }
    }
    let mut cut = std::collections::BTreeSet::new();
    for v in g.nodes() {
        if v == s || v == t {
            continue;
        }
        let (vin, vout) = (2 * v.index(), 2 * v.index() + 1);
        if reach[vin] && !reach[vout] {
            cut.insert(v);
        }
    }
    debug_assert!(
        !g.is_connected_without(&cut),
        "extracted cut must disconnect"
    );
    Some(cut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use std::collections::BTreeSet;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn complete_graph_connectivity() {
        let t = Topology::complete(6);
        assert_eq!(vertex_connectivity(t.graph()), 5);
    }

    #[test]
    fn disconnected_graph_connectivity_zero() {
        let g = Graph::empty(4);
        assert_eq!(vertex_connectivity(&g), 0);
    }

    #[test]
    fn cycle_local_connectivity() {
        let t = Topology::ring(6);
        assert_eq!(local_connectivity(t.graph(), n(0), n(3)), 2);
    }

    #[test]
    fn direct_edge_counts_as_path() {
        let mut g = Graph::empty(2);
        g.add_edge(n(0), n(1));
        assert_eq!(local_connectivity(&g, n(0), n(1)), 1);
        let paths = vertex_disjoint_paths(&g, n(0), n(1));
        assert_eq!(paths, vec![vec![n(0), n(1)]]);
    }

    #[test]
    fn adjacent_pair_in_complete_graph() {
        let t = Topology::complete(5);
        // 1 direct path + 3 two-hop paths
        assert_eq!(local_connectivity(t.graph(), n(0), n(1)), 4);
        let paths = vertex_disjoint_paths(t.graph(), n(0), n(1));
        assert_eq!(paths.len(), 4);
        assert_paths_valid_and_disjoint(t.graph(), &paths, n(0), n(1));
    }

    fn assert_paths_valid_and_disjoint(g: &Graph, paths: &[Vec<NodeId>], s: NodeId, t: NodeId) {
        let mut interior_seen = BTreeSet::new();
        for p in paths {
            assert_eq!(*p.first().unwrap(), s);
            assert_eq!(*p.last().unwrap(), t);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "missing edge {}-{}", w[0], w[1]);
            }
            for &v in &p[1..p.len() - 1] {
                assert!(interior_seen.insert(v), "interior vertex {v} reused");
                assert!(v != s && v != t);
            }
        }
    }

    #[test]
    fn harary_paths_count_matches_connectivity() {
        for (k, nn) in [(2, 7), (3, 8), (4, 9), (5, 10)] {
            let t = Topology::harary(k, nn);
            for target in 1..nn {
                let paths = vertex_disjoint_paths(t.graph(), n(0), n(target));
                assert!(
                    paths.len() >= k,
                    "H({k},{nn}) 0->{target}: only {} paths",
                    paths.len()
                );
                assert_paths_valid_and_disjoint(t.graph(), &paths, n(0), n(target));
            }
        }
    }

    #[test]
    fn path_graph_has_single_route() {
        let t = Topology::path(5);
        let paths = vertex_disjoint_paths(t.graph(), n(0), n(4));
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0], vec![n(0), n(1), n(2), n(3), n(4)]);
    }

    #[test]
    fn grid_corner_to_corner() {
        let t = Topology::grid(3, 3);
        let paths = vertex_disjoint_paths(t.graph(), n(0), n(8));
        assert_eq!(paths.len(), 2);
        assert_paths_valid_and_disjoint(t.graph(), &paths, n(0), n(8));
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn same_endpoint_panics() {
        let t = Topology::complete(3);
        local_connectivity(t.graph(), n(1), n(1));
    }

    #[test]
    fn minimum_cut_of_ring() {
        let t = Topology::ring(6);
        let cut = minimum_vertex_cut(t.graph()).expect("rings have cuts");
        assert_eq!(cut.len(), 2);
        assert!(!t.graph().is_connected_without(&cut));
    }

    #[test]
    fn minimum_cut_of_harary_matches_k() {
        for (k, nn) in [(2, 6), (3, 8), (4, 9)] {
            let t = Topology::harary(k, nn);
            let cut = minimum_vertex_cut(t.graph()).expect("non-complete");
            assert_eq!(cut.len(), k, "H({k},{nn})");
            assert!(!t.graph().is_connected_without(&cut));
        }
    }

    #[test]
    fn complete_graph_has_no_cut() {
        let t = Topology::complete(5);
        assert_eq!(minimum_vertex_cut(t.graph()), None);
    }

    #[test]
    fn star_cut_is_center() {
        let t = Topology::star(5);
        let cut = minimum_vertex_cut(t.graph()).unwrap();
        assert_eq!(cut, [n(0)].into_iter().collect::<BTreeSet<_>>());
    }

    #[test]
    fn removing_a_cut_matches_connectivity() {
        // In H_{3,8}, removing any 2 nodes must leave the graph connected,
        // and there exists a 3-node cut.
        let t = Topology::harary(3, 8);
        let g = t.graph();
        for a in 0..8 {
            for b in (a + 1)..8 {
                let cut: BTreeSet<_> = [n(a), n(b)].into_iter().collect();
                assert!(g.is_connected_without(&cut));
            }
        }
        let mut found_cut = false;
        for a in 0..8 {
            for b in (a + 1)..8 {
                for c in (b + 1)..8 {
                    let cut: BTreeSet<_> = [n(a), n(b), n(c)].into_iter().collect();
                    if !g.is_connected_without(&cut) {
                        found_cut = true;
                    }
                }
            }
        }
        assert!(found_cut, "a 3-cut must exist in H_{{3,8}}");
    }
}
