//! Topology generators.
//!
//! Theorem 3 of the paper states that `m/u`-degradable agreement requires
//! network connectivity at least `m+u+1`, and that this connectivity is
//! also sufficient. The experiments therefore need graph families with
//! *exactly controllable* vertex connectivity; the Harary graph
//! `H_{k,n}` ([`Topology::harary`]) is the canonical minimal `k`-connected
//! graph and is what the connectivity experiments sweep over.

use crate::graph::Graph;
use crate::id::NodeId;
use crate::rng::SimRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named topology: an undirected graph plus a human-readable label used
/// in experiment output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    graph: Graph,
}

impl Topology {
    /// Wraps an arbitrary graph with a label.
    pub fn from_graph(name: impl Into<String>, graph: Graph) -> Self {
        Topology {
            name: name.into(),
            graph,
        }
    }

    /// The complete graph `K_n` (the paper's algorithm BYZ assumes full
    /// connectivity).
    pub fn complete(n: usize) -> Self {
        let mut g = Graph::empty(n);
        for a in 0..n {
            for b in (a + 1)..n {
                g.add_edge(NodeId::new(a), NodeId::new(b));
            }
        }
        Topology::from_graph(format!("complete({n})"), g)
    }

    /// The cycle `C_n` (connectivity 2 for `n >= 3`).
    pub fn ring(n: usize) -> Self {
        let mut g = Graph::empty(n);
        if n >= 2 {
            for i in 0..n {
                g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n));
            }
        }
        Topology::from_graph(format!("ring({n})"), g)
    }

    /// The path `P_n` (connectivity 1 for `n >= 2`).
    pub fn path(n: usize) -> Self {
        let mut g = Graph::empty(n);
        for i in 1..n {
            g.add_edge(NodeId::new(i - 1), NodeId::new(i));
        }
        Topology::from_graph(format!("path({n})"), g)
    }

    /// A star with node 0 at the centre (connectivity 1 for `n >= 3`).
    pub fn star(n: usize) -> Self {
        let mut g = Graph::empty(n);
        for i in 1..n {
            g.add_edge(NodeId::new(0), NodeId::new(i));
        }
        Topology::from_graph(format!("star({n})"), g)
    }

    /// A `rows x cols` grid (connectivity 2 for non-degenerate grids).
    pub fn grid(rows: usize, cols: usize) -> Self {
        let n = rows * cols;
        let mut g = Graph::empty(n);
        let at = |r: usize, c: usize| NodeId::new(r * cols + c);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    g.add_edge(at(r, c), at(r, c + 1));
                }
                if r + 1 < rows {
                    g.add_edge(at(r, c), at(r + 1, c));
                }
            }
        }
        Topology::from_graph(format!("grid({rows}x{cols})"), g)
    }

    /// The Harary graph `H_{k,n}`: the minimal graph on `n` nodes with
    /// vertex connectivity exactly `k` (for `1 <= k < n`).
    ///
    /// Construction (Harary 1962):
    /// * place the nodes on a circle and connect each node to its
    ///   `floor(k/2)` nearest neighbours on each side;
    /// * if `k` is odd and `n` even, additionally connect each node `i` to
    ///   the diametrically opposite node `i + n/2`;
    /// * if both `k` and `n` are odd, additionally connect node `i` to node
    ///   `i + (n-1)/2` for `0 <= i <= (n-1)/2`.
    ///
    /// Degenerate parameters are handled gracefully: `k == 0` gives the
    /// edgeless graph and `k >= n-1` gives the complete graph.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn harary(k: usize, n: usize) -> Self {
        assert!(n > 0, "harary graph needs at least one node");
        if k == 0 {
            return Topology::from_graph(format!("harary({k},{n})"), Graph::empty(n));
        }
        if k >= n - 1 {
            let mut t = Topology::complete(n);
            t.name = format!("harary({k},{n})");
            return t;
        }
        let mut g = Graph::empty(n);
        let half = k / 2;
        for i in 0..n {
            for d in 1..=half {
                g.add_edge(NodeId::new(i), NodeId::new((i + d) % n));
            }
        }
        if k == 1 {
            // H_{1,n} is just a spanning path.
            for i in 1..n {
                g.add_edge(NodeId::new(i - 1), NodeId::new(i));
            }
        }
        if k % 2 == 1 && k > 1 {
            if n.is_multiple_of(2) {
                for i in 0..n / 2 {
                    g.add_edge(NodeId::new(i), NodeId::new(i + n / 2));
                }
            } else {
                for i in 0..=(n - 1) / 2 {
                    g.add_edge(NodeId::new(i), NodeId::new((i + (n - 1) / 2) % n));
                }
            }
        }
        Topology::from_graph(format!("harary({k},{n})"), g)
    }

    /// The `d`-dimensional hypercube `Q_d` on `2^d` nodes (vertex
    /// connectivity exactly `d`) — a classic sparse interconnect whose
    /// connectivity scales with its dimension, convenient for Theorem 3
    /// sweeps at larger `m+u`.
    pub fn hypercube(d: usize) -> Self {
        let n = 1usize << d;
        let mut g = Graph::empty(n);
        for v in 0..n {
            for bit in 0..d {
                let w = v ^ (1 << bit);
                if v < w {
                    g.add_edge(NodeId::new(v), NodeId::new(w));
                }
            }
        }
        Topology::from_graph(format!("hypercube({d})"), g)
    }

    /// The wheel `W_n`: node 0 is a hub connected to an `(n-1)`-cycle
    /// (vertex connectivity 3 for `n >= 5`).
    pub fn wheel(n: usize) -> Self {
        assert!(n >= 4, "a wheel needs a hub plus a cycle of length >= 3");
        let mut g = Graph::empty(n);
        for i in 1..n {
            g.add_edge(NodeId::new(0), NodeId::new(i));
            let next = if i == n - 1 { 1 } else { i + 1 };
            g.add_edge(NodeId::new(i), NodeId::new(next));
        }
        Topology::from_graph(format!("wheel({n})"), g)
    }

    /// A random graph: starts from `H_{k,n}` (guaranteeing connectivity at
    /// least `k`) and adds each remaining edge independently with
    /// probability `extra_p`.
    pub fn random_at_least_k_connected(k: usize, n: usize, extra_p: f64, rng: &mut SimRng) -> Self {
        let mut t = Topology::harary(k, n);
        for a in 0..n {
            for b in (a + 1)..n {
                let (na, nb) = (NodeId::new(a), NodeId::new(b));
                if !t.graph.has_edge(na, nb) && rng.chance(extra_p) {
                    t.graph.add_edge(na, nb);
                }
            }
        }
        t.name = format!("random(k>={k},n={n})");
        t
    }

    /// Label of this topology.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the underlying graph (for fault experiments that
    /// sever links).
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::vertex_connectivity;

    #[test]
    fn complete_graph_edges() {
        let t = Topology::complete(5);
        assert_eq!(t.graph().edge_count(), 10);
        assert!(t.graph().is_complete());
    }

    #[test]
    fn ring_connectivity_is_two() {
        let t = Topology::ring(6);
        assert_eq!(vertex_connectivity(t.graph()), 2);
    }

    #[test]
    fn path_connectivity_is_one() {
        let t = Topology::path(5);
        assert_eq!(vertex_connectivity(t.graph()), 1);
    }

    #[test]
    fn star_connectivity_is_one() {
        let t = Topology::star(6);
        assert_eq!(vertex_connectivity(t.graph()), 1);
    }

    #[test]
    fn grid_connectivity_is_two() {
        let t = Topology::grid(3, 4);
        assert_eq!(vertex_connectivity(t.graph()), 2);
    }

    #[test]
    fn harary_even_k() {
        for n in [6, 7, 9] {
            let t = Topology::harary(4, n);
            assert_eq!(vertex_connectivity(t.graph()), 4, "H(4,{n})");
        }
    }

    #[test]
    fn harary_odd_k_even_n() {
        let t = Topology::harary(3, 8);
        assert_eq!(vertex_connectivity(t.graph()), 3);
    }

    #[test]
    fn harary_odd_k_odd_n() {
        let t = Topology::harary(3, 9);
        assert_eq!(vertex_connectivity(t.graph()), 3);
        let t = Topology::harary(5, 11);
        assert_eq!(vertex_connectivity(t.graph()), 5);
    }

    #[test]
    fn harary_degenerate() {
        assert_eq!(Topology::harary(0, 5).graph().edge_count(), 0);
        assert!(Topology::harary(4, 5).graph().is_complete());
        assert!(Topology::harary(9, 5).graph().is_complete());
    }

    #[test]
    fn harary_k1_is_spanning_path() {
        let t = Topology::harary(1, 6);
        assert_eq!(vertex_connectivity(t.graph()), 1);
        assert!(t.graph().is_connected());
    }

    #[test]
    fn hypercube_connectivity_is_dimension() {
        for d in 1..=4usize {
            let t = Topology::hypercube(d);
            assert_eq!(t.node_count(), 1 << d);
            assert_eq!(vertex_connectivity(t.graph()), d, "Q_{d}");
            assert_eq!(t.graph().edge_count(), d * (1 << d) / 2);
        }
    }

    #[test]
    fn wheel_connectivity_is_three() {
        for n in [5usize, 6, 9] {
            let t = Topology::wheel(n);
            assert_eq!(vertex_connectivity(t.graph()), 3, "W_{n}");
        }
        // Degenerate wheel W_4 is K_4.
        assert!(Topology::wheel(4).graph().is_complete());
    }

    #[test]
    #[should_panic(expected = "hub plus a cycle")]
    fn tiny_wheel_rejected() {
        Topology::wheel(3);
    }

    #[test]
    fn random_preserves_minimum_connectivity() {
        let mut rng = SimRng::seed(42);
        for trial in 0..5 {
            let t = Topology::random_at_least_k_connected(3, 10, 0.3, &mut rng);
            assert!(
                vertex_connectivity(t.graph()) >= 3,
                "trial {trial}: connectivity dropped below 3"
            );
        }
    }
}
