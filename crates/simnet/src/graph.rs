//! Undirected simple graphs.
//!
//! The protocols in this workspace run on systems of at most a few hundred
//! nodes, so the representation favours clarity: an adjacency-set vector.

use crate::id::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// An undirected simple graph over nodes `0..n`.
///
/// ```
/// use simnet::{Graph, NodeId};
/// let mut g = Graph::empty(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));
/// assert_eq!(g.degree(NodeId::new(2)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<BTreeSet<usize>>,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        Graph {
            adj: vec![BTreeSet::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Adds the undirected edge `{a, b}`. Self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        let (a, b) = (a.index(), b.index());
        assert!(
            a < self.adj.len() && b < self.adj.len(),
            "node out of range"
        );
        if a == b {
            return;
        }
        self.adj[a].insert(b);
        self.adj[b].insert(a);
    }

    /// Removes the undirected edge `{a, b}` if present.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) {
        let (a, b) = (a.index(), b.index());
        if a < self.adj.len() && b < self.adj.len() {
            self.adj[a].remove(&b);
            self.adj[b].remove(&a);
        }
    }

    /// Whether the edge `{a, b}` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adj
            .get(a.index())
            .is_some_and(|s| s.contains(&b.index()))
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Minimum degree over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(BTreeSet::len).min().unwrap_or(0)
    }

    /// Iterator over the neighbours of `v` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[v.index()].iter().map(|&i| NodeId::new(i))
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + Clone {
        NodeId::all(self.node_count())
    }

    /// Iterator over all edges as `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(a, nbrs)| {
            nbrs.iter()
                .filter(move |&&b| a < b)
                .map(move |&b| (NodeId::new(a), NodeId::new(b)))
        })
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        self.reachable_from(NodeId::new(0), &BTreeSet::new()).len() == n
    }

    /// Whether every pair of distinct nodes is adjacent.
    pub fn is_complete(&self) -> bool {
        let n = self.node_count();
        self.adj.iter().all(|s| s.len() == n - 1)
    }

    /// Set of nodes reachable from `start` without passing through any node
    /// in `blocked` (the start itself is returned even if blocked-free paths
    /// exist only trivially; if `start` is blocked the result is empty).
    pub fn reachable_from(&self, start: NodeId, blocked: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        if blocked.contains(&start) || start.index() >= self.node_count() {
            return seen;
        }
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(v) = stack.pop() {
            for w in self.neighbors(v) {
                if !blocked.contains(&w) && seen.insert(w) {
                    stack.push(w);
                }
            }
        }
        seen
    }

    /// Returns the graph with the nodes in `removed` (and incident edges)
    /// conceptually deleted, as a blocked-set wrapper check: convenience for
    /// "does removing this set disconnect the graph?".
    pub fn is_connected_without(&self, removed: &BTreeSet<NodeId>) -> bool {
        let survivors: Vec<NodeId> = self.nodes().filter(|v| !removed.contains(v)).collect();
        match survivors.first() {
            None => true,
            Some(&s) => self.reachable_from(s, removed).len() == survivors.len(),
        }
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, e={})", self.node_count(), self.edge_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_graph_basics() {
        let g = Graph::empty(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.is_connected());
        assert!(!g.is_complete());
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = Graph::empty(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        assert_eq!(g.edge_count(), 2);
        assert!(g.is_connected());
        g.remove_edge(n(0), n(1));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.is_connected());
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = Graph::empty(2);
        g.add_edge(n(0), n(0));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = Graph::empty(2);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(0));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn reachability_with_blocked_cut() {
        // Path 0-1-2: blocking node 1 separates 0 from 2.
        let mut g = Graph::empty(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let blocked: BTreeSet<_> = [n(1)].into_iter().collect();
        let reach = g.reachable_from(n(0), &blocked);
        assert!(reach.contains(&n(0)));
        assert!(!reach.contains(&n(2)));
        assert!(!g.is_connected_without(&blocked));
    }

    #[test]
    fn edges_iterator_is_ordered_pairs() {
        let mut g = Graph::empty(3);
        g.add_edge(n(2), n(0));
        g.add_edge(n(1), n(2));
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(n(0), n(2)), (n(1), n(2))]);
    }

    #[test]
    fn single_node_is_connected() {
        assert!(Graph::empty(1).is_connected());
        assert!(Graph::empty(0).is_connected());
    }

    #[test]
    fn min_degree_tracks_smallest() {
        let mut g = Graph::empty(3);
        g.add_edge(n(0), n(1));
        assert_eq!(g.min_degree(), 0);
        g.add_edge(n(1), n(2));
        g.add_edge(n(0), n(2));
        assert_eq!(g.min_degree(), 2);
    }
}
