//! Deterministic randomness.
//!
//! Every stochastic component in the workspace (adversaries, latency
//! models, Monte Carlo sweeps) draws from a [`SimRng`] created from an
//! explicit `u64` seed, so that every experiment and every test is exactly
//! reproducible. Child generators are derived with [`SimRng::fork`], which
//! mixes a stream label into the seed so that parallel workers never share
//! a stream.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seedable, forkable deterministic random number generator.
///
/// Wraps `ChaCha8Rng`; the wrapper exists so downstream crates depend on a
/// stable local type rather than a specific RNG crate version.
///
/// ```
/// use simnet::SimRng;
/// use rand::RngCore;
/// let mut a = SimRng::seed(1);
/// let mut b = SimRng::seed(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng(ChaCha8Rng);

impl SimRng {
    /// Creates a generator from a seed.
    pub fn seed(seed: u64) -> Self {
        SimRng(ChaCha8Rng::seed_from_u64(seed))
    }

    /// Derives an independent child generator labeled by `stream`.
    ///
    /// Forking with distinct labels yields statistically independent
    /// streams; forking with the same label twice yields identical streams
    /// (which is intentional: it makes per-entity randomness stable under
    /// reordering of the simulation loop).
    pub fn fork(&self, stream: u64) -> Self {
        let mut base = self.0.clone();
        let mixed = base
            .next_u64()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        SimRng(ChaCha8Rng::seed_from_u64(mixed ^ stream.rotate_left(17)))
    }

    /// Derives the generator for one unit of work (e.g. a Monte Carlo
    /// trial) directly from a master seed and the unit's index.
    ///
    /// This is the seed-derivation entry point for parallel sweeps: because
    /// the stream depends only on `(master_seed, stream)` — never on which
    /// worker thread runs the unit or in what order — results are
    /// bit-identical for any worker count. Equivalent to
    /// `SimRng::seed(master_seed).fork(stream)`, provided as a named API so
    /// callers state the intent and keep the derivation rule in one place.
    ///
    /// ```
    /// use simnet::SimRng;
    /// use rand::RngCore;
    /// let mut a = SimRng::derive(42, 3);
    /// let mut b = SimRng::seed(42).fork(3);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    pub fn derive(master_seed: u64, stream: u64) -> Self {
        SimRng::seed(master_seed).fork(stream)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.0.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.0.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of `items`, or `None` when empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.below(items.len() as u64) as usize;
            Some(&items[i])
        }
    }

    /// Chooses `k` distinct indices from `0..n` (Floyd's algorithm),
    /// returned in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn choose_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} of {n}");
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = self.below((j + 1) as u64) as usize;
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::seed(99);
        let mut b = SimRng::seed(99);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_stable_and_distinct() {
        let base = SimRng::seed(7);
        let mut f1 = base.fork(1);
        let mut f1b = base.fork(1);
        let mut f2 = base.fork(2);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        // Overwhelmingly likely distinct:
        let mut g1 = base.fork(1);
        assert_ne!(g1.next_u64(), f2.next_u64());
    }

    #[test]
    fn derive_depends_only_on_seed_and_stream() {
        let mut a = SimRng::derive(42, 9);
        let mut b = SimRng::seed(42).fork(9);
        let mut c = SimRng::derive(42, 10);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(SimRng::derive(42, 9).next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SimRng::seed(0).below(0);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SimRng::seed(5);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn choose_indices_distinct_and_sorted() {
        let mut r = SimRng::seed(11);
        for _ in 0..100 {
            let v = r.choose_indices(10, 4);
            assert_eq!(v.len(), 4);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
            assert!(v.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn choose_indices_full_set() {
        let mut r = SimRng::seed(1);
        assert_eq!(r.choose_indices(5, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(2);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.1)); // clamped to 1.0 => always true
    }
}
