//! Property-based tests for the simulator substrate.

use proptest::prelude::*;
use simnet::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Message conservation: everything handed to the engine is delivered
    /// or accounted for by exactly one drop reason.
    #[test]
    fn message_conservation(n in 2usize..10, rounds in 1usize..4, seed in 0u64..1_000,
                            crash in 0usize..10, om_p in 0u32..100) {
        let mut faults = FaultPlan::healthy();
        if crash < n {
            faults.insert(NodeId::new(crash), FaultKind::Crash { from_round: 1 });
        }
        let om_node = NodeId::new((crash + 1) % n);
        faults.insert(om_node, FaultKind::Omission { p: om_p as f64 / 100.0 });
        let mut engine = RoundEngine::<u8>::new(Topology::complete(n), seed)
            .with_faults(faults);
        let out = engine.run(rounds, |ctx| ctx.broadcast(1));
        prop_assert_eq!(
            out.sent,
            out.delivered + out.dropped_crash + out.dropped_omission + out.late + out.no_link
        );
    }

    /// Identical seeds give identical outcomes even under stochastic
    /// faults and latency.
    #[test]
    fn engine_determinism(n in 2usize..8, seed in 0u64..1_000) {
        let mk = || {
            let faults = FaultPlan::healthy()
                .with(NodeId::new(0), FaultKind::Omission { p: 0.4 });
            let mut engine = RoundEngine::<u8>::new(Topology::complete(n), seed)
                .with_faults(faults)
                .with_latency(LatencyModel::Uniform { lo: 0, hi: 10 })
                .with_deadline(7);
            engine.run(3, |ctx| ctx.broadcast(2))
        };
        prop_assert_eq!(mk(), mk());
    }

    /// A fault-free broadcast on a complete graph reaches every peer.
    #[test]
    fn broadcast_reaches_all(n in 2usize..10, seed in 0u64..100) {
        let mut engine = RoundEngine::<u64>::new(Topology::complete(n), seed);
        let mut seen = vec![0usize; n];
        engine.run_with(2, |i, ctx| {
            if ctx.round() == 0 {
                ctx.broadcast(9);
            } else {
                seen[i] = ctx.inbox().len();
            }
        });
        for (i, &count) in seen.iter().enumerate() {
            prop_assert_eq!(count, n - 1, "node {} inbox", i);
        }
    }

    /// Harary graphs use the minimum edge count `ceil(k*n/2)`.
    #[test]
    fn harary_edge_minimality(k in 2usize..5, extra in 0usize..6) {
        let n = k + 2 + extra;
        let topo = Topology::harary(k, n);
        prop_assert_eq!(topo.graph().edge_count(), (k * n).div_ceil(2));
    }

    /// Fault plans partition the nodes.
    #[test]
    fn fault_plan_partition(n in 1usize..12, picks in proptest::collection::btree_set(0usize..12, 0..6)) {
        let mut plan = FaultPlan::healthy();
        for &p in picks.iter().filter(|&&p| p < n) {
            plan.insert(NodeId::new(p), FaultKind::Byzantine);
        }
        let faulty = plan.faulty_set();
        let free: BTreeSet<NodeId> = plan.fault_free(n).into_iter().collect();
        prop_assert_eq!(faulty.len() + free.len(), n);
        prop_assert!(faulty.intersection(&free).next().is_none());
    }

    /// Graph edge add/remove round-trips.
    #[test]
    fn edge_roundtrip(n in 2usize..10, a in 0usize..10, b in 0usize..10) {
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let mut g = Graph::empty(n);
        let (na, nb) = (NodeId::new(a), NodeId::new(b));
        g.add_edge(na, nb);
        prop_assert!(g.has_edge(na, nb) && g.has_edge(nb, na));
        g.remove_edge(nb, na);
        prop_assert!(!g.has_edge(na, nb));
        prop_assert_eq!(g.edge_count(), 0);
    }

    /// Local connectivity is symmetric (undirected graphs).
    #[test]
    fn local_connectivity_symmetric(k in 2usize..5, extra in 0usize..4, t in 1usize..10) {
        let n = k + 3 + extra;
        let topo = Topology::harary(k, n);
        let t = NodeId::new(1 + t % (n - 1));
        let s = NodeId::new(0);
        prop_assert_eq!(
            local_connectivity(topo.graph(), s, t),
            local_connectivity(topo.graph(), t, s)
        );
    }

    /// The degradable link rule never accepts a value that appears on
    /// fewer than k-m paths.
    #[test]
    fn link_rule_threshold_sound(
        copies in proptest::collection::vec(proptest::option::of(0u8..4), 1..10),
        m in 0usize..3,
    ) {
        let link = DegradableLink::new(m);
        if let Delivery::Accepted(v) = link.resolve(&copies) {
            let count = copies.iter().flatten().filter(|&&c| c == v).count();
            prop_assert!(count >= copies.len().saturating_sub(m));
        }
    }
}
