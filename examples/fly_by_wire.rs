//! Fly-by-wire: the paper's motivating safety scenario (Section 3).
//!
//! Run with: `cargo run --example fly_by_wire`
//!
//! A pitch-control loop runs on two alternative channel systems while two
//! channels turn Byzantine for a 10-cycle burst:
//!
//! * Figure 1(a): 3 channels + OM(1) + 2-of-3 vote  -> the colluding
//!   faults push a wrong correction through the vote and the aircraft
//!   leaves the safe envelope;
//! * Figure 1(b): 4 channels + 1/2-degradable BYZ + 3-of-4 vote -> the
//!   controller receives the default value, holds the actuator, and
//!   alerts the pilot; the flight survives.

use channels::prelude::*;
use degradable::Params;

fn sparkline(traj: &[i64], envelope: i64) -> String {
    traj.iter()
        .map(|&v| {
            let a = v.abs();
            if a > envelope {
                'X'
            } else if a > envelope / 2 {
                '#'
            } else if a > envelope / 4 {
                '+'
            } else {
                '.'
            }
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = FlightConfig::default();
    println!(
        "flight: {} cycles, two-channel Byzantine burst at cycles {}..{}, safe envelope ±{}",
        config.cycles,
        config.burst_start,
        config.burst_start + config.burst_len,
        config.safe_envelope
    );

    for arch in [
        Architecture::Byzantine { m: 1 },
        Architecture::Degradable {
            params: Params::new(1, 2)?,
        },
    ] {
        let report = fly(arch, config);
        println!("\n=== {} ===", report.architecture);
        println!(
            "  pitch |error| per cycle: {}",
            sparkline(&report.trajectory, config.safe_envelope)
        );
        println!("  correct actuations : {}", report.correct_cycles);
        println!("  pilot alerts (hold): {}", report.pilot_alerts);
        println!("  wrong actuations   : {}", report.wrong_actuations);
        println!(
            "  outcome            : {}",
            if report.crashed {
                "LEFT SAFE ENVELOPE"
            } else {
                "flight completed safely"
            }
        );
    }
    Ok(())
}
