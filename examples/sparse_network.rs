//! Degradable agreement over a sparse network (Theorem 3).
//!
//! Run with: `cargo run --example sparse_network`
//!
//! BYZ assumes full connectivity; on a sparse topology each point-to-point
//! message travels over m+u+1 vertex-disjoint paths with the degradable
//! acceptance rule. On a Harary graph of connectivity exactly m+u+1 the
//! agreement conditions hold even with faults corrupting both protocol
//! messages and relayed copies; one step below, a cut adversary wins.

use degradable::sparse::{run_sparse, sender_cut_topology, RelayCorruption};
use degradable::{check_degradable, ByzInstance, Params, Strategy, Val, Verdict};
use simnet::{vertex_connectivity, NodeId, Topology};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(1, 2)?; // needs connectivity m+u+1 = 4
    let instance = ByzInstance::new(8, params, NodeId::new(0))?;
    let strategies: BTreeMap<NodeId, Strategy<u64>> = [
        (NodeId::new(3), Strategy::ConstantLie(Val::Value(9))),
        (NodeId::new(5), Strategy::ConstantLie(Val::Value(9))),
    ]
    .into_iter()
    .collect();

    // Sufficient connectivity: Harary graph H(4,8).
    let topo = Topology::harary(4, 8);
    println!(
        "topology {} with vertex connectivity {} (required: {})",
        topo.name(),
        vertex_connectivity(topo.graph()),
        params.min_connectivity()
    );
    let run = run_sparse(
        &instance,
        &topo,
        &Val::Value(7),
        &strategies,
        &RelayCorruption::ReplaceWith(Val::Value(9)),
        false,
    )?;
    for (r, v) in &run.decisions {
        if !strategies.contains_key(r) {
            println!("  fault-free {r} decided {v}");
        }
    }
    println!(
        "  degraded deliveries between fault-free nodes: {}",
        run.degraded_deliveries
    );
    let record = run.record(
        &instance,
        Val::Value(7),
        strategies.keys().copied().collect(),
    );
    match check_degradable(&record) {
        Verdict::Satisfied(s) => println!("  => {} holds on the sparse network", s.condition),
        other => println!("  => unexpected: {other:?}"),
    }

    // Below the bound: connectivity m+u = 3 with the cut adversary.
    let below = sender_cut_topology(8, 3);
    println!(
        "\ntopology {} with vertex connectivity {} (one below the bound)",
        below.name(),
        vertex_connectivity(below.graph())
    );
    let cut_liars: BTreeMap<NodeId, Strategy<u64>> = [
        (NodeId::new(2), Strategy::ConstantLie(Val::Value(9))),
        (NodeId::new(3), Strategy::ConstantLie(Val::Value(9))),
    ]
    .into_iter()
    .collect();
    let run = run_sparse(
        &instance,
        &below,
        &Val::Value(7),
        &cut_liars,
        &RelayCorruption::ReplaceWith(Val::Value(9)),
        true,
    )?;
    let record = run.record(
        &instance,
        Val::Value(7),
        cut_liars.keys().copied().collect(),
    );
    match check_degradable(&record) {
        Verdict::Violated(v) => println!("  => as Theorem 3 predicts, the cut adversary wins: {v}"),
        other => println!("  => unexpected: {other:?}"),
    }
    Ok(())
}
