//! The 7-node trade-off of Section 2.
//!
//! Run with: `cargo run --example seven_node_tradeoff`
//!
//! "Given a system consisting of 7 nodes, one may achieve 2/2-degradable
//! agreement, or 1/4-degradable agreement, or 0/6-degradable agreement" —
//! the capability to achieve Byzantine agreement can be traded for
//! degraded agreement up to a larger number of faults.
//!
//! We subject all three configurations to the same three-fault attack:
//! only the configurations with u >= 3 keep any guarantee, and they hold.

use degradable::analysis::tradeoffs;
use degradable::{check_degradable, AdversaryRun, ByzInstance, Strategy, Val, Verdict};
use simnet::NodeId;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 7;
    println!("maximal (m, u) configurations of a {N}-node system:");
    for p in tradeoffs(N) {
        println!(
            "  {p:<16} -> Byzantine agreement up to {} faults, degraded up to {}",
            p.m(),
            p.u()
        );
    }

    // One attack, three contracts: three colluding lying receivers.
    let strategies: BTreeMap<NodeId, Strategy<u64>> = (4..7)
        .map(|i| (NodeId::new(i), Strategy::ConstantLie(Val::Value(9))))
        .collect();
    println!("\nattack: receivers n4, n5, n6 collude and lie '9'; sender honestly sends 1\n");

    for params in tradeoffs(N) {
        let instance = ByzInstance::new(N, params, NodeId::new(0))?;
        let record = AdversaryRun {
            instance,
            sender_value: Val::Value(1),
            strategies: strategies.clone(),
        }
        .run();
        let decisions: Vec<String> = record
            .fault_free_decisions()
            .iter()
            .map(|(r, v)| format!("{r}={v}"))
            .collect();
        let verdict = match check_degradable(&record) {
            Verdict::Satisfied(s) => format!("{} holds", s.condition),
            Verdict::Violated(v) => format!("VIOLATED: {v}"),
            Verdict::BeyondU { f } => format!("f = {f} > u: no promise (allowed to be anything)"),
        };
        println!(
            "{:<16} {}  [{}]",
            params.to_string(),
            verdict,
            decisions.join(" ")
        );
    }

    println!("\nreading: 2/2 makes no promise at f=3; 1/4 and 0/6 degrade gracefully —");
    println!("every fault-free receiver lands on the sender's value or V_d.");
    Ok(())
}
