//! A replicated command log over degradable agreement.
//!
//! Run with: `cargo run --example replicated_log`
//!
//! Node 0 sequences commands to four replicas through 1/2-degradable
//! agreement. During a two-fault window the fault-free replicas' logs
//! diverge only by *holes* (`V_d` slots) — never by conflicting commands —
//! and a later repair round (backward recovery) fills the holes once the
//! transient clears. The run finishes with an execution narration of one
//! slot, showing exactly how the VOTE folds filtered the lies.

use channels::prelude::*;
use degradable::{explain_receiver, AdversaryRun, ByzInstance, Params, Strategy, Val};
use simnet::NodeId;
use std::collections::BTreeMap;

fn render(log: &ReplicatedLog, replicas: usize) -> String {
    let mut out = String::new();
    for i in 1..=replicas {
        let cells: Vec<String> = log
            .log_of(NodeId::new(i))
            .iter()
            .map(|v| match v {
                Val::Value(c) => format!("{c:>3}"),
                Val::Default => "  ·".to_string(),
            })
            .collect();
        out.push_str(&format!("  replica n{i}: [{}]\n", cells.join(" ")));
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(1, 2)?;
    let mut log = ReplicatedLog::new(params);
    println!(
        "replicated log: {} nodes, {params} agreement per slot",
        log.node_count()
    );

    // Commands 0..9; replicas 1 and 2 fail silently for slots 3..6.
    let burst: BTreeMap<NodeId, Strategy<u64>> = [
        (NodeId::new(1), Strategy::Silent),
        (NodeId::new(2), Strategy::Silent),
    ]
    .into_iter()
    .collect();
    for c in 0..10u64 {
        let strategies = if (3..6).contains(&c) {
            burst.clone()
        } else {
            BTreeMap::new()
        };
        let report = log.append(100 + c, &strategies);
        if !report.holes.is_empty() {
            println!(
                "slot {}: degraded — {} fault-free replica(s) recorded a hole",
                report.slot,
                report.holes.len()
            );
        }
    }
    println!("\nlogs after the faulty window (· = hole):");
    print!("{}", render(&log, 4));

    // Backward recovery: repair the degraded slots now that the transient
    // cleared.
    for slot in 3..6usize {
        log.repair(slot, 100 + slot as u64, &BTreeMap::new());
    }
    println!("\nlogs after repair:");
    print!("{}", render(&log, 4));
    assert!(log.check(&Default::default(), 0).is_none());
    println!("\nall replica logs identical again; no conflicting slot ever existed.");

    // Bonus: narrate one agreement fold under two lying nodes.
    println!("\n--- anatomy of one degraded agreement instance ---");
    let scenario = AdversaryRun {
        instance: ByzInstance::new(5, params, NodeId::new(0))?,
        sender_value: Val::Value(103),
        strategies: [
            (NodeId::new(1), Strategy::ConstantLie(Val::Value(7))),
            (NodeId::new(2), Strategy::ConstantLie(Val::Value(7))),
        ]
        .into_iter()
        .collect(),
    };
    print!("{}", explain_receiver(&scenario, NodeId::new(3)));
    Ok(())
}
