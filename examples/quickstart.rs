//! Quickstart: 1/2-degradable agreement among five nodes.
//!
//! Run with: `cargo run --example quickstart`
//!
//! One sender (node 0) distributes the value 42 to four receivers using
//! algorithm BYZ. We run three fault situations and check the paper's
//! conditions each time:
//!
//! 1. no faults                 -> everyone decides 42          (D.1)
//! 2. one Byzantine receiver    -> everyone still decides 42    (D.1)
//! 3. two colluding receivers -> fault-free receivers decide 42 or the
//!    default value V_d (D.3)

use degradable::{check_degradable, AdversaryRun, ByzInstance, Params, Strategy, Val, Verdict};
use simnet::NodeId;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // m = 1 (full Byzantine agreement up to 1 fault),
    // u = 2 (degraded agreement up to 2 faults),
    // which needs 2m + u + 1 = 5 nodes.
    let params = Params::new(1, 2)?;
    let instance = ByzInstance::new(5, params, NodeId::new(0))?;
    println!("instance: {instance}");

    let situations: Vec<(&str, BTreeMap<NodeId, Strategy<u64>>)> = vec![
        ("no faults", BTreeMap::new()),
        (
            "one Byzantine receiver (n4 lies '7' everywhere)",
            [(NodeId::new(4), Strategy::ConstantLie(Val::Value(7)))]
                .into_iter()
                .collect(),
        ),
        (
            "two colluding receivers (n3, n4 lie '7')",
            [
                (NodeId::new(3), Strategy::ConstantLie(Val::Value(7))),
                (NodeId::new(4), Strategy::ConstantLie(Val::Value(7))),
            ]
            .into_iter()
            .collect(),
        ),
    ];

    for (label, strategies) in situations {
        let scenario = AdversaryRun {
            instance,
            sender_value: Val::Value(42),
            strategies,
        };
        let record = scenario.run();
        println!("\n--- {label} (f = {}) ---", record.f());
        for (receiver, decision) in record.fault_free_decisions() {
            println!("  fault-free {receiver} decided {decision}");
        }
        match check_degradable(&record) {
            Verdict::Satisfied(s) => println!(
                "  => condition {} satisfied; {} fault-free nodes agree on one value",
                s.condition, s.largest_agreeing
            ),
            Verdict::Violated(v) => println!("  => VIOLATION: {v}"),
            Verdict::BeyondU { f } => println!("  => f = {f} exceeds u: no promise"),
        }
    }
    Ok(())
}
