//! Offline vendored stand-in for the `serde` crate.
//!
//! The workspace annotates data types with `#[derive(Serialize, Deserialize)]`
//! to document their serializability, but no code path performs reflective
//! serialization (report JSON is hand-written in `harness::report`). This
//! stand-in therefore provides the two trait names as markers, blanket-implemented
//! for every type, and re-exports the no-op derives from [`serde_derive`]
//! behind the usual `derive` feature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types. Blanket-implemented: with the real `serde`
/// every type in this workspace derives it, so the marker holds universally.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented; see [`Serialize`].
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
