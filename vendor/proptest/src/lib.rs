//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! [`prop_oneof!`], [`strategy::Strategy::prop_map`], [`strategy::Just`],
//! integer-range strategies, [`collection::vec`], [`collection::btree_set`],
//! and [`option::of`].
//!
//! Differences from upstream: no shrinking (a failing case reports its case
//! number and message but is not minimized), and value generation is a
//! simple uniform sampler rather than proptest's bias-aware trees. Cases are
//! generated deterministically from the test name, so failures reproduce
//! across runs and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner types: configuration, case errors and the deterministic RNG.
pub mod test_runner {
    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::hash::{Hash, Hasher};

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` successful cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not succeed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test as a whole fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
    }

    /// Deterministic RNG for value generation, seeded from the test name
    /// and case index so every run explores the same cases.
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// RNG for case number `case` of the named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            test_name.hash(&mut h);
            let seed = h
                .finish()
                .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            TestRng(ChaCha8Rng::seed_from_u64(seed))
        }

        /// Raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform value in `[0, n)`, by rejection sampling (unbiased).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty sampling range");
            let zone = u64::MAX - (u64::MAX % n);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % n;
                }
            }
        }

        /// Uniform index in `[0, n)`.
        pub fn index(&mut self, n: usize) -> usize {
            self.below(n as u64) as usize
        }

        /// True with probability `num/den`.
        pub fn ratio(&mut self, num: u32, den: u32) -> bool {
            self.below(den as u64) < num as u64
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking; a
    /// strategy is just a deterministic sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased sampler used by [`Union`].
    pub type BoxedSampler<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Uniform choice between several strategies; built by `prop_oneof!`.
    pub struct Union<V> {
        samplers: Vec<BoxedSampler<V>>,
    }

    impl<V> Union<V> {
        /// Union over the given samplers (at least one).
        pub fn new(samplers: Vec<BoxedSampler<V>>) -> Self {
            assert!(!samplers.is_empty(), "prop_oneof! needs at least one arm");
            Union { samplers }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.index(self.samplers.len());
            (self.samplers[i])(rng)
        }
    }

    macro_rules! impl_unsigned_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as u64;
                    let hi = self.end as u64;
                    assert!(lo < hi, "empty range strategy");
                    (lo + rng.below(hi - lo)) as $t
                }
            }
        )*};
    }

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    let span64 = u64::try_from(span).expect("range span exceeds u64");
                    (lo + rng.below(span64) as i128) as $t
                }
            }
        )*};
    }

    impl_unsigned_range!(u8, u16, u32, u64, usize);
    impl_signed_range!(i8, i16, i32, i64, isize);
}

/// Collection strategies: [`vec`](collection::vec) and
/// [`btree_set`](collection::btree_set).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.index(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size` (the result may be smaller when duplicates are drawn).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates sets of values from `element`, with size at most the
    /// sampled target from `size`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let target = self.size.start + rng.index(span);
            let mut set = BTreeSet::new();
            // Bounded attempts: duplicates may keep the set below target.
            for _ in 0..target * 4 {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }
}

/// The [`of`](option::of) strategy over `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`; yields `Some` three times in four.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps a strategy's values in `Option`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.ratio(3, 4) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, ...)`
/// item becomes a regular test that runs the body over generated inputs.
///
/// An optional leading `#![proptest_config(ProptestConfig::with_cases(N))]`
/// sets the number of successful cases required.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( config = $cfg:expr; ) => {};
    (
        config = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __passed: u32 = 0;
            let mut __case: u32 = 0;
            let __max_cases = __config.cases.saturating_mul(10).max(10);
            while __passed < __config.cases && __case < __max_cases {
                __case += 1;
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {
                        __passed += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name),
                            __case,
                            msg
                        );
                    }
                }
            }
            assert!(
                __passed >= __config.cases,
                "proptest '{}': too many rejected cases ({} passed of {} required)",
                stringify!($name),
                __passed,
                __config.cases
            );
        }
        $crate::__proptest_tests! { config = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    __left,
                    __right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                    __left,
                    __right,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if *__left == *__right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left != right`\n  both: {:?}",
                    __left
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if *__left == *__right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left != right`\n  both: {:?}\n{}",
                    __left,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Rejects the current case (skipped, not failed) when the condition does
/// not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {{
        let mut __samplers: ::std::vec::Vec<
            $crate::strategy::BoxedSampler<_>,
        > = ::std::vec::Vec::new();
        $(
            {
                let __s = $strat;
                __samplers.push(::std::boxed::Box::new(
                    move |__rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::sample(&__s, __rng)
                    },
                ));
            }
        )+
        $crate::strategy::Union::new(__samplers)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds.
        #[test]
        fn range_in_bounds(x in 3u64..17, y in -5i64..6) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..6).contains(&y));
        }

        /// Collections honor their size bounds.
        #[test]
        fn vec_sizes(v in crate::collection::vec(0u8..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        /// prop_map and prop_oneof compose.
        #[test]
        fn map_and_oneof(v in prop_oneof![Just(0u64), (10u64..20).prop_map(|x| x * 2)]) {
            prop_assert!(v == 0 || (20..40).contains(&v), "v = {}", v);
        }

        /// Assume rejects without failing.
        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x < 100);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy as _;
        let strat = (0u64..1_000_000).prop_map(|x| x * 3);
        let mut a = crate::test_runner::TestRng::for_case("t", 1);
        let mut b = crate::test_runner::TestRng::for_case("t", 1);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }
}
