//! Offline vendored stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`], a deterministic random number generator built on
//! the ChaCha stream cipher with 8 rounds (RFC 8439 core, 64-bit block
//! counter). The workspace only relies on ChaCha8 being *self-consistent*
//! (same seed ⇒ same stream, forever) and statistically strong; it does not
//! assert golden output values, so this implementation does not need to be
//! bit-compatible with the upstream crate's stream — only a faithful,
//! high-quality ChaCha8.
//!
//! Determinism contract: the output stream is a pure function of the 32-byte
//! seed. Cloning the generator clones its exact position in the stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// Number of ChaCha double-rounds for the 8-round variant.
const DOUBLE_ROUNDS: usize = 4;

/// "expand 32-byte k" — the standard ChaCha constants.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher RNG with 8 rounds.
///
/// Deterministic: the stream is fully determined by the seed, and `Clone`
/// preserves the exact stream position.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key, as 8 little-endian words.
    key: [u32; 8],
    /// 64-bit block counter (incremented once per generated block).
    counter: u64,
    /// Current 64-byte output block, as 16 words.
    buffer: [u32; 16],
    /// Next unread word index into `buffer`; 16 means "buffer exhausted".
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Runs the ChaCha8 block function for the current counter, refilling
    /// the output buffer and advancing the counter.
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14..16 are the nonce, fixed at zero: one seed = one stream.

        let initial = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buffer.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0u32; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn crosses_block_boundaries() {
        // 16 words per block; pull 50 words to cross three block refills.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let words: Vec<u32> = (0..50).map(|_| a.next_u32()).collect();
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let again: Vec<u32> = (0..50).map(|_| b.next_u32()).collect();
        assert_eq!(words, again);
        // Entropy sanity: no repeated runs of zeros.
        assert!(words.iter().filter(|&&w| w == 0).count() < 3);
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut bytes = [0u8; 12];
        a.fill_bytes(&mut bytes);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        let w2 = b.next_u32().to_le_bytes();
        assert_eq!(&bytes[0..4], &w0);
        assert_eq!(&bytes[4..8], &w1);
        assert_eq!(&bytes[8..12], &w2);
    }

    #[test]
    fn bit_balance_is_plausible() {
        let mut a = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..1024).map(|_| a.next_u64().count_ones()).sum();
        // 1024 * 64 = 65536 bits; expect ~32768 ones, allow generous slack.
        assert!((31000..34000).contains(&ones), "ones = {ones}");
    }
}
