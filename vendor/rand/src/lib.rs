//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! crates.io mirror, so the workspace vendors the *small subset* of the
//! `rand` 0.8 API it actually consumes: the [`RngCore`] and [`SeedableRng`]
//! traits and the [`Error`] type. Every generator in the workspace is a
//! [`rand_chacha`-style](https://docs.rs/rand_chacha) deterministic stream
//! cipher RNG, so no thread-local or OS entropy plumbing is required.
//!
//! The trait signatures match `rand` 0.8 exactly for the methods defined
//! here, so swapping the real crate back in (when a registry is available)
//! is a one-line `Cargo.toml` change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Error type matching `rand::Error`'s role in `try_fill_bytes`.
///
/// The deterministic generators in this workspace are infallible, so this
/// error is never constructed at runtime; it exists to keep the
/// [`RngCore::try_fill_bytes`] signature source-compatible with `rand` 0.8.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw `u32`/`u64` output and byte
/// filling. Mirrors `rand_core::RngCore` (re-exported by `rand` 0.8).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible variant of [`RngCore::fill_bytes`]; infallible here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed. Mirrors
/// `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type, a fixed-size byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it to a full seed with
    /// SplitMix64 — the same expansion `rand_core` 0.6 uses, so seeds
    /// produce well-mixed, independent initial states.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: [u8; 8]) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_mixed() {
        let a = Counter::seed_from_u64(1);
        let b = Counter::seed_from_u64(1);
        let c = Counter::seed_from_u64(2);
        assert_eq!(a.0, b.0);
        assert_ne!(a.0, c.0);
        // SplitMix64 must not pass the raw seed through.
        assert_ne!(a.0, 1);
    }

    #[test]
    fn try_fill_bytes_defaults_to_infallible() {
        let mut r = Counter(0);
        let mut buf = [0u8; 4];
        r.try_fill_bytes(&mut buf).unwrap();
        assert_ne!(buf, [0u8; 4]);
    }
}
