//! Offline vendored stand-in for the `criterion` crate.
//!
//! Exposes the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkId`], `benchmark_group`/`bench_with_input`/`bench_function`,
//! [`criterion_group!`]/[`criterion_main!`] — but with a lightweight
//! executor instead of criterion's statistical machinery:
//!
//! * with `--test` on the command line (CI runs `cargo bench -- --test`),
//!   every benchmark body runs exactly once, as a smoke test;
//! * otherwise each benchmark runs a short timed burst and prints a
//!   nanoseconds-per-iteration estimate.
//!
//! No plots, no statistics, no baseline files — just enough to keep bench
//! targets compiling, running and reporting in an offline environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    /// Nanoseconds per iteration measured by the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Runs the benchmarked routine: once in `--test` mode, otherwise in a
    /// short timed burst.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.last_ns_per_iter = 0.0;
            return;
        }
        // Warm-up.
        black_box(routine());
        let budget_ns: u128 = 20_000_000; // 20ms per benchmark
        let start = Instant::now();
        let mut iters: u32 = 0;
        while start.elapsed().as_nanos() < budget_ns && iters < 10_000 {
            black_box(routine());
            iters += 1;
        }
        let elapsed = start.elapsed().as_nanos();
        self.last_ns_per_iter = elapsed as f64 / iters.max(1) as f64;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    fn run_one(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            test_mode: self.test_mode,
            last_ns_per_iter: 0.0,
        };
        f(&mut b);
        if self.test_mode {
            eprintln!("bench {label}: ok (smoke)");
        } else {
            eprintln!("bench {label}: ~{:.0} ns/iter", b.last_ns_per_iter);
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.to_string(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        self.run_one(&label, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark over a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; no aggregation here).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &x| {
                b.iter(|| x + 1);
            });
            g.bench_function("plain", |b| b.iter(|| 2 + 2));
            g.finish();
        }
        c.bench_function("top", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran >= 1);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("n5_m1").id, "n5_m1");
    }
}
