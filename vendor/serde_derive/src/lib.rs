//! Offline vendored stand-in for `serde_derive`.
//!
//! The workspace marks types `#[derive(Serialize, Deserialize)]` to document
//! serializability, but all actual JSON emission is hand-rolled (see
//! `harness::report`), so these derives expand to nothing. They accept the
//! `#[serde(...)]` helper attribute so annotated types still compile.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepted and discarded.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepted and discarded.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
